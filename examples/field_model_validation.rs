//! Validation of the fast field model against the finite-difference reference
//! solver: where the cage sits, how deep it is, and where a trapped viable
//! cell levitates according to each model.
//!
//! This is the ablation behind the workspace's central approximation — the
//! whole-array simulations use the truncated patch-superposition model, and
//! this example shows what is (and is not) lost relative to solving Laplace's
//! equation on a grid.
//!
//! Run with `cargo run --release --example field_model_validation`.

use labchip::prelude::*;
use labchip_units::{GridCoord, GridDims, GridRect, Hertz, Meters, Vec3, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 7x7 electrode region with one cage in the middle: small enough for
    // the finite-difference solver, representative of any cage in the array.
    let mut plane = ElectrodePlane::new(
        GridDims::square(7),
        Meters::from_micrometers(20.0),
        Volts::new(3.3),
        Meters::from_micrometers(80.0),
    );
    let cage = GridCoord::new(3, 3);
    plane.set_phase(cage, ElectrodePhase::CounterPhase);
    let center = plane.electrode_center(cage);

    let fast = SuperpositionField::new(plane.clone());
    let reference = LaplaceSolver::solve(
        &plane,
        GridRect::new(GridCoord::new(0, 0), GridCoord::new(6, 6)),
    )?;
    println!(
        "reference solver: {} SOR sweeps, residual {:.1e} V",
        reference.iterations(),
        reference.residual()
    );
    println!();

    // 1. Vertical |E|^2 profile above the cage centre.
    println!("  z [um]   |E| fast [kV/m]   |E| reference [kV/m]");
    for z_um in [5.0, 10.0, 20.0, 30.0, 40.0, 60.0, 75.0] {
        let p = Vec3::new(center.x, center.y, z_um * 1e-6);
        println!(
            "  {:>5.0}   {:>14.1}   {:>19.1}",
            z_um,
            fast.e_squared(p).sqrt() / 1e3,
            reference.e_squared(p).sqrt() / 1e3,
        );
    }
    println!();

    // 2. Both models must locate the |E|^2 minimum over the counter-phase
    //    electrode (that is what makes it a cage).
    let probe_height = 24e-6;
    let minimum_of = |field: &dyn FieldModel| {
        let mut best = (f64::INFINITY, GridCoord::new(0, 0));
        for c in GridRect::new(GridCoord::new(1, 1), GridCoord::new(5, 5)).iter() {
            let pos = plane.electrode_center(c);
            let e2 = field.e_squared(Vec3::new(pos.x, pos.y, probe_height));
            if e2 < best.0 {
                best = (e2, c);
            }
        }
        best.1
    };
    println!(
        "cage location  — fast model: {}, reference: {} (programmed at {})",
        minimum_of(&fast),
        minimum_of(&reference),
        cage
    );

    // 3. Levitation height of a viable cell according to each model.
    let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
    let medium = Medium::physiological_low_conductivity();
    let solver = LevitationSolver::new(
        &cell,
        &medium,
        Hertz::from_kilohertz(10.0),
        Meters::from_micrometers(11.0),
        Meters::from_micrometers(70.0),
    );
    let fast_height = solver.solve(&fast, (center.x, center.y));
    let ref_height = solver.solve(&reference, (center.x, center.y));
    println!(
        "levitation height — fast model: {}, reference: {}",
        fast_height
            .map(|p| format!("{:.1} um", p.height.as_micrometers()))
            .unwrap_or_else(|| "none".into()),
        ref_height
            .map(|p| format!("{:.1} um", p.height.as_micrometers()))
            .unwrap_or_else(|| "none".into()),
    );
    println!();
    println!(
        "Both models agree on the trap location and on stable levitation; the fast\n\
         model is what makes 100,000-electrode simulations affordable, the reference\n\
         solver is what keeps it honest."
    );
    Ok(())
}
