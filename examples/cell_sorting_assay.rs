//! A viability-sorting assay: load a mixed population, tell viable from
//! non-viable cells by their dielectric signature, isolate one viable cell
//! and recover it — the workload the paper's introduction motivates.
//!
//! Run with `cargo run --example cell_sorting_assay`.

use labchip::prelude::*;
use labchip_array::pattern::{CagePattern, PatternKind};
use labchip_units::{GridCoord, GridDims, Hertz, Meters, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Dielectric discrimination -------------------------------------
    // At 10 kHz in a low-conductivity buffer a viable cell (intact membrane)
    // is negative-DEP while a membrane-compromised cell is positive-DEP: the
    // former is trapped in the cages, the latter is not.
    let medium = Medium::physiological_low_conductivity();
    let frequency = Hertz::from_kilohertz(10.0);
    let viable = Particle::viable_cell(Meters::from_micrometers(10.0));
    let dead = Particle::nonviable_cell(Meters::from_micrometers(10.0));
    println!("Clausius-Mossotti factor at 10 kHz:");
    println!(
        "  viable cell    : {:+.3}",
        viable.cm_re(&medium, frequency)
    );
    println!("  non-viable cell: {:+.3}", dead.cm_re(&medium, frequency));
    println!("  -> only the viable cell is held in the cages (negative DEP)");
    println!();

    // --- 2. Detection ------------------------------------------------------
    // The capacitive sensors report which cages are occupied; averaging a few
    // frames makes the call essentially error-free.
    let sensor = CapacitiveSensor::date05_reference();
    let detector = Detector::new(0.0, sensor.signal_for(Occupancy::Occupied).get())?;
    let averager = FrameAverager::new(16);
    let noise = averager.effective_noise(&sensor.noise);
    println!(
        "detection with 16-frame averaging: SNR = {:.0}, error probability = {:.1e}",
        detector.separation() / noise,
        detector.error_probability(noise)
    );
    println!();

    // --- 3. The manipulation protocol --------------------------------------
    // Nine viable cells end up trapped after loading; cell #4 (say, the one
    // the operator picked under the microscope) is isolated to the array edge,
    // everything else is washed to the waste side, then the target is
    // recovered through the outlet.
    let dims = GridDims::square(32);
    let load_sites: Vec<GridCoord> = CagePattern::new(
        dims,
        PatternKind::Lattice {
            period: 5,
            offset: GridCoord::new(4, 4),
        },
    )?
    .cage_sites()
    .iter()
    .copied()
    .take(9)
    .collect();
    let load_pattern = CagePattern::new(dims, PatternKind::Custom(load_sites))?;

    let scan_time = ScanTiming::date05_reference().averaged_scan_time(dims, &averager);
    let target = ParticleId(4);
    let protocol = Protocol::new("viability sorting")
        .with_step(ProtocolStep::LoadSample {
            pattern: load_pattern,
            handling_time: Seconds::from_minutes(3.0),
        })
        .with_step(ProtocolStep::Detect { scan_time })
        .with_step(ProtocolStep::Isolate { id: target })
        .with_step(ProtocolStep::Wash { keep: vec![target] })
        .with_step(ProtocolStep::Recover {
            id: target,
            handling_time: Seconds::from_minutes(1.0),
        });

    let mut manipulator = Manipulator::new(dims);
    let report = ProtocolExecutor::new(&mut manipulator).run(&protocol)?;

    println!("protocol `{}`:", report.name);
    println!("  steps executed : {}", report.steps_executed);
    println!("  cage steps     : {}", report.cage_steps);
    println!("  recovered cells: {:?}", report.recovered);
    println!("  time budget:");
    println!(
        "    fluidics {:.1} min | motion {:.1} min | sensing {:.1} s | total {:.1} min",
        report.time.fluidics.as_minutes(),
        report.time.motion.as_minutes(),
        report.time.sensing.get(),
        report.time.total().as_minutes()
    );
    Ok(())
}
