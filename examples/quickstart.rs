//! Quickstart: build the paper's reference chip, program a cage, and check
//! that it really traps a viable cell.
//!
//! Run with `cargo run --example quickstart`.

use labchip::prelude::*;
use labchip_units::{GridCoord, Seconds, Vec3};

fn main() -> Result<(), ChipError> {
    // 1. The DATE'05 reference system: 320x320 electrodes in 0.35 um CMOS,
    //    80 um chamber under an ITO glass lid, low-conductivity buffer.
    let chip = Biochip::date05_reference();
    println!("electrodes            : {}", chip.array().electrode_count());
    println!("drive voltage         : {}", chip.drive_voltage());
    println!(
        "chamber volume        : {:.1} ul",
        chip.chamber().volume().as_microliters()
    );
    println!(
        "frame programming time: {:.2} ms",
        chip.frame_program_time().as_millis()
    );
    println!(
        "chip power            : {:.1} mW",
        chip.total_power().as_milliwatts()
    );

    // 2. Work on a smaller array for the physics (same pitch, same stack) so
    //    the example runs in a blink.
    let mut chip = Biochip::small_reference(16);
    let site = GridCoord::new(8, 8);
    chip.program_single_cage(site)?;
    let summary = chip.cage_summary(site)?;
    println!();
    println!("cage at {site}:");
    println!("  is a trap          : {}", summary.is_trap);
    println!(
        "  holding force      : {:.1} pN",
        summary.holding_force.as_piconewtons()
    );
    if let Some(height) = summary.levitation_height {
        println!("  levitation height  : {:.1} um", height.as_micrometers());
    }

    // 3. Drop a viable cell near the cage and watch it stay trapped while the
    //    cage is stepped one electrode to the right (the paper's "moving
    //    cage" manipulation).
    let mut sim = ChipSimulator::new(chip, SimulationConfig::default());
    let index = sim.add_reference_particle_at(site)?;
    sim.run_for(Seconds::new(0.5));

    let next = GridCoord::new(site.x + 1, site.y);
    sim.chip_mut().program_single_cage(next)?;
    sim.refresh_field();
    sim.run_for(Seconds::new(1.0));

    let position = sim.particles()[index].state.position;
    let target = sim
        .chip()
        .array()
        .to_electrode_plane()
        .electrode_center(next);
    let error = (position - Vec3::new(target.x, target.y, position.z)).norm();
    println!();
    println!(
        "after one cage step the cell sits {:.1} um from the new cage centre",
        error * 1e6
    );
    println!("(one electrode pitch is 20 um, so the cell followed the cage)");
    Ok(())
}
