//! Full-array concurrent manipulation pipeline, end to end.
//!
//! Runs one complete paper-style assay cycle with the batch workload
//! driver — load a few hundred particles, sort them across the array with
//! the incremental sharded planner, read the sensors through the *noisy*
//! detection path and close the loop on what they report, flush — then
//! shows the same machinery through the scenario engine (E10's planner
//! comparison and E12's closed-loop sweep).
//!
//! ```bash
//! cargo run --release -p labchip_core --example full_array_pipeline
//! ```

use labchip::prelude::*;
use labchip::workload::sort_problem;
use labchip_units::GridDims;

fn main() {
    // --- The driver: one load → route → sense → recover → flush cycle, ---
    // with loud electronics so the detection path has something to fix.
    let mut driver = BatchDriver::new(WorkloadConfig {
        array_side: 128,
        noise_scale: 6.0,
        detection_frames: 4,
        recovery: RecoveryPolicy::date05_reference(),
        ..WorkloadConfig::default()
    });
    println!(
        "force envelope: holding force {:.1} pN, max cage speed {:.0} um/s",
        driver.envelope().holding_force.get() * 1e12,
        driver.envelope().max_speed.as_micrometers_per_second()
    );

    let report = driver.run_cycle(400);
    println!(
        "cycle {}: routed {}/{} particles, {} moves in {} steps",
        report.cycle, report.routed, report.requested, report.total_moves, report.makespan_steps
    );
    println!(
        "  plan: {:.0} ms wall ({} moves force-checked, {} infeasible)",
        report.planning.get() * 1e3,
        report.moves_checked,
        report.infeasible_moves
    );
    println!(
        "  chip: motion {:.0} s, sensing {:.2} s, recovery {:.2} s, fluidics {:.0} s; \
         row-rewrite budget used {:.2}% of a step",
        report.time.motion.get(),
        report.time.sensing.get(),
        report.time.recovery.get(),
        report.time.fluidics.get(),
        100.0 * report.budget.utilization(driver.config().step_period)
    );
    println!(
        "  sense: {} detected ({} FP / {} FN, error rate {:.2e}); \
         plan mismatches {} -> {} after {} recovery rounds",
        report.occupancy_detected,
        report.detection.false_positives,
        report.detection.false_negatives,
        report.detection_error_rate(),
        report.mismatches_initial,
        report.mismatches_final,
        report.recovery_rounds,
    );
    assert!(
        report.conflict_free,
        "plans must satisfy the separation rule"
    );

    // --- The planners head to head on one problem. ------------------------
    let problem = sort_problem(GridDims::square(128), 400, 2, 42);
    for (name, strategy) in [
        ("greedy", RoutingStrategy::Greedy),
        ("incremental", RoutingStrategy::Incremental),
    ] {
        let outcome = Router::new(strategy)
            .solve(&problem)
            .expect("generated problems are well-formed");
        println!(
            "{name:>12}: {:.1}% routed, makespan {} steps, {} moves, conflict-free: {}",
            100.0 * outcome.success_rate(problem.requests.len()),
            outcome.makespan,
            outcome.total_moves,
            outcome.is_conflict_free(problem.min_separation)
        );
    }

    // --- The same pipeline through the scenario engine. -------------------
    let mut runner = Runner::new(ScenarioRegistry::all());
    for spec in [
        "array_side=96",
        "particles=150",
        "density_steps=[1.0]",
        "astar_cap=16",
        "astar_max_steps=256",
        "particles_per_cycle=150",
        "cycles=2",
        "noise_scales=[0.0,4.0]",
        "frame_counts=[4]",
    ] {
        runner.set_override(spec).expect("well-formed override");
    }
    let outcomes = runner.run(&["e10", "e11", "e12"]).expect("scenarios run");
    for outcome in &outcomes {
        println!("\n{}", outcome.table);
    }
}
