//! The fluidic/packaging design flow (paper §3, Fig. 2): check a mask layout
//! against the dry-film-resist design rules, get fabrication quotes, and see
//! why prototype-in-the-loop beats simulate-first under 2005-level parameter
//! uncertainty.
//!
//! Run with `cargo run --example fluidic_design_flow`.

use labchip::experiments::e5_designflow;
use labchip::prelude::*;
use labchip::scenario::{Scenario, ScenarioContext};
use labchip_units::Meters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The layout and its design rules --------------------------------
    let layout = MaskLayout::date05_reference();
    let process = FabricationProcess::preset(ProcessKind::DryFilmResist);
    let rules = DesignRules::for_process(&process, Meters::from_micrometers(80.0));
    let report = rules.check(&layout);
    println!(
        "layout: {} features on {} layer(s), smallest feature {:.0} um",
        layout.features().len(),
        layout.layer_count(),
        layout
            .min_feature_size()
            .map(|m| m.as_micrometers())
            .unwrap_or(0.0)
    );
    println!(
        "dry-film DRC: {}",
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} violation(s): {:?}", report.len(), report.violations())
        }
    );
    println!();

    // --- 2. Fabrication quotes ---------------------------------------------
    println!("one prototype iteration (5 devices), set-up already in place:");
    for kind in [
        ProcessKind::DryFilmResist,
        ProcessKind::PdmsSoftLithography,
        ProcessKind::GlassEtching,
    ] {
        let p = FabricationProcess::preset(kind);
        let quote = p.quote(5, false);
        println!(
            "  {:<28} {:>5.1} days  {:>7.0} EUR total  ({:>5.0} EUR/device)",
            p.name,
            quote.turnaround.as_days(),
            quote.total_cost().get(),
            quote.cost_per_device().get()
        );
    }
    println!();

    // --- 3. The packaged stack (Fig. 3) ------------------------------------
    let stack = PackagingStack::date05_reference();
    stack.validate()?;
    println!(
        "packaged device (CMOS die + {:.0} um resist spacer + ITO glass lid): \
         {:.1} days, {:.0} EUR each",
        stack.spacer_thickness.as_micrometers(),
        stack
            .assembly_turnaround(&FabricationProcess::preset(ProcessKind::DryFilmResist))
            .as_days(),
        stack
            .assembly_cost(&FabricationProcess::preset(ProcessKind::DryFilmResist))
            .get()
    );
    println!();

    // --- 4. Why fabrication belongs inside the loop -------------------------
    let uncertainty = FluidicParameters::literature_2005();
    println!(
        "combined relative uncertainty of a fluidic performance prediction \
         (2005 literature): {:.0}%",
        uncertainty.combined_relative_sigma() * 100.0
    );
    let comparison = e5_designflow::DesignFlowScenario.run(
        &e5_designflow::Config::default(),
        &mut ScenarioContext::silent("E5"),
    );
    println!();
    println!("{}", comparison.to_table());
    let first = &comparison.rows[0];
    println!(
        "under 2005-level uncertainty the prototype-in-the-loop flow reaches a \
         working device {:.1}x faster.",
        first.speedup
    );
    Ok(())
}
