//! The scenario engine: enumerate the E1–E9 experiments, run a subset with
//! typed `key=value` overrides, and stream row-level progress while they
//! execute.
//!
//! Run with `cargo run --release --example scenario_engine`.

use labchip::prelude::*;
use labchip::scenario::outcomes_to_json;
use std::sync::Arc;

/// A progress sink that prints every streamed event — what `report run`
/// does on stderr.
struct PrintProgress;

impl Progress for PrintProgress {
    fn on_event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::ScenarioStarted { scenario } => println!("[{scenario}] started"),
            ProgressEvent::Row {
                scenario, summary, ..
            } => println!("[{scenario}]   {summary}"),
            ProgressEvent::SimSteps {
                scenario,
                elapsed_s,
                ..
            } => println!("[{scenario}]   sim t = {elapsed_s:.2} s"),
            ProgressEvent::ScenarioFinished {
                scenario, wall_ms, ..
            } => println!("[{scenario}] done in {wall_ms:.1} ms"),
        }
    }
}

fn main() -> Result<(), ScenarioError> {
    // 1. Every experiment of the paper is enumerable behind one registry.
    let registry = ScenarioRegistry::all();
    println!("registered scenarios:");
    for scenario in registry.iter() {
        println!("  {}  {}", scenario.id(), scenario.describe());
    }
    println!();

    // 2. Run a subset through the Runner: overrides are parsed onto the
    //    typed configs (a typo or a wrong type is a hard error), seeds are
    //    derived per scenario, and progress streams while scenarios run.
    let mut runner = Runner::new(registry);
    runner.set_base_seed(2005);
    runner.set_progress(Arc::new(PrintProgress));
    runner.set_override("batch_sizes=[1,10,1000]")?; // E6: add a big batch
    runner.set_override("initial_offsets=[0.5,2.5]")?; // E8: two mis-centrings
    let outcomes = runner.run(&["e6", "e8"])?;

    // 3. Each outcome carries the rendered table, the exact config used,
    //    the seed and the wall-clock time.
    println!();
    for outcome in &outcomes {
        println!("{}", outcome.table);
        println!(
            "({} rows, seed {}, {:.1} ms)",
            outcome.table.row_count(),
            outcome.seed,
            outcome.wall.as_secs_f64() * 1e3
        );
        println!();
    }

    // 4. The same outcomes serialise into the one JSON document that
    //    `report run --json` prints.
    let document = outcomes_to_json(&outcomes);
    let text = serde_json::to_string_pretty(&document);
    println!("JSON document: {} bytes covering E6 + E8", text.len());
    Ok(())
}
