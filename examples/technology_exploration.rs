//! Technology exploration: why the paper argues that "older generation
//! technologies may best fit your purpose" — and what thick-oxide I/O
//! drivers buy back on newer nodes.
//!
//! Run with `cargo run --example technology_exploration`.

use labchip::experiments::e2_technology;
use labchip::prelude::*;
use labchip::scenario::Scenario;

fn main() {
    // The E2 experiment through the scenario engine: sweep the node ladder
    // at core supply voltages.
    let scenario = e2_technology::TechnologyScenario;
    let core_only = scenario.run(
        &e2_technology::Config::default(),
        &mut ScenarioContext::silent(scenario.id()),
    );
    println!("{}", core_only.to_table());

    // The same sweep with thick-oxide I/O drivers enabled: part of the force
    // comes back, at the price of bigger per-pixel drivers. A one-field
    // change like this is what `report run e2 --set use_io_drivers=true`
    // does from the command line.
    let with_io = scenario.run(
        &e2_technology::Config {
            use_io_drivers: true,
            ..e2_technology::Config::default()
        },
        &mut ScenarioContext::silent(scenario.id()),
    );
    println!(
        "{}",
        ExperimentTable::new(
            "E2b",
            "Same sweep with thick-oxide I/O drivers",
            with_io.to_table().columns,
            with_io.to_table().rows,
        )
    );

    // The headline numbers the paper's argument rests on.
    let old = core_only.row_for("0.35").expect("0.35 um node swept");
    let new = core_only.row_for("0.13").expect("0.13 um node swept");
    println!(
        "moving from 0.35 um/3.3 V to 0.13 um/1.2 V costs {:.0}x in DEP force\n\
         ({:.1} pN -> {:.1} pN holding force) while the mask set gets {:.0}x dearer.",
        old.holding_force_pn / new.holding_force_pn.max(1e-9),
        old.holding_force_pn,
        new.holding_force_pn,
        new.mask_set_cost_keur / old.mask_set_cost_keur,
    );

    // Pixel-level sanity: the per-pixel logic fits under a cell-sized
    // electrode on every node, so the old node gives up nothing.
    let pixel = PixelCell::with_capacitive_sensor();
    for node in TechnologyNode::ladder() {
        let pitch = node.electrode_pitch_for_cells(labchip_units::Meters::from_micrometers(25.0));
        println!(
            "{:<14} pixel logic {:>6.0} um^2 under a {:>3.0} um electrode ({:>5.1}% of the pitch area)",
            node.name,
            pixel.logic_area(&node) * 1e12,
            pitch.as_micrometers(),
            100.0 * pixel.logic_area(&node) / (pitch.get() * pitch.get()),
        );
    }
}
