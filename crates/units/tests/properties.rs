//! Property-based tests for the units crate.

use labchip_units::{GridCoord, GridDims, Meters, Rect, Seconds, Uncertain, Vec2, Vec3};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e9f64..1e9f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-9f64..1e9f64
}

proptest! {
    #[test]
    fn length_conversion_round_trip(um in positive()) {
        let l = Meters::from_micrometers(um);
        prop_assert!((l.as_micrometers() - um).abs() <= um.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn time_addition_is_commutative(a in finite(), b in finite()) {
        let x = Seconds::new(a) + Seconds::new(b);
        let y = Seconds::new(b) + Seconds::new(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn vec3_norm_is_non_negative(x in finite(), y in finite(), z in finite()) {
        prop_assert!(Vec3::new(x, y, z).norm() >= 0.0);
    }

    #[test]
    fn vec3_triangle_inequality(
        ax in finite(), ay in finite(), az in finite(),
        bx in finite(), by in finite(), bz in finite(),
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
    }

    #[test]
    fn normalized_has_unit_norm_or_zero(x in finite(), y in finite()) {
        let v = Vec2::new(x, y);
        let n = v.normalized().norm();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grid_index_round_trip(cols in 1u32..200, rows in 1u32..200, x in 0u32..200, y in 0u32..200) {
        let dims = GridDims::new(cols, rows);
        let coord = GridCoord::new(x % cols, y % rows);
        prop_assert_eq!(dims.coord_of(dims.index_of(coord)), coord);
    }

    #[test]
    fn manhattan_is_symmetric(ax in 0u32..1000, ay in 0u32..1000, bx in 0u32..1000, by in 0u32..1000) {
        let a = GridCoord::new(ax, ay);
        let b = GridCoord::new(bx, by);
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert!(a.chebyshev(b) <= a.manhattan(b));
    }

    #[test]
    fn rect_contains_its_center(x in finite(), y in finite(), w in positive(), h in positive()) {
        let r = Rect::from_origin_size(Vec2::new(x, y), w.min(1e6), h.min(1e6));
        prop_assert!(r.contains(r.center()));
        prop_assert!(r.area() >= 0.0);
    }

    #[test]
    fn uncertain_bounds_bracket_nominal(nominal in finite(), sigma in 0.0f64..2.0) {
        let v = Uncertain::new(nominal, sigma);
        prop_assert!(v.low(1.0) <= v.nominal() + 1e-9);
        prop_assert!(v.high(1.0) >= v.nominal() - 1e-9);
    }
}
