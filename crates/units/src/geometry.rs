//! Small 2-D / 3-D vector and rectangle types.
//!
//! The particle-dynamics and field models work in continuous 3-D coordinates
//! above the chip surface (z = 0 at the electrode plane, z grows towards the
//! lid); the mask-layout and layout-DRC code works with 2-D rectangles in the
//! chip plane.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (metres by convention, but unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

/// A 2-D point; alias of [`Vec2`] for readability at call sites.
pub type Point2 = Vec2;

/// A 3-D vector (metres by convention, but unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// A 3-D point; alias of [`Vec3`] for readability at call sites.
pub type Point3 = Vec3;

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Self) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction, or zero if the norm is zero.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            Self::ZERO
        } else {
            self / n
        }
    }

    /// Lifts into 3-D with the given z component.
    #[inline]
    pub fn with_z(self, z: f64) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Self) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction, or zero if the norm is zero.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            Self::ZERO
        } else {
            self / n
        }
    }

    /// Projection onto the chip plane (drops z).
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

macro_rules! vec_ops {
    ($t:ty { $($field:ident),+ }) => {
        impl Add for $t {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$field += rhs.$field;)+
            }
        }
        impl Sub for $t {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$field -= rhs.$field;)+
            }
        }
        impl Neg for $t {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }
        impl Mul<f64> for $t {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }
        impl Mul<$t> for f64 {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: $t) -> $t {
                rhs * self
            }
        }
        impl Div<f64> for $t {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }
    };
}

vec_ops!(Vec2 { x, y });
vec_ops!(Vec3 { x, y, z });

/// An axis-aligned rectangle in the chip plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum-x, minimum-y corner.
    pub min: Vec2,
    /// Maximum-x, maximum-y corner.
    pub max: Vec2,
}

impl Rect {
    /// Creates a rectangle from two corners, normalising their order.
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Self {
            min: Vec2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Vec2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from origin and size.
    pub fn from_origin_size(origin: Vec2, width: f64, height: f64) -> Self {
        Self::new(origin, origin + Vec2::new(width, height))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two rectangles overlap (sharing only an edge
    /// counts as overlapping).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Minimum edge-to-edge separation from another, non-overlapping
    /// rectangle. Returns 0.0 when they overlap.
    pub fn separation(&self, other: &Rect) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        dx.hypot(dy)
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min: self.min - Vec2::new(margin, margin),
            max: self.max + Vec2::new(margin, margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        assert!((a.dot(Vec2::new(1.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((a.distance(Vec2::ZERO) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::from_origin_size(Vec2::ZERO, 10.0, 5.0);
        assert!((r.area() - 50.0).abs() < 1e-12);
        assert!(r.contains(Vec2::new(5.0, 2.5)));
        assert!(!r.contains(Vec2::new(11.0, 2.0)));
        let s = Rect::from_origin_size(Vec2::new(9.0, 4.0), 5.0, 5.0);
        assert!(r.intersects(&s));
        let t = Rect::from_origin_size(Vec2::new(20.0, 20.0), 1.0, 1.0);
        assert!(!r.intersects(&t));
        assert!(r.separation(&t) > 0.0);
        assert_eq!(r.separation(&s), 0.0);
    }

    #[test]
    fn rect_inflate_and_center() {
        let r = Rect::from_origin_size(Vec2::new(1.0, 1.0), 2.0, 2.0);
        assert_eq!(r.center(), Vec2::new(2.0, 2.0));
        let g = r.inflate(1.0);
        assert_eq!(g.min, Vec2::new(0.0, 0.0));
        assert_eq!(g.max, Vec2::new(4.0, 4.0));
    }

    #[test]
    fn vec_projection_helpers() {
        let p = Vec2::new(1.0, 2.0).with_z(3.0);
        assert_eq!(p, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.xy(), Vec2::new(1.0, 2.0));
        assert!(p.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
    }
}
