//! Cost and effort quantities for the design-flow and fabrication models.
//!
//! The paper's §3 argues about fabrication economics in euros and turnaround
//! in days; keeping these as distinct types prevents accidentally mixing money
//! with effort.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Monetary cost in euros.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Euros(f64);

impl Euros {
    /// Zero cost.
    pub const ZERO: Self = Self(0.0);

    /// Creates a cost in euros.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Creates a cost expressed in thousands of euros.
    #[inline]
    pub fn from_kilo_euros(k: f64) -> Self {
        Self(k * 1_000.0)
    }

    /// Returns the raw value in euros.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value in thousands of euros.
    #[inline]
    pub fn as_kilo_euros(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Larger of two costs.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Smaller of two costs.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Euros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} EUR", self.0)
    }
}

impl Add for Euros {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Euros {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Euros {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Euros {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Euros {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div<Euros> for Euros {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Euros) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Euros {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

/// Engineering effort in person-days.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct PersonDays(f64);

impl PersonDays {
    /// Zero effort.
    pub const ZERO: Self = Self(0.0);

    /// Creates an effort value in person-days.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in person-days.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for PersonDays {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} person-days", self.0)
    }
}

impl Add for PersonDays {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for PersonDays {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for PersonDays {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Sum for PersonDays {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euros_arithmetic() {
        let mask = Euros::new(5.0);
        let setup = Euros::from_kilo_euros(30.0);
        let total = mask + setup;
        assert!((total.get() - 30_005.0).abs() < 1e-9);
        assert!((setup.as_kilo_euros() - 30.0).abs() < 1e-12);
        assert!((setup / mask - 6000.0).abs() < 1e-9);
        let batch: Euros = (0..10).map(|_| mask).sum();
        assert!((batch.get() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn euros_display_and_ordering() {
        assert_eq!(format!("{}", Euros::new(12.5)), "12.50 EUR");
        assert!(Euros::new(1.0) < Euros::new(2.0));
        assert_eq!(Euros::new(1.0).max(Euros::new(2.0)), Euros::new(2.0));
    }

    #[test]
    fn person_days_accumulate() {
        let mut effort = PersonDays::new(1.5);
        effort += PersonDays::new(2.5);
        assert!((effort.get() - 4.0).abs() < 1e-12);
        let scaled = effort * 2.0;
        assert!((scaled.get() - 8.0).abs() < 1e-12);
    }
}
