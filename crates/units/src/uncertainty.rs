//! Values with attached uncertainty.
//!
//! The paper's §3 stresses that fluidic simulation "demands a lot of input
//! parameters which are uncertain or completely unknown". The design-flow
//! comparison models this directly: every fluidic parameter is an
//! [`Uncertain`] value with a nominal and a relative spread, and the
//! simulate-first flow has to make decisions on samples from that spread.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A nominal value with a one-sigma relative uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Uncertain {
    nominal: f64,
    relative_sigma: f64,
}

impl Uncertain {
    /// Creates an exactly-known value.
    pub const fn exact(nominal: f64) -> Self {
        Self {
            nominal,
            relative_sigma: 0.0,
        }
    }

    /// Creates a value with the given relative one-sigma spread
    /// (`0.1` = 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `relative_sigma` is negative or not finite.
    pub fn new(nominal: f64, relative_sigma: f64) -> Self {
        assert!(
            relative_sigma.is_finite() && relative_sigma >= 0.0,
            "relative sigma must be finite and non-negative"
        );
        Self {
            nominal,
            relative_sigma,
        }
    }

    /// The nominal (best-guess) value.
    #[inline]
    pub const fn nominal(self) -> f64 {
        self.nominal
    }

    /// The relative one-sigma spread.
    #[inline]
    pub const fn relative_sigma(self) -> f64 {
        self.relative_sigma
    }

    /// The absolute one-sigma spread.
    #[inline]
    pub fn sigma(self) -> f64 {
        self.nominal.abs() * self.relative_sigma
    }

    /// Returns `true` when the value carries no uncertainty.
    #[inline]
    pub fn is_exact(self) -> bool {
        self.relative_sigma == 0.0
    }

    /// Draws one sample using a caller-provided standard-normal deviate.
    ///
    /// Keeping the random number generation outside of this type lets callers
    /// choose their RNG and keeps this crate dependency-free.
    #[inline]
    pub fn sample_with(self, standard_normal: f64) -> f64 {
        self.nominal + self.sigma() * standard_normal
    }

    /// Worst-case low value at `n_sigma` standard deviations.
    #[inline]
    pub fn low(self, n_sigma: f64) -> f64 {
        self.nominal - n_sigma * self.sigma()
    }

    /// Worst-case high value at `n_sigma` standard deviations.
    #[inline]
    pub fn high(self, n_sigma: f64) -> f64 {
        self.nominal + n_sigma * self.sigma()
    }

    /// Scales the nominal value, preserving the relative uncertainty.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        Self {
            nominal: self.nominal * factor,
            relative_sigma: self.relative_sigma,
        }
    }

    /// Combines two independent uncertain values multiplicatively
    /// (relative sigmas add in quadrature).
    pub fn combine_mul(self, other: Self) -> Self {
        Self {
            nominal: self.nominal * other.nominal,
            relative_sigma: (self.relative_sigma.powi(2) + other.relative_sigma.powi(2)).sqrt(),
        }
    }
}

impl fmt::Display for Uncertain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.nominal)
        } else {
            write!(f, "{} ± {:.1}%", self.nominal, self.relative_sigma * 100.0)
        }
    }
}

impl From<f64> for Uncertain {
    fn from(value: f64) -> Self {
        Self::exact(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_have_zero_spread() {
        let v = Uncertain::exact(42.0);
        assert!(v.is_exact());
        assert_eq!(v.sigma(), 0.0);
        assert_eq!(v.sample_with(3.0), 42.0);
        assert_eq!(v.low(3.0), 42.0);
        assert_eq!(v.high(3.0), 42.0);
    }

    #[test]
    fn sampling_scales_with_sigma() {
        let v = Uncertain::new(100.0, 0.2);
        assert_eq!(v.sigma(), 20.0);
        assert_eq!(v.sample_with(1.0), 120.0);
        assert_eq!(v.sample_with(-2.0), 60.0);
        assert_eq!(v.low(1.0), 80.0);
        assert_eq!(v.high(2.0), 140.0);
    }

    #[test]
    fn combine_mul_adds_in_quadrature() {
        let a = Uncertain::new(10.0, 0.3);
        let b = Uncertain::new(2.0, 0.4);
        let c = a.combine_mul(b);
        assert_eq!(c.nominal(), 20.0);
        assert!((c.relative_sigma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scale_preserves_relative_sigma() {
        let v = Uncertain::new(5.0, 0.1).scale(4.0);
        assert_eq!(v.nominal(), 20.0);
        assert_eq!(v.relative_sigma(), 0.1);
    }

    #[test]
    #[should_panic(expected = "relative sigma")]
    fn negative_sigma_rejected() {
        let _ = Uncertain::new(1.0, -0.1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Uncertain::exact(3.0)), "3");
        assert_eq!(format!("{}", Uncertain::new(3.0, 0.25)), "3 ± 25.0%");
    }
}
