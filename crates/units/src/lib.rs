//! # labchip-units
//!
//! Foundation crate of the `labchip` workspace: strongly-typed physical
//! quantities, small vector/geometry types, grid coordinates for electrode
//! arrays, and values-with-uncertainty.
//!
//! The DATE'05 paper this workspace reproduces ("New Perspectives and
//! Opportunities From the Wild West of Microelectronic Biochips", Manaresi et
//! al.) argues repeatedly in terms of *orders of magnitude*: electrode pitch
//! versus cell size (tens of micrometres), DEP force scaling with the square
//! of the supply voltage, cell velocities of 10–100 µm/s versus electronic
//! timescales of nanoseconds, fabrication turnaround of days versus weeks.
//! Mixing up units in such arguments is fatal, so every crate in the
//! workspace talks in the newtypes defined here.
//!
//! ## Example
//!
//! ```
//! use labchip_units::{Meters, Volts, Seconds};
//!
//! let pitch = Meters::from_micrometers(20.0);
//! let supply = Volts::new(3.3);
//! let step = Seconds::from_millis(10.0);
//! assert!(pitch.as_micrometers() > 10.0);
//! assert!(supply.get() * supply.get() > 10.0);
//! assert_eq!(step.as_millis(), 10.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod constants;
pub mod cost;
pub mod geometry;
pub mod grid;
pub mod si;
pub mod uncertainty;

pub use constants::*;
pub use cost::{Euros, PersonDays};
pub use geometry::{Point2, Point3, Rect, Vec2, Vec3};
pub use grid::{GridCoord, GridDims, GridRect, Neighbors4, Neighbors8};
pub use si::{
    Amperes, Celsius, CubicMeters, Farads, Hertz, Kelvin, Kilograms, KilogramsPerCubicMeter,
    Meters, MetersPerSecond, Newtons, PascalSeconds, Pascals, Seconds, SiemensPerMeter, Volts,
    VoltsPerMeter, Watts,
};
pub use uncertainty::Uncertain;
