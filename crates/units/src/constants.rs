//! Physical constants used across the workspace.
//!
//! Values follow CODATA 2018. Only the constants actually needed by the DEP,
//! sensing and fluidic models are exposed.

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity, F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of water at room temperature (dimensionless).
pub const WATER_RELATIVE_PERMITTIVITY: f64 = 78.5;

/// Dynamic viscosity of water at 25 °C, Pa·s.
pub const WATER_VISCOSITY: f64 = 0.89e-3;

/// Density of water, kg/m³.
pub const WATER_DENSITY: f64 = 997.0;

/// Density of a typical mammalian cell, kg/m³.
pub const CELL_DENSITY: f64 = 1_050.0;

/// Density of polystyrene (beads used as cell surrogates), kg/m³.
pub const POLYSTYRENE_DENSITY: f64 = 1_055.0;

/// Standard gravitational acceleration, m/s².
pub const STANDARD_GRAVITY: f64 = 9.806_65;

/// Room temperature, K.
pub const ROOM_TEMPERATURE_K: f64 = 298.15;

/// Latent heat of vaporisation of water, J/kg.
pub const WATER_LATENT_HEAT: f64 = 2.26e6;

/// Thermal conductivity of water, W/(m·K).
pub const WATER_THERMAL_CONDUCTIVITY: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the physical ranges
    fn constants_are_physical() {
        assert!(BOLTZMANN > 1e-23 && BOLTZMANN < 2e-23);
        assert!(VACUUM_PERMITTIVITY > 8e-12 && VACUUM_PERMITTIVITY < 9e-12);
        assert!(WATER_RELATIVE_PERMITTIVITY > 70.0 && WATER_RELATIVE_PERMITTIVITY < 90.0);
        assert!(CELL_DENSITY > WATER_DENSITY);
        assert!(STANDARD_GRAVITY > 9.0 && STANDARD_GRAVITY < 10.0);
    }

    #[test]
    fn thermal_voltage_sanity() {
        // kT/q at room temperature should be about 25.7 mV.
        let vt = BOLTZMANN * ROOM_TEMPERATURE_K / ELEMENTARY_CHARGE;
        assert!(vt > 0.024 && vt < 0.027);
    }
}
