//! Integer grid coordinates for the electrode / cage arrays.
//!
//! The paper's chip is a regular 2-D array of electrodes; DEP cages live on a
//! coarser grid derived from it. Both are addressed with [`GridCoord`]s
//! inside [`GridDims`]-sized grids.

use crate::geometry::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coordinate on an integer grid (column `x`, row `y`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct GridCoord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl GridCoord {
    /// Creates a coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to another coordinate.
    #[inline]
    pub fn manhattan(self, other: Self) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Chebyshev (L∞) distance to another coordinate.
    #[inline]
    pub fn chebyshev(self, other: Self) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }

    /// Converts to a continuous position given a grid `pitch` (metres per
    /// cell), placing the coordinate at the cell centre.
    #[inline]
    pub fn to_position(self, pitch: f64) -> Vec2 {
        Vec2::new((self.x as f64 + 0.5) * pitch, (self.y as f64 + 0.5) * pitch)
    }

    /// Offsets the coordinate by a signed delta, returning `None` on
    /// underflow.
    pub fn offset(self, dx: i32, dy: i32) -> Option<Self> {
        let x = self.x as i64 + dx as i64;
        let y = self.y as i64 + dy as i64;
        if x < 0 || y < 0 || x > u32::MAX as i64 || y > u32::MAX as i64 {
            None
        } else {
            Some(Self::new(x as u32, y as u32))
        }
    }
}

impl fmt::Display for GridCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u32, u32)> for GridCoord {
    fn from((x, y): (u32, u32)) -> Self {
        Self::new(x, y)
    }
}

/// Dimensions of a rectangular grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct GridDims {
    /// Number of columns.
    pub cols: u32,
    /// Number of rows.
    pub rows: u32,
}

impl GridDims {
    /// Creates grid dimensions.
    #[inline]
    pub const fn new(cols: u32, rows: u32) -> Self {
        Self { cols, rows }
    }

    /// Creates square grid dimensions.
    #[inline]
    pub const fn square(side: u32) -> Self {
        Self {
            cols: side,
            rows: side,
        }
    }

    /// Total number of cells.
    #[inline]
    pub const fn count(self) -> u64 {
        self.cols as u64 * self.rows as u64
    }

    /// Returns `true` when the coordinate lies inside the grid.
    #[inline]
    pub const fn contains(self, c: GridCoord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Row-major linear index of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    #[inline]
    pub fn index_of(self, c: GridCoord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside grid {self:?}");
        c.y as usize * self.cols as usize + c.x as usize
    }

    /// Coordinate corresponding to a row-major linear index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn coord_of(self, index: usize) -> GridCoord {
        assert!(index < self.count() as usize, "index out of range");
        GridCoord::new(
            (index % self.cols as usize) as u32,
            (index / self.cols as usize) as u32,
        )
    }

    /// Iterator over all coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = GridCoord> {
        (0..self.rows).flat_map(move |y| (0..self.cols).map(move |x| GridCoord::new(x, y)))
    }

    /// 4-neighbourhood of a coordinate, clipped to the grid.
    pub fn neighbors4(self, c: GridCoord) -> Neighbors4 {
        Neighbors4 {
            dims: self,
            center: c,
            next: 0,
        }
    }

    /// 8-neighbourhood of a coordinate, clipped to the grid.
    pub fn neighbors8(self, c: GridCoord) -> Neighbors8 {
        Neighbors8 {
            dims: self,
            center: c,
            next: 0,
        }
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.cols, self.rows)
    }
}

const OFFSETS4: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
const OFFSETS8: [(i32, i32); 8] = [
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];

/// Iterator over the in-bounds 4-neighbours of a coordinate.
#[derive(Debug, Clone)]
pub struct Neighbors4 {
    dims: GridDims,
    center: GridCoord,
    next: usize,
}

impl Iterator for Neighbors4 {
    type Item = GridCoord;

    fn next(&mut self) -> Option<GridCoord> {
        while self.next < OFFSETS4.len() {
            let (dx, dy) = OFFSETS4[self.next];
            self.next += 1;
            if let Some(c) = self.center.offset(dx, dy) {
                if self.dims.contains(c) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// Iterator over the in-bounds 8-neighbours of a coordinate.
#[derive(Debug, Clone)]
pub struct Neighbors8 {
    dims: GridDims,
    center: GridCoord,
    next: usize,
}

impl Iterator for Neighbors8 {
    type Item = GridCoord;

    fn next(&mut self) -> Option<GridCoord> {
        while self.next < OFFSETS8.len() {
            let (dx, dy) = OFFSETS8[self.next];
            self.next += 1;
            if let Some(c) = self.center.offset(dx, dy) {
                if self.dims.contains(c) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// A rectangular region of a grid, inclusive of both corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GridRect {
    /// Lower-left (minimum) corner.
    pub min: GridCoord,
    /// Upper-right (maximum) corner, inclusive.
    pub max: GridCoord,
}

impl GridRect {
    /// Creates a region from two corners, normalising their order.
    pub fn new(a: GridCoord, b: GridCoord) -> Self {
        Self {
            min: GridCoord::new(a.x.min(b.x), a.y.min(b.y)),
            max: GridCoord::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Number of cells covered.
    pub fn count(&self) -> u64 {
        (self.max.x - self.min.x + 1) as u64 * (self.max.y - self.min.y + 1) as u64
    }

    /// Returns `true` when the coordinate lies inside the region.
    pub fn contains(&self, c: GridCoord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// Iterator over all coordinates in the region, row-major.
    pub fn iter(&self) -> impl Iterator<Item = GridCoord> {
        let (minx, maxx, miny, maxy) = (self.min.x, self.max.x, self.min.y, self.max.y);
        (miny..=maxy).flat_map(move |y| (minx..=maxx).map(move |x| GridCoord::new(x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = GridCoord::new(2, 3);
        let b = GridCoord::new(5, 1);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn offset_clips_at_zero() {
        let c = GridCoord::new(0, 0);
        assert_eq!(c.offset(-1, 0), None);
        assert_eq!(c.offset(1, 2), Some(GridCoord::new(1, 2)));
    }

    #[test]
    fn dims_indexing_round_trips() {
        let d = GridDims::new(7, 5);
        assert_eq!(d.count(), 35);
        for i in 0..d.count() as usize {
            assert_eq!(d.index_of(d.coord_of(i)), i);
        }
        assert!(d.contains(GridCoord::new(6, 4)));
        assert!(!d.contains(GridCoord::new(7, 0)));
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn index_of_out_of_bounds_panics() {
        GridDims::new(2, 2).index_of(GridCoord::new(2, 0));
    }

    #[test]
    fn neighbours_at_corner_and_interior() {
        let d = GridDims::new(4, 4);
        let corner: Vec<_> = d.neighbors4(GridCoord::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let interior: Vec<_> = d.neighbors4(GridCoord::new(1, 1)).collect();
        assert_eq!(interior.len(), 4);
        let diag: Vec<_> = d.neighbors8(GridCoord::new(0, 0)).collect();
        assert_eq!(diag.len(), 3);
        let full: Vec<_> = d.neighbors8(GridCoord::new(2, 2)).collect();
        assert_eq!(full.len(), 8);
    }

    #[test]
    fn grid_iteration_covers_all_cells() {
        let d = GridDims::square(3);
        let cells: Vec<_> = d.iter().collect();
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0], GridCoord::new(0, 0));
        assert_eq!(cells[8], GridCoord::new(2, 2));
    }

    #[test]
    fn rect_region() {
        let r = GridRect::new(GridCoord::new(3, 4), GridCoord::new(1, 2));
        assert_eq!(r.min, GridCoord::new(1, 2));
        assert_eq!(r.max, GridCoord::new(3, 4));
        assert_eq!(r.count(), 9);
        assert!(r.contains(GridCoord::new(2, 3)));
        assert!(!r.contains(GridCoord::new(0, 0)));
        assert_eq!(r.iter().count(), 9);
    }

    #[test]
    fn to_position_is_cell_centre() {
        let pitch = 20e-6;
        let p = GridCoord::new(0, 1).to_position(pitch);
        assert!((p.x - 10e-6).abs() < 1e-12);
        assert!((p.y - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_array_has_over_100k_electrodes() {
        // The DATE'05 paper claims an array of more than 100,000 electrodes.
        let dims = GridDims::new(320, 320);
        assert!(dims.count() > 100_000);
    }
}
