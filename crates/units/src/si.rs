//! SI quantity newtypes.
//!
//! Each quantity wraps an `f64` in base SI units and provides the arithmetic
//! that is physically meaningful for the workspace: addition/subtraction of
//! like quantities, scaling by dimensionless factors, and ratios of like
//! quantities (which are dimensionless `f64`s). Domain-specific helper
//! constructors (`from_micrometers`, `from_microliters`, …) cover the ranges
//! the paper talks about.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared newtype boilerplate for an SI quantity.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a value expressed in the base SI unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base SI unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value to the inclusive range `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two like quantities.
            ///
            /// Returns `self / other` as a plain `f64`.
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

quantity!(
    /// Length in metres.
    Meters,
    "m"
);
quantity!(
    /// Velocity in metres per second.
    MetersPerSecond,
    "m/s"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric field magnitude in volts per metre.
    VoltsPerMeter,
    "V/m"
);
quantity!(
    /// Force in newtons.
    Newtons,
    "N"
);
quantity!(
    /// Mass in kilograms.
    Kilograms,
    "kg"
);
quantity!(
    /// Mass density in kilograms per cubic metre.
    KilogramsPerCubicMeter,
    "kg/m^3"
);
quantity!(
    /// Thermodynamic temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "degC"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Electric current in amperes.
    Amperes,
    "A"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Pressure in pascals.
    Pascals,
    "Pa"
);
quantity!(
    /// Dynamic viscosity in pascal-seconds.
    PascalSeconds,
    "Pa*s"
);
quantity!(
    /// Electrical conductivity in siemens per metre.
    SiemensPerMeter,
    "S/m"
);
quantity!(
    /// Volume in cubic metres.
    CubicMeters,
    "m^3"
);

impl Meters {
    /// Creates a length expressed in micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length expressed in millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length expressed in nanometres.
    #[inline]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Returns the length in micrometres.
    #[inline]
    pub fn as_micrometers(self) -> f64 {
        self.get() * 1e6
    }

    /// Returns the length in millimetres.
    #[inline]
    pub fn as_millimeters(self) -> f64 {
        self.get() * 1e3
    }

    /// Returns the length in nanometres.
    #[inline]
    pub fn as_nanometers(self) -> f64 {
        self.get() * 1e9
    }

    /// Squares the length, returning the raw value in m².
    #[inline]
    pub fn squared(self) -> f64 {
        self.get() * self.get()
    }

    /// Cubes the length into a [`CubicMeters`] volume.
    #[inline]
    pub fn cubed(self) -> CubicMeters {
        CubicMeters::new(self.get().powi(3))
    }
}

impl MetersPerSecond {
    /// Creates a velocity expressed in micrometres per second.
    #[inline]
    pub fn from_micrometers_per_second(um_s: f64) -> Self {
        Self::new(um_s * 1e-6)
    }

    /// Returns the velocity in micrometres per second.
    #[inline]
    pub fn as_micrometers_per_second(self) -> f64 {
        self.get() * 1e6
    }
}

impl Seconds {
    /// Creates a duration expressed in milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates a duration expressed in microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration expressed in nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a duration expressed in minutes.
    #[inline]
    pub fn from_minutes(min: f64) -> Self {
        Self::new(min * 60.0)
    }

    /// Creates a duration expressed in hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// Creates a duration expressed in days.
    #[inline]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * 86_400.0)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// Returns the duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.get() * 1e6
    }

    /// Returns the duration in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.get() / 60.0
    }

    /// Returns the duration in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.get() / 3600.0
    }

    /// Returns the duration in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.get() / 86_400.0
    }
}

impl Hertz {
    /// Creates a frequency expressed in kilohertz.
    #[inline]
    pub fn from_kilohertz(khz: f64) -> Self {
        Self::new(khz * 1e3)
    }

    /// Creates a frequency expressed in megahertz.
    #[inline]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Returns the frequency in megahertz.
    #[inline]
    pub fn as_megahertz(self) -> f64 {
        self.get() * 1e-6
    }

    /// Returns the period `1/f`.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero frequency yields an infinite period.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.get())
    }

    /// Angular frequency `2*pi*f` in rad/s (raw `f64`).
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.get()
    }
}

impl Volts {
    /// Creates a potential expressed in millivolts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Returns the potential in millivolts.
    #[inline]
    pub fn as_millivolts(self) -> f64 {
        self.get() * 1e3
    }

    /// Squared potential in V² — the quantity DEP force scales with.
    #[inline]
    pub fn squared(self) -> f64 {
        self.get() * self.get()
    }
}

impl Newtons {
    /// Creates a force expressed in piconewtons, the natural scale of DEP
    /// forces on single cells.
    #[inline]
    pub fn from_piconewtons(pn: f64) -> Self {
        Self::new(pn * 1e-12)
    }

    /// Returns the force in piconewtons.
    #[inline]
    pub fn as_piconewtons(self) -> f64 {
        self.get() * 1e12
    }

    /// Creates a force expressed in femtonewtons.
    #[inline]
    pub fn from_femtonewtons(fn_: f64) -> Self {
        Self::new(fn_ * 1e-15)
    }

    /// Returns the force in femtonewtons.
    #[inline]
    pub fn as_femtonewtons(self) -> f64 {
        self.get() * 1e15
    }
}

impl Kilograms {
    /// Creates a mass expressed in picograms (typical cell masses are
    /// hundreds of picograms).
    #[inline]
    pub fn from_picograms(pg: f64) -> Self {
        Self::new(pg * 1e-15)
    }

    /// Returns the mass in picograms.
    #[inline]
    pub fn as_picograms(self) -> f64 {
        self.get() * 1e15
    }
}

impl Kelvin {
    /// Creates a temperature from degrees Celsius.
    #[inline]
    pub fn from_celsius(c: f64) -> Self {
        Self::new(c + 273.15)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub fn as_celsius(self) -> f64 {
        self.get() - 273.15
    }
}

impl Celsius {
    /// Converts into [`Kelvin`].
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::from_celsius(self.get())
    }
}

impl Farads {
    /// Creates a capacitance expressed in femtofarads, the natural scale of
    /// the per-electrode sense capacitances in the paper's chip.
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Returns the capacitance in femtofarads.
    #[inline]
    pub fn as_femtofarads(self) -> f64 {
        self.get() * 1e15
    }

    /// Creates a capacitance expressed in picofarads.
    #[inline]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }

    /// Returns the capacitance in picofarads.
    #[inline]
    pub fn as_picofarads(self) -> f64 {
        self.get() * 1e12
    }
}

impl Watts {
    /// Creates a power expressed in milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn as_milliwatts(self) -> f64 {
        self.get() * 1e3
    }

    /// Creates a power expressed in microwatts.
    #[inline]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }
}

impl CubicMeters {
    /// Creates a volume expressed in microlitres (the paper's sample drop is
    /// about 4 µl).
    #[inline]
    pub fn from_microliters(ul: f64) -> Self {
        Self::new(ul * 1e-9)
    }

    /// Returns the volume in microlitres.
    #[inline]
    pub fn as_microliters(self) -> f64 {
        self.get() * 1e9
    }

    /// Creates a volume expressed in nanolitres.
    #[inline]
    pub fn from_nanoliters(nl: f64) -> Self {
        Self::new(nl * 1e-12)
    }

    /// Returns the volume in nanolitres.
    #[inline]
    pub fn as_nanoliters(self) -> f64 {
        self.get() * 1e12
    }
}

impl Div<Seconds> for Meters {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters::new(self.get() * rhs.get())
    }
}

impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds::new(self.get() / rhs.get())
    }
}

impl Div<Meters> for Volts {
    type Output = VoltsPerMeter;
    #[inline]
    fn div(self, rhs: Meters) -> VoltsPerMeter {
        VoltsPerMeter::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Watts {
    type Output = f64;
    /// Energy in joules.
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.get() * rhs.get()
    }
}

impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_conversions_round_trip() {
        let l = Meters::from_micrometers(20.0);
        assert!((l.as_micrometers() - 20.0).abs() < 1e-9);
        assert!((l.as_millimeters() - 0.02).abs() < 1e-12);
        assert!((l.as_nanometers() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn time_conversions_round_trip() {
        let t = Seconds::from_days(2.5);
        assert!((t.as_hours() - 60.0).abs() < 1e-9);
        assert!((t.as_days() - 2.5).abs() < 1e-12);
        let u = Seconds::from_micros(4.0);
        assert!((u.as_millis() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Volts::new(3.3);
        let b = Volts::new(1.2);
        assert!(((a + b).get() - 4.5).abs() < 1e-12);
        assert!(((a - b).get() - 2.1).abs() < 1e-12);
        assert!(((a * 2.0).get() - 6.6).abs() < 1e-12);
        assert!(((a / 2.0).get() - 1.65).abs() < 1e-12);
        assert!((a / b - 2.75).abs() < 1e-12);
        assert!(((-a).get() + 3.3).abs() < 1e-12);
    }

    #[test]
    fn velocity_relations() {
        let d = Meters::from_micrometers(100.0);
        let t = Seconds::new(2.0);
        let v = d / t;
        assert!((v.as_micrometers_per_second() - 50.0).abs() < 1e-9);
        let back = v * t;
        assert!((back.as_micrometers() - 100.0).abs() < 1e-9);
        let t2 = d / v;
        assert!((t2.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_conversion() {
        let k = Kelvin::from_celsius(25.0);
        assert!((k.get() - 298.15).abs() < 1e-12);
        assert!((k.as_celsius() - 25.0).abs() < 1e-12);
        assert!((Celsius::new(37.0).to_kelvin().get() - 310.15).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_and_angular() {
        let f = Hertz::from_megahertz(1.0);
        assert!((f.period().as_micros() - 1.0).abs() < 1e-9);
        assert!((f.angular() - 2.0 * std::f64::consts::PI * 1e6).abs() < 1.0);
    }

    #[test]
    fn small_scale_helpers() {
        assert!((Newtons::from_piconewtons(3.0).as_piconewtons() - 3.0).abs() < 1e-12);
        assert!((Farads::from_femtofarads(12.0).as_femtofarads() - 12.0).abs() < 1e-9);
        assert!((CubicMeters::from_microliters(4.0).as_microliters() - 4.0).abs() < 1e-12);
        assert!((Kilograms::from_picograms(500.0).as_picograms() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_clamp() {
        let a = Meters::new(1.0);
        let b = Meters::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Meters::new(5.0).clamp(a, b), b);
        assert_eq!(Meters::new(0.5).clamp(a, b), a);
    }

    #[test]
    fn sum_and_display() {
        let total: Seconds = (0..4).map(|i| Seconds::new(i as f64)).sum();
        assert_eq!(total.get(), 6.0);
        assert_eq!(format!("{}", Volts::new(3.3)), "3.3 V");
    }

    #[test]
    fn power_relations() {
        let p = Amperes::new(0.01) * Volts::new(3.3);
        assert!((p.as_milliwatts() - 33.0).abs() < 1e-9);
        let energy = p * Seconds::new(2.0);
        assert!((energy - 0.066).abs() < 1e-12);
    }

    #[test]
    fn field_from_voltage_over_gap() {
        let e = Volts::new(5.0) / Meters::from_micrometers(25.0);
        assert!((e.get() - 200_000.0).abs() < 1e-6);
    }
}
