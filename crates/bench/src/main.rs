//! `report` — regenerates every experiment table of the DATE'05 reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p labchip-bench --bin report            # all experiments
//! cargo run --release -p labchip-bench --bin report -- e2 e5   # a subset
//! ```
//!
//! The output is the markdown quoted in `EXPERIMENTS.md`.

use labchip::experiments::Experiment;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<Experiment> = if args.is_empty() {
        Experiment::all().to_vec()
    } else {
        args.iter()
            .filter_map(|a| {
                let parsed = Experiment::from_id(a);
                if parsed.is_none() {
                    eprintln!("unknown experiment id `{a}` (expected E1..E9)");
                }
                parsed
            })
            .collect()
    };

    println!("# labchip experiment report");
    println!();
    println!(
        "Reproduction of \"New Perspectives and Opportunities From the Wild West of \
         Microelectronic Biochips\" (Manaresi et al., DATE 2005)."
    );
    println!();
    for experiment in selected {
        let table = experiment.run_default();
        println!("{table}");
    }
}
