//! `report` — drives the scenario engine of the DATE'05 reproduction, and
//! emits the machine-readable field-kernel benchmark file.
//!
//! Usage:
//!
//! ```text
//! report list                          # enumerate the registered scenarios
//! report run --all                     # every experiment, markdown tables
//! report run e2 e5                     # a subset
//! report run --all --json              # one JSON document covering every scenario
//! report run e3 --set threads=2        # key=value overrides onto the typed config
//! report run --all --seed 7 --serial   # derived per-scenario seeds, serial order
//! report bench-fields [OUT.json]       # field-kernel benchmark trajectory
//! report bench-workload [OUT.json]     # workload/driver/farm benchmark trajectory
//! report journal-diff A.json B.json    # first divergence between two journals
//! report journal-diff --demo [--seed N] [--noise X] [--side N] [--particles N] [--save PREFIX]
//! report journal-diff --farm DIR JOB   # saved farm job vs a fresh baseline run
//! report journal-diff --fleet [--live] [--seed N] [--side N] [--particles N] [--grid CxR]
//!                                      # monolithic vs sharded global journal (E16);
//!                                      # --live plans shard windows in parallel
//! report farm demo [...]               # run a demo workload on an in-process farm
//! report farm submit P.json [...]      # run one protocol JSON as a farm job
//! report farm status --dir DIR JOB     # one saved job record, as JSON
//! report farm history --dir DIR [...]  # saved job records, filtered, as JSON
//! report [e2 e5 ...]                   # legacy spelling of `run`
//! ```
//!
//! The markdown output is what `EXPERIMENTS.md` quotes; `--json` emits the
//! same tables (plus full typed outputs, configs, seeds and wall-clock
//! times) as one JSON document from the same source. While scenarios run,
//! row-level progress streams to stderr so long runs never go dark. The
//! `bench-fields` subcommand times the field-evaluation kernels and the
//! particle-stepping loop and writes `BENCH_fields.json` (one object per
//! kernel with ns/op, plus simulator step throughput per thread count) so
//! successive PRs accumulate a perf trajectory.

use labchip::scenario::{outcomes_to_json, Progress, ProgressEvent, RunOutcome, Runner};
use labchip_bench::{cage_field, populated_simulator};
use labchip_farm::full_registry;
use labchip_physics::field::cache::FieldCache;
use labchip_physics::field::FieldModel;
use labchip_units::Vec3;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-fields") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_fields.json".into());
            bench_fields(&out);
        }
        Some("bench-workload") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_workload.json".into());
            bench_workload(&out);
        }
        Some("journal-diff") => {
            if let Err(message) = journal_diff(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        Some("farm") => {
            if let Err(message) = farm_command(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        Some("list") => list_scenarios(),
        Some("run") => {
            if let Err(message) = run_scenarios(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        // Legacy spelling: bare ids (or nothing for everything), markdown.
        // Long-standing contract: unknown ids warn and are skipped (exit 0),
        // unlike the `run` subcommand's hard errors.
        _ => {
            let registry = full_registry();
            let mut legacy: Vec<String> = Vec::with_capacity(args.len());
            for id in &args {
                if registry.get(id).is_some() {
                    legacy.push(id.clone());
                } else {
                    eprintln!(
                        "unknown experiment id `{id}` (expected {})",
                        registry.id_range()
                    );
                }
            }
            if args.is_empty() {
                legacy.push("--all".into());
            } else if legacy.is_empty() {
                // All ids were unknown: keep the legacy empty report.
                print_markdown_report(&[]);
                return;
            }
            legacy.push("--quiet".into());
            if let Err(message) = run_scenarios(&legacy) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }
}

/// `report list` — one line per registered scenario.
fn list_scenarios() {
    let registry = full_registry();
    for scenario in registry.iter() {
        println!("{}  {}", scenario.id(), scenario.describe());
    }
    println!("{} scenarios", registry.len());
}

/// Streams scenario progress to stderr, one line per event.
struct StderrProgress;

impl Progress for StderrProgress {
    fn on_event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::ScenarioStarted { scenario } => {
                eprintln!("[{scenario}] started");
            }
            ProgressEvent::Row {
                scenario,
                index,
                summary,
            } => {
                eprintln!("[{scenario}] row {index}: {summary}");
            }
            ProgressEvent::SimSteps {
                scenario,
                steps,
                elapsed_s,
                particles,
            } => {
                eprintln!(
                    "[{scenario}] sim t={elapsed_s:.2} s (+{steps} steps, {particles} particles)"
                );
            }
            ProgressEvent::ScenarioFinished {
                scenario,
                rows,
                wall_ms,
            } => {
                eprintln!("[{scenario}] done: {rows} rows in {wall_ms:.1} ms");
            }
        }
    }
}

/// `report run ...` — executes a scenario subset through the engine.
fn run_scenarios(args: &[String]) -> Result<(), String> {
    let mut ids: Vec<String> = Vec::new();
    let mut all = false;
    let mut json = false;
    let mut quiet = false;
    let mut runner = Runner::new(full_registry());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--serial" => {
                runner.set_parallel(false);
            }
            "--quiet" => quiet = true,
            "--set" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--set needs a key=value argument".to_owned())?;
                runner.set_override(spec).map_err(|e| e.to_string())?;
            }
            "--seed" => {
                let seed = iter
                    .next()
                    .ok_or_else(|| "--seed needs an integer argument".to_owned())?;
                runner.set_base_seed(seed.parse().map_err(|_| format!("invalid seed `{seed}`"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            id => ids.push(id.to_owned()),
        }
    }
    if !quiet {
        runner.set_progress(Arc::new(StderrProgress));
    }

    let outcomes = if all {
        if !ids.is_empty() {
            return Err("pass either explicit ids or --all, not both".to_owned());
        }
        runner.run_all().map_err(|e| e.to_string())?
    } else if ids.is_empty() {
        return Err("no scenarios selected (pass ids like `e3`, or --all)".to_owned());
    } else {
        runner.run(&ids).map_err(|e| e.to_string())?
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcomes_to_json(&outcomes))
        );
    } else {
        print_markdown_report(&outcomes);
    }
    Ok(())
}

fn print_markdown_report(outcomes: &[RunOutcome]) {
    println!("# labchip experiment report");
    println!();
    println!(
        "Reproduction of \"New Perspectives and Opportunities From the Wild West of \
         Microelectronic Biochips\" (Manaresi et al., DATE 2005)."
    );
    println!();
    for outcome in outcomes {
        println!("{}", outcome.table);
    }
}

/// Median ns/op of `f`, adaptively batched.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate a batch size costing ≳1 ms.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed().as_micros() >= 1_000 {
            break;
        }
        batch *= 2;
    }
    let mut samples = Vec::with_capacity(32);
    for _ in 0..32 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_fields(out_path: &str) {
    // Fail fast on an unwritable destination — the measurements below take
    // a minute and would otherwise be thrown away at the final write.
    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }
    let mut entries: Vec<(String, f64)> = Vec::new();

    for side in [16u32, 320] {
        let field = cage_field(side);
        let probe = Vec3::new(
            field.plane().width() / 2.0,
            field.plane().height() / 2.0,
            30e-6,
        );
        entries.push((
            format!("kernel_field_evaluation/potential/{side}"),
            time_ns(|| {
                black_box(field.potential(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/e_squared/{side}"),
            time_ns(|| {
                black_box(field.e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared_fd/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared_fd(black_box(probe)));
            }),
        ));
    }

    {
        let field = cage_field(16);
        let cache = FieldCache::build(&field);
        let probe = Vec3::new(163.1e-6, 157.7e-6, 31e-6);
        entries.push((
            "kernel_field_evaluation/field_cache_grad_lookup".into(),
            time_ns(|| {
                black_box(cache.grad_e_squared(black_box(probe)));
            }),
        ));
    }

    // Simulator step throughput: particle-steps per second, 1000 particles.
    // The `threads/1` vs `threads/all_cores` comparison is meaningless
    // without knowing how many cores "all" resolved to on the machine that
    // ran it (a 1-core runner legitimately reports a 1.0x speedup), so the
    // machine's parallelism is recorded alongside every row and in the
    // document's `meta` block.
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut throughput: Vec<(String, f64, usize)> = Vec::new();
    for threads in [1usize, 0] {
        let mut sim = populated_simulator(threads, 1000);
        let ns_per_step = time_ns(|| sim.run(1));
        let resolved = if threads == 0 {
            available_parallelism
        } else {
            threads
        };
        let label = if threads == 0 {
            format!("all_cores({resolved})")
        } else {
            threads.to_string()
        };
        throughput.push((
            format!("simulator_step_1000_particles/threads/{label}"),
            ns_per_step,
            resolved,
        ));
        throughput.push((
            format!("particle_steps_per_second/threads/{label}"),
            1000.0 / (ns_per_step * 1e-9),
            resolved,
        ));
    }

    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}}},\n  \"benchmarks\": [\n"
    );
    for (i, (id, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() || !throughput.is_empty() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}}{sep}\n"
        ));
    }
    for (i, (id, value, threads)) in throughput.iter().enumerate() {
        let sep = if i + 1 < throughput.len() { "," } else { "" };
        let key = if id.starts_with("particle_steps") {
            "value"
        } else {
            "ns_per_op"
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"{key}\": {value:.1}, \"threads\": {threads}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    let speedup = {
        let find = |needle: &str| {
            entries
                .iter()
                .find(|(id, _)| id == needle)
                .map(|(_, ns)| *ns)
        };
        match (
            find("kernel_field_evaluation/grad_e_squared_fd/320"),
            find("kernel_field_evaluation/grad_e_squared/320"),
        ) {
            (Some(fd), Some(analytic)) if analytic > 0.0 => fd / analytic,
            _ => f64::NAN,
        }
    };
    println!(
        "wrote {out_path} ({} entries)",
        entries.len() + throughput.len()
    );
    println!("analytic grad_e_squared speedup over finite differences (side 320): {speedup:.1}x");
}

/// `report bench-workload OUT.json` — the workload-pipeline perf
/// trajectory: incremental-router planning, full driver cycles with and
/// without the event journal attached, and journal replay.
///
/// All cycle variants run the *identical* deterministic cycle sequence
/// (same seeds, same routing problems), so their wall-clock totals are
/// directly comparable; the minimum over repetitions filters scheduler
/// noise out of the overhead figures. CI bounds the journal write overhead
/// (< 2% of a live cycle) and requires replay to be faster than live
/// execution — the property that makes the journal a usable crash-recovery
/// and debugging artifact.
fn bench_workload(out_path: &str) {
    use labchip::workload::{sort_problem, BatchDriver, ForceEnvelope, Protocol, WorkloadConfig};
    use labchip_manipulation::journal::{replay, Journal};
    use labchip_manipulation::sharding::{IncrementalRouter, RouterCache, ShardConfig};
    use labchip_units::GridDims;

    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }

    let envelope = ForceEnvelope::date05_reference();
    let mut entries: Vec<(String, f64)> = Vec::new();

    // Incremental-router planning alone (no execution, no sensing).
    for (side, particles) in [(128u32, 500usize), (256, 1000)] {
        let driver = BatchDriver::with_envelope(
            WorkloadConfig {
                array_side: side,
                ..WorkloadConfig::default()
            },
            envelope,
        );
        let mut samples = Vec::with_capacity(8);
        for _ in 0..8 {
            let t0 = Instant::now();
            black_box(driver.plan_only(particles, 2005));
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        entries.push((
            format!("workload/incremental_plan/{side}x{particles}"),
            samples[samples.len() / 2],
        ));
    }

    // Warm-start replanning at full chip scale: one cold solve of the
    // 320²/10k sort (the E10 headline problem) on a pinned single-thread
    // pool, then warm re-solves of the identical problem against the primed
    // plan cache. Warm output is bit-identical to cold by the cache's
    // content-key construction, so the ratio row is a pure speed figure.
    let warm_cold_ratio = {
        let problem = sort_problem(GridDims::square(320), 10_000, 2, 2005);
        let router = IncrementalRouter::new(ShardConfig::default());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("thread pool construction is infallible");
        let mut cache = RouterCache::new();
        let t0 = Instant::now();
        pool.install(|| {
            black_box(
                router
                    .solve_cached(&problem, &mut cache)
                    .expect("generated problems are always well-formed"),
            )
        });
        let cold = t0.elapsed().as_secs_f64();
        let mut samples = Vec::with_capacity(3);
        for _ in 0..3 {
            let t0 = Instant::now();
            pool.install(|| {
                black_box(
                    router
                        .solve_cached(&problem, &mut cache)
                        .expect("generated problems are always well-formed"),
                )
            });
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let warm = samples[samples.len() / 2];
        entries.push((
            "workload/incremental_plan_cold/320x10000".into(),
            cold * 1e9,
        ));
        entries.push((
            "workload/incremental_plan_warm/320x10000".into(),
            warm * 1e9,
        ));
        warm / cold
    };

    // The SoA tile-membership build alone: the per-window counting sort
    // over the 320²/10k scatter (margin freezing included), isolated from
    // the A* so the partition-build lever of the cold solve is tracked.
    {
        let problem = sort_problem(GridDims::square(320), 10_000, 2, 2005);
        let positions: Vec<_> = problem
            .requests
            .iter()
            .map(|request| request.start)
            .collect();
        let router = IncrementalRouter::new(ShardConfig::default());
        let mut samples = Vec::with_capacity(16);
        for _ in 0..16 {
            let t0 = Instant::now();
            black_box(router.partition_build_probe(GridDims::square(320), 2, &positions));
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        entries.push((
            "workload/partition_build/320x10000".into(),
            samples[samples.len() / 2],
        ));
    }

    // Thread-pinned planning: the same problem under explicit rayon pools,
    // so the trajectory records a measured scaling curve (threads + speedup
    // per row) instead of whatever pool the ambient environment happened to
    // provide.
    let pinned: Vec<(String, f64, usize)> = {
        let driver = BatchDriver::with_envelope(
            WorkloadConfig {
                array_side: 128,
                ..WorkloadConfig::default()
            },
            envelope,
        );
        [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("thread pool construction is infallible");
                let mut samples = Vec::with_capacity(8);
                for _ in 0..8 {
                    let t0 = Instant::now();
                    pool.install(|| black_box(driver.plan_only(500, 2005)));
                    samples.push(t0.elapsed().as_secs_f64() * 1e9);
                }
                samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                (
                    format!("workload/incremental_plan_pinned/128x500/threads/{threads}"),
                    samples[samples.len() / 2],
                    threads,
                )
            })
            .collect()
    };

    // Full driver cycles: live (no journal) vs journaled, the same
    // deterministic cycle sequence each way, then replay of the recorded
    // journals back into chip states.
    const CYCLES: usize = 4;
    const REPS: usize = 3;
    let cycle_config = WorkloadConfig {
        array_side: 96,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(cycle_config.array_side);
    let sep = cycle_config.min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, 200);
    let time_cycles = |journaled: bool| -> (f64, Vec<Journal>) {
        // Minimum total over repetitions: identical work each repetition,
        // so min is the cleanest noise filter.
        let mut best = f64::INFINITY;
        let mut journals = Vec::new();
        for _ in 0..REPS {
            let driver = BatchDriver::with_envelope(cycle_config, envelope);
            let mut run_journals = Vec::with_capacity(CYCLES);
            let t0 = Instant::now();
            for cycle in 0..CYCLES {
                if journaled {
                    let (outcome, journal) = driver.runner().run_journaled(&protocol, cycle);
                    black_box(outcome);
                    run_journals.push(journal);
                } else {
                    black_box(driver.runner().run(&protocol, cycle));
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed < best {
                best = elapsed;
                journals = run_journals;
            }
        }
        (best, journals)
    };
    // Warm both paths once (field caches, allocator) before measuring.
    time_cycles(false);
    let (live_total, _) = time_cycles(false);
    let (journaled_total, journals) = time_cycles(true);
    let replay_total = {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for journal in &journals {
                black_box(replay(journal, dims, sep).expect("recorded journals replay cleanly"));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let per_cycle = |total: f64| total / CYCLES as f64 * 1e9;
    entries.push((
        "workload/driver_cycle_live/96x200".into(),
        per_cycle(live_total),
    ));
    entries.push((
        "workload/driver_cycle_journaled/96x200".into(),
        per_cycle(journaled_total),
    ));
    entries.push((
        "workload/cycle_replay/96x200".into(),
        per_cycle(replay_total),
    ));
    let journal_overhead_pct = if live_total > 0.0 {
        100.0 * (journaled_total / live_total - 1.0)
    } else {
        f64::NAN
    };
    let replay_vs_live_pct = if live_total > 0.0 {
        100.0 * (replay_total / live_total - 1.0)
    } else {
        f64::NAN
    };

    // Farm fleet benchmark: the E15 scenario's worker-count sweep, folded
    // into the same trajectory file — jobs/sec and latency percentiles per
    // fleet size, plus the sweep's divergence tripwire.
    let farm_rows: Vec<(String, f64, usize)> = {
        use labchip::scenario::{Scenario, ScenarioContext};
        let scenario = labchip_farm::FarmScenario;
        let config = labchip_farm::scenario::Config::default();
        let results = scenario.run(&config, &mut ScenarioContext::silent("E15"));
        let mut rows = Vec::new();
        for row in &results.fleet {
            rows.push((
                format!("workload/farm/jobs_per_sec/workers/{}", row.workers),
                row.jobs_per_sec,
                row.workers,
            ));
            rows.push((
                format!("workload/farm/latency_p50_ms/workers/{}", row.workers),
                row.latency_p50_ms,
                row.workers,
            ));
            rows.push((
                format!("workload/farm/latency_p99_ms/workers/{}", row.workers),
                row.latency_p99_ms,
                row.workers,
            ));
        }
        rows.push((
            "workload/farm/divergences".into(),
            results.total_divergences as f64,
            0,
        ));
        rows
    };

    // Sharded-fleet benchmark: a reduced E16 sweep (the default 320²/10k
    // sweep belongs to `report run e16`), recording wall clock and handoff
    // traffic per shard grid plus the equivalence tripwire.
    let fleet_rows: Vec<(String, f64, usize)> = {
        use labchip::scenario::{Scenario, ScenarioContext};
        let scenario = labchip_farm::FleetScenario;
        let config = labchip_farm::fleet_scenario::Config {
            array_side: 96,
            particles: 200,
            ..labchip_farm::fleet_scenario::Config::default()
        };
        let results = scenario.run(&config, &mut ScenarioContext::silent("E16"));
        let mut rows = Vec::new();
        for row in &results.grids {
            rows.push((
                format!("workload/fleet/wall_ms/grid/{}", row.grid),
                row.wall_ms,
                row.shards,
            ));
            rows.push((
                format!("workload/fleet/handoffs/grid/{}", row.grid),
                row.handoffs as f64,
                row.shards,
            ));
        }
        rows.push((
            "workload/fleet/divergences".into(),
            results.total_divergences as f64,
            0,
        ));
        rows
    };

    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Live fleet-planning benchmark: the paper-scale 320²/10k window
    // planned serially shard-by-shard (`route_windows`) versus live in
    // parallel over seam channels (`route_windows_live`), per shard grid.
    // Particles sit on a 4×2-spaced lattice with x ≡ 3 (mod 4) — every
    // swept band boundary is a multiple of 80, so column B-1 is always
    // populated — and each declares a one-step transfer to the right:
    // every shard plans a real, *solvable* window (starts and goals both
    // satisfy the separation rule) and every vertical seam carries
    // genuine export→import traffic. The `speedup` field on
    // the live rows is gated on `available_parallelism >= 2` — a 1-core
    // box reports `"skipped"` instead of a misleading sub-1.0 number.
    // The trailing divergence row reruns the reduced E16 sweep with
    // `live_planning` on: the equivalence tripwire for the live path.
    let fleet_live_rows: Vec<(String, f64, usize, String)> = {
        use labchip::scenario::{Scenario, ScenarioContext};
        use labchip_manipulation::cage::ParticleId;
        use labchip_manipulation::fleet::{FleetTopology, ShardedState};
        use labchip_manipulation::sharding::{IncrementalRouter, ShardConfig};
        use labchip_units::GridCoord;
        const SIDE: u32 = 320;
        const PARTICLES: usize = 10_000;
        let dims = GridDims::square(SIDE);
        let sep = 2u32;
        let router = IncrementalRouter::new(ShardConfig::default());
        let mut placements: Vec<(ParticleId, GridCoord)> = Vec::with_capacity(PARTICLES);
        'lattice: for y in (1..SIDE).step_by(2) {
            for x in (3..SIDE).step_by(4) {
                let id = ParticleId(placements.len() as u64 + 1);
                placements.push((id, GridCoord::new(x, y)));
                if placements.len() == PARTICLES {
                    break 'lattice;
                }
            }
        }
        let transfers: Vec<(ParticleId, GridCoord, GridCoord)> = placements
            .iter()
            .filter(|(_, at)| at.x + 1 < SIDE)
            .map(|&(id, at)| (id, at, GridCoord::new(at.x + 1, at.y)))
            .collect();
        let build = |cols: u32, rows: u32| {
            let mut fleet = ShardedState::new(FleetTopology::new(dims, sep, cols, rows));
            for &(id, at) in &placements {
                fleet.mirror_place(id, at);
            }
            fleet.begin_transfers(&transfers);
            fleet
        };
        let mut rows_out = Vec::new();
        for &(cols, grid_rows) in &[(1u32, 1u32), (2, 1), (2, 2), (4, 2)] {
            let shards = (cols * grid_rows) as usize;
            let mut serial = build(cols, grid_rows);
            let t0 = Instant::now();
            serial.route_windows(&router);
            let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut live = build(cols, grid_rows);
            let t0 = Instant::now();
            let report = live.route_windows_live(&router);
            let live_ms = t0.elapsed().as_secs_f64() * 1e3;
            let speedup = if available_parallelism >= 2 {
                format!(", \"speedup\": {:.3}", serial_ms / live_ms.max(1e-9))
            } else {
                ", \"speedup\": \"skipped\"".into()
            };
            rows_out.push((
                format!("workload/fleet_live/serial_ms/grid/{cols}x{grid_rows}"),
                serial_ms,
                shards,
                String::new(),
            ));
            rows_out.push((
                format!("workload/fleet_live/live_ms/grid/{cols}x{grid_rows}"),
                live_ms,
                shards,
                speedup,
            ));
            rows_out.push((
                format!("workload/fleet_live/seam_messages/grid/{cols}x{grid_rows}"),
                report.seam_messages as f64,
                shards,
                String::new(),
            ));
        }
        let live_sweep = labchip_farm::FleetScenario.run(
            &labchip_farm::fleet_scenario::Config {
                array_side: 96,
                particles: 200,
                live_planning: true,
                ..labchip_farm::fleet_scenario::Config::default()
            },
            &mut ScenarioContext::silent("E16"),
        );
        rows_out.push((
            "workload/fleet_live/divergences".into(),
            live_sweep.total_divergences as f64,
            0,
            String::new(),
        ));
        rows_out
    };
    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}, \"cycles\": {CYCLES}, \"reps\": {REPS}}},\n  \"benchmarks\": [\n"
    );
    for (id, ns) in &entries {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}},\n"
        ));
    }
    let pinned_baseline = pinned.first().map(|(_, ns, _)| *ns).unwrap_or(f64::NAN);
    for (id, ns, threads) in &pinned {
        let speedup = pinned_baseline / ns;
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}, \"threads\": {threads}, \"speedup\": {speedup:.3}}},\n"
        ));
    }
    for (id, value, workers) in farm_rows.iter().chain(&fleet_rows) {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"value\": {value:.3}, \"threads\": {workers}}},\n"
        ));
    }
    for (id, value, shards, extra) in &fleet_live_rows {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"value\": {value:.3}, \"threads\": {shards}{extra}}},\n"
        ));
    }
    json.push_str(&format!(
        "    {{\"id\": \"workload/plan_warm_cold_ratio\", \"value\": {warm_cold_ratio:.4}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"id\": \"workload/journal_overhead_pct\", \"value\": {journal_overhead_pct:.3}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"id\": \"workload/replay_vs_live_pct\", \"value\": {replay_vs_live_pct:.3}}}\n"
    ));
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    println!(
        "wrote {out_path} ({} entries)",
        entries.len()
            + pinned.len()
            + farm_rows.len()
            + fleet_rows.len()
            + fleet_live_rows.len()
            + 3
    );
    println!("warm/cold replan ratio (320x10000, 1 thread): {warm_cold_ratio:.4}");
    if let Some((_, _, _)) = pinned.last() {
        let curve: Vec<String> = pinned
            .iter()
            .map(|(_, ns, threads)| format!("{threads}t {:.2}x", pinned_baseline / ns))
            .collect();
        println!(
            "pinned incremental-plan scaling (128x500): {}",
            curve.join(", ")
        );
    }
    for (id, value, _) in farm_rows.iter().chain(&fleet_rows) {
        if id.contains("jobs_per_sec") || id.contains("wall_ms") || id.ends_with("divergences") {
            println!("{id}: {value:.2}");
        }
    }
    for (id, value, _, extra) in &fleet_live_rows {
        if id.contains("_ms") || id.ends_with("divergences") {
            println!("{id}: {value:.2}{extra}");
        }
    }
    println!(
        "journal write overhead vs live cycle: {journal_overhead_pct:+.3}% \
         ({:.1} ms journaled vs {:.1} ms live per cycle)",
        per_cycle(journaled_total) / 1e6,
        per_cycle(live_total) / 1e6
    );
    println!(
        "journal replay vs live execution: {replay_vs_live_pct:+.3}% \
         ({:.3} ms replay per cycle)",
        per_cycle(replay_total) / 1e6
    );
}

/// `report journal-diff` — where do two chip-state journals first diverge?
///
/// File mode (`report journal-diff A.json B.json`) compares two saved
/// journals event by event and prints the common-prefix length and the
/// first divergent pair. Demo mode (`--demo`) runs the canned cycle twice
/// at the *same* seed — open-loop (recovery disabled) versus closed-loop
/// (the DATE'05 reference policy) — and diffs the two journals: the
/// divergence point is exactly where the recovery loop first acted on a
/// detection mismatch, the E12 debugging question the journal was built to
/// answer. `--save PREFIX` writes both demo journals for later file-mode
/// diffs. Fleet mode (`--fleet`) runs the canned cycle monolithic and
/// sharded at the same seed and diffs the two *global* journals — the E16
/// contract says they are byte-identical, so anything but "journals are
/// identical" is a sharding bug, localised to its first event. With
/// `--live` the sharded run plans its windows live and in parallel over
/// seam handoff channels; the contract (and the expected output) is
/// unchanged.
fn journal_diff(args: &[String]) -> Result<(), String> {
    use labchip::workload::{BatchDriver, Protocol, RecoveryPolicy, WorkloadConfig};
    use labchip_manipulation::journal::{diff, Journal};
    use labchip_units::GridDims;

    // Farm mode: a saved job's committed journal vs a fresh baseline run
    // of the same record. The record carries protocol + effective config,
    // so a `Done` job must diff clean — any divergence localises exactly
    // where the farm's execution (including any kill/resume history)
    // departed from a straight-through run.
    if args.first().map(String::as_str) == Some("--farm") {
        let [_, dir, job] = args else {
            return Err("usage: report journal-diff --farm DIR JOB".into());
        };
        let id = labchip_farm::JobId::parse(job)
            .ok_or_else(|| format!("`{job}` is not a job id (expected `7` or `job-7`)"))?;
        let store = labchip_farm::HistoryStore::new(dir.as_str());
        let record = store
            .load_record(id)
            .map_err(|err| format!("cannot load {id} from `{dir}`: {err}"))?;
        let saved = store
            .load_journal(id)
            .map_err(|err| format!("cannot load {id}'s journal from `{dir}`: {err}"))?;
        let driver = BatchDriver::new(record.config);
        let (_, baseline) = driver.runner().run_journaled(&record.protocol, 0);
        println!(
            "{id} (`{}`, tenant {}, status {}, {} resumes): committed journal vs fresh baseline\n",
            record.protocol.name,
            record.tenant,
            record.status.label(),
            record.resumes
        );
        println!("{}", diff(&saved, &baseline));
        return Ok(());
    }

    // Fleet mode: the same canned cycle run monolithic and sharded; the
    // sharded run's global journal must be byte-identical (the E16
    // equivalence contract), so this diff is expected to print
    // "journals are identical" — CI greps for exactly that.
    if args.first().map(String::as_str) == Some("--fleet") {
        use labchip_manipulation::fleet::{FleetTopology, ShardedState};
        let mut seed = 2005u64;
        let mut side = 48u32;
        let mut particles = 60usize;
        let mut grid = (2u32, 1u32);
        let mut live = false;
        let mut rest = args[1..].iter();
        while let Some(flag) = rest.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                rest.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--live" => live = true,
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--side" => {
                    side = value("--side")?
                        .parse()
                        .map_err(|e| format!("--side: {e}"))?
                }
                "--particles" => {
                    particles = value("--particles")?
                        .parse()
                        .map_err(|e| format!("--particles: {e}"))?;
                }
                "--grid" => {
                    let raw = value("--grid")?;
                    let (cols, rows) = raw
                        .split_once('x')
                        .ok_or_else(|| format!("--grid expects COLSxROWS, got `{raw}`"))?;
                    grid = (
                        cols.parse().map_err(|e| format!("--grid cols: {e}"))?,
                        rows.parse().map_err(|e| format!("--grid rows: {e}"))?,
                    );
                }
                other => return Err(format!("unknown journal-diff --fleet flag `{other}`")),
            }
        }
        let config = WorkloadConfig {
            array_side: side,
            seed,
            live_planning: live,
            ..WorkloadConfig::default()
        };
        let dims = GridDims::square(side);
        let sep = config.min_separation.max(1);
        let protocol = Protocol::canned_cycle(dims, sep, particles);
        let driver = BatchDriver::new(config);
        let (_, monolithic) = driver.runner().run_journaled(&protocol, 0);
        let fleet = ShardedState::new(FleetTopology::new(dims, sep, grid.0, grid.1));
        let (_, sharded, fleet) = driver.runner().run_sharded(&protocol, 0, fleet);
        let outcome = fleet.into_outcome();
        println!(
            "canned cycle, seed {seed}, {side}x{side}, {particles} particles:\n\
             monolithic global journal vs {} ({}x{} grid, {} handoffs) global journal\n",
            if live {
                "live-planned sharded"
            } else {
                "sharded"
            },
            grid.0,
            grid.1,
            outcome.handoffs()
        );
        println!("{}", diff(&monolithic, &sharded));
        return Ok(());
    }

    if args.first().map(String::as_str) != Some("--demo") {
        let [path_a, path_b] = args else {
            return Err(
                "usage: report journal-diff A.json B.json  |  report journal-diff --demo \
                 [--seed N] [--noise X] [--side N] [--particles N] [--save PREFIX]  |  \
                 report journal-diff --farm DIR JOB  |  report journal-diff --fleet \
                 [--live] [--seed N] [--side N] [--particles N] [--grid CxR]"
                    .into(),
            );
        };
        let load = |path: &String| -> Result<Journal, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|err| format!("cannot read journal `{path}`: {err}"))?;
            serde_json::from_str(&text)
                .map_err(|err| format!("`{path}` is not a journal JSON: {err}"))
        };
        let a = load(path_a)?;
        let b = load(path_b)?;
        println!("{}", diff(&a, &b));
        return Ok(());
    }

    // Demo mode: open- vs closed-loop at the same seed.
    let mut seed = 2005u64;
    let mut noise = 8.0f64;
    let mut side = 48u32;
    let mut particles = 60usize;
    let mut save: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            rest.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--noise" => {
                noise = value("--noise")?
                    .parse()
                    .map_err(|e| format!("--noise: {e}"))?;
            }
            "--side" => {
                side = value("--side")?
                    .parse()
                    .map_err(|e| format!("--side: {e}"))?
            }
            "--particles" => {
                particles = value("--particles")?
                    .parse()
                    .map_err(|e| format!("--particles: {e}"))?;
            }
            "--save" => save = Some(value("--save")?.clone()),
            other => return Err(format!("unknown journal-diff flag `{other}`")),
        }
    }

    let base = WorkloadConfig {
        array_side: side,
        seed,
        noise_scale: noise,
        detection_frames: 2,
        recovery: RecoveryPolicy::disabled(),
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(side);
    let sep = base.min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, particles);
    let run = |config: WorkloadConfig| {
        let driver = BatchDriver::new(config);
        driver.runner().run_journaled(&protocol, 0).1
    };
    let open = run(base);
    let closed = run(WorkloadConfig {
        recovery: RecoveryPolicy::date05_reference(),
        ..base
    });
    println!(
        "canned cycle, seed {seed}, noise {noise}, {side}x{side}, {particles} particles:\n\
         open-loop (recovery off) vs closed-loop (DATE'05 reference policy)\n"
    );
    println!("{}", diff(&open, &closed));
    if let Some(prefix) = save {
        for (suffix, journal) in [("open", &open), ("closed", &closed)] {
            let path = format!("{prefix}-{suffix}.json");
            std::fs::write(&path, serde_json::to_string(journal))
                .map_err(|err| format!("cannot write `{path}`: {err}"))?;
            println!("wrote {path} ({} events)", journal.len());
        }
    }
    Ok(())
}

/// `report farm ...` — job control against an in-process chip farm.
///
/// The farm is a library service, not a daemon, so `demo` and `submit`
/// spin a fleet up, drive it to drain and tear it down in one invocation;
/// `--out DIR` persists every terminal job's record + committed journal
/// through the [`HistoryStore`](labchip_farm::HistoryStore), and `status`
/// / `history` read such a directory back — the same files
/// `report journal-diff --farm` consumes.
fn farm_command(args: &[String]) -> Result<(), String> {
    use labchip_farm::{Farm, FarmConfig, HistoryFilter, HistoryStore, JobId, JobSpec};

    let usage = "usage: report farm demo [--workers N] [--tenants N] [--jobs-per-tenant N] \
                 [--kill N] [--side N] [--particles N] [--seed N] [--out DIR]  |  \
                 report farm submit PROTOCOL.json [--tenant T] [--workers N] [--seed N] \
                 [--side N] [--out DIR]  |  report farm status --dir DIR JOB  |  \
                 report farm history --dir DIR [--tenant T] [--depth N] [--terminal]";
    match args.first().map(String::as_str) {
        Some("demo") => {
            let mut workers = 2usize;
            let mut tenants = 3usize;
            let mut jobs_per_tenant = 2usize;
            let mut kill = 1usize;
            let mut side = 32u32;
            let mut particles = 24usize;
            let mut seed = 2005u64;
            let mut out: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    rest.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--workers" => workers = parse_flag(value("--workers")?, "--workers")?,
                    "--tenants" => tenants = parse_flag(value("--tenants")?, "--tenants")?,
                    "--jobs-per-tenant" => {
                        jobs_per_tenant =
                            parse_flag(value("--jobs-per-tenant")?, "--jobs-per-tenant")?;
                    }
                    "--kill" => kill = parse_flag(value("--kill")?, "--kill")?,
                    "--side" => side = parse_flag(value("--side")?, "--side")?,
                    "--particles" => particles = parse_flag(value("--particles")?, "--particles")?,
                    "--seed" => seed = parse_flag(value("--seed")?, "--seed")?,
                    "--out" => out = Some(value("--out")?.clone()),
                    other => return Err(format!("unknown farm demo flag `{other}`\n{usage}")),
                }
            }
            run_farm_demo(
                workers,
                tenants.max(1),
                jobs_per_tenant.max(1),
                kill,
                side,
                particles,
                seed,
                out.as_deref(),
            )
        }
        Some("submit") => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| format!("submit needs a PROTOCOL.json path\n{usage}"))?;
            let mut tenant = "cli".to_owned();
            let mut workers = 1usize;
            let mut side = 32u32;
            let mut seed: Option<u64> = None;
            let mut out: Option<String> = None;
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    rest.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--tenant" => tenant = value("--tenant")?.clone(),
                    "--workers" => workers = parse_flag(value("--workers")?, "--workers")?,
                    "--side" => side = parse_flag(value("--side")?, "--side")?,
                    "--seed" => seed = Some(parse_flag(value("--seed")?, "--seed")?),
                    "--out" => out = Some(value("--out")?.clone()),
                    other => return Err(format!("unknown farm submit flag `{other}`\n{usage}")),
                }
            }
            let text = std::fs::read_to_string(path)
                .map_err(|err| format!("cannot read protocol `{path}`: {err}"))?;
            let protocol: labchip::workload::Protocol = serde_json::from_str(&text)
                .map_err(|err| format!("`{path}` is not a protocol JSON: {err}"))?;
            let farm = Farm::new(FarmConfig {
                workers,
                workload: labchip::workload::WorkloadConfig {
                    array_side: side,
                    ..labchip::workload::WorkloadConfig::default()
                },
                ..FarmConfig::default()
            });
            let mut spec = JobSpec::tenant(tenant);
            if let Some(seed) = seed {
                spec = spec.with_seed(seed);
            }
            let id = farm
                .submit(protocol, spec)
                .map_err(|err| format!("submit failed: {err}"))?;
            farm.wait_idle();
            let record = farm.record(id).expect("submitted job has a record");
            println!("{}", serde_json::to_string_pretty(&record));
            if let Some(dir) = out {
                save_farm_history(&farm, &HistoryStore::new(dir.as_str()))?;
            }
            farm.shutdown();
            Ok(())
        }
        Some("status") => {
            let (dir, positional) = take_dir_flag(&args[1..])?;
            let dir = dir.ok_or_else(|| format!("status needs --dir DIR\n{usage}"))?;
            let [job] = positional.as_slice() else {
                return Err(format!("status needs exactly one JOB id\n{usage}"));
            };
            let id = JobId::parse(job)
                .ok_or_else(|| format!("`{job}` is not a job id (expected `7` or `job-7`)"))?;
            let record = HistoryStore::new(dir.as_str())
                .load_record(id)
                .map_err(|err| format!("cannot load {id} from `{dir}`: {err}"))?;
            println!("{}", serde_json::to_string_pretty(&record));
            Ok(())
        }
        Some("history") => {
            let mut dir: Option<String> = None;
            let mut filter = HistoryFilter::all();
            let mut depth = 0usize;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    rest.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--dir" => dir = Some(value("--dir")?.clone()),
                    "--tenant" => filter.tenant = Some(value("--tenant")?.clone()),
                    "--depth" => depth = parse_flag(value("--depth")?, "--depth")?,
                    "--terminal" => filter.terminal_only = true,
                    other => return Err(format!("unknown farm history flag `{other}`\n{usage}")),
                }
            }
            let dir = dir.ok_or_else(|| format!("history needs --dir DIR\n{usage}"))?;
            let store = HistoryStore::new(dir.as_str());
            let ids = store
                .list()
                .map_err(|err| format!("cannot list `{dir}`: {err}"))?;
            let mut records = Vec::new();
            for id in ids.into_iter().rev() {
                let record = store
                    .load_record(id)
                    .map_err(|err| format!("cannot load {id} from `{dir}`: {err}"))?;
                if filter.matches(&record) {
                    records.push(record);
                }
                if depth > 0 && records.len() == depth {
                    break;
                }
            }
            println!("{}", serde_json::to_string_pretty(&records));
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

fn parse_flag<T: std::str::FromStr>(text: &str, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    text.parse()
        .map_err(|err| format!("{name}: invalid value `{text}`: {err}"))
}

fn take_dir_flag(args: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut dir = None;
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--dir" {
            dir = Some(
                iter.next()
                    .ok_or_else(|| "--dir needs a value".to_owned())?
                    .clone(),
            );
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((dir, positional))
}

fn save_farm_history(
    farm: &labchip_farm::Farm,
    store: &labchip_farm::HistoryStore,
) -> Result<(), String> {
    let records = farm.history(&labchip_farm::HistoryFilter::all(), 0);
    for record in &records {
        let journal = farm
            .accumulated_journal(record.id)
            .expect("recorded jobs have journals");
        store.save(record, &journal).map_err(|err| {
            format!(
                "cannot save {} to `{}`: {err}",
                record.id,
                store.dir().display()
            )
        })?;
    }
    println!(
        "saved {} job records to {}",
        records.len(),
        store.dir().display()
    );
    Ok(())
}

/// `report farm demo` — a multi-tenant workload with an injected mid-run
/// kill, printed as a job table.
#[allow(clippy::too_many_arguments)]
fn run_farm_demo(
    workers: usize,
    tenants: usize,
    jobs_per_tenant: usize,
    kill: usize,
    side: u32,
    particles: usize,
    seed: u64,
    out: Option<&str>,
) -> Result<(), String> {
    use labchip::workload::{BatchDriver, WorkloadConfig};
    use labchip_farm::{
        scenario::protocol_mix, Farm, FarmConfig, HistoryFilter, HistoryStore, JobSpec,
    };
    use labchip_manipulation::journal::FaultPlan;
    use labchip_units::GridDims;

    let workload = WorkloadConfig {
        array_side: side,
        seed,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(side);
    let sep = workload.min_separation.max(1);
    let mix = protocol_mix(dims, sep, particles);
    let farm = Farm::new(FarmConfig {
        workers,
        workload,
        start_paused: true,
        ..FarmConfig::default()
    });
    let total = tenants * jobs_per_tenant;
    println!(
        "farm demo: {workers} workers, {tenants} tenants x {jobs_per_tenant} jobs, \
         {} protocols, {kill} injected kill(s)\n",
        mix.len()
    );
    for index in 0..total {
        let protocol = mix[index % mix.len()].clone();
        let job_seed = seed + index as u64;
        let mut spec =
            JobSpec::tenant(format!("tenant-{}", index / jobs_per_tenant)).with_seed(job_seed);
        if index < kill {
            // Arm the kill at half the job's uninterrupted journal so the
            // demo always exercises the checkpoint-resume path.
            let mut config = workload;
            config.seed = job_seed;
            let (_, journal) = BatchDriver::new(config)
                .runner()
                .run_journaled(&protocol, 0);
            spec = spec.with_fault(FaultPlan::after((journal.len() as u64 / 2).max(1)));
        }
        farm.submit(protocol, spec)
            .map_err(|err| format!("submit failed: {err}"))?;
    }
    let started = std::time::Instant::now();
    farm.start();
    farm.wait_idle();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    println!("| job | tenant | protocol | status | phases | resumes | latency ms | state hash |");
    println!("|---|---|---|---|---|---|---|---|");
    let records = farm.history(&HistoryFilter::all(), 0);
    for record in records.iter().rev() {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.1} | {} |",
            record.id,
            record.tenant,
            record.protocol.name,
            record.status.label(),
            record.phases_completed,
            record.resumes,
            record.latency_ms(),
            record.state_hash.as_deref().unwrap_or("-")
        );
    }
    let done = records
        .iter()
        .filter(|r| matches!(r.status, labchip_farm::JobStatus::Done))
        .count();
    println!(
        "\n{done}/{total} jobs done in {wall_ms:.0} ms ({:.1} jobs/s)",
        done as f64 / (wall_ms / 1e3)
    );
    if let Some(dir) = out {
        save_farm_history(&farm, &HistoryStore::new(dir))?;
    }
    farm.shutdown();
    Ok(())
}
