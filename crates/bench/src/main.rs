//! `report` — drives the scenario engine of the DATE'05 reproduction, and
//! emits the machine-readable field-kernel benchmark file.
//!
//! Usage:
//!
//! ```text
//! report list                          # enumerate the registered scenarios
//! report run --all                     # every experiment, markdown tables
//! report run e2 e5                     # a subset
//! report run --all --json              # one JSON document covering E1..E14
//! report run e3 --set threads=2        # key=value overrides onto the typed config
//! report run --all --seed 7 --serial   # derived per-scenario seeds, serial order
//! report bench-fields [OUT.json]       # field-kernel benchmark trajectory
//! report bench-workload [OUT.json]     # workload/driver benchmark trajectory
//! report journal-diff A.json B.json    # first divergence between two journals
//! report journal-diff --demo [--seed N] [--noise X] [--side N] [--particles N] [--save PREFIX]
//! report [e2 e5 ...]                   # legacy spelling of `run`
//! ```
//!
//! The markdown output is what `EXPERIMENTS.md` quotes; `--json` emits the
//! same tables (plus full typed outputs, configs, seeds and wall-clock
//! times) as one JSON document from the same source. While scenarios run,
//! row-level progress streams to stderr so long runs never go dark. The
//! `bench-fields` subcommand times the field-evaluation kernels and the
//! particle-stepping loop and writes `BENCH_fields.json` (one object per
//! kernel with ns/op, plus simulator step throughput per thread count) so
//! successive PRs accumulate a perf trajectory.

use labchip::scenario::{
    outcomes_to_json, Progress, ProgressEvent, RunOutcome, Runner, ScenarioRegistry,
};
use labchip_bench::{cage_field, populated_simulator};
use labchip_physics::field::cache::FieldCache;
use labchip_physics::field::FieldModel;
use labchip_units::Vec3;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-fields") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_fields.json".into());
            bench_fields(&out);
        }
        Some("bench-workload") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_workload.json".into());
            bench_workload(&out);
        }
        Some("journal-diff") => {
            if let Err(message) = journal_diff(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        Some("list") => list_scenarios(),
        Some("run") => {
            if let Err(message) = run_scenarios(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        // Legacy spelling: bare ids (or nothing for everything), markdown.
        // Long-standing contract: unknown ids warn and are skipped (exit 0),
        // unlike the `run` subcommand's hard errors.
        _ => {
            let registry = ScenarioRegistry::all();
            let mut legacy: Vec<String> = Vec::with_capacity(args.len());
            for id in &args {
                if registry.get(id).is_some() {
                    legacy.push(id.clone());
                } else {
                    eprintln!("unknown experiment id `{id}` (expected E1..E14)");
                }
            }
            if args.is_empty() {
                legacy.push("--all".into());
            } else if legacy.is_empty() {
                // All ids were unknown: keep the legacy empty report.
                print_markdown_report(&[]);
                return;
            }
            legacy.push("--quiet".into());
            if let Err(message) = run_scenarios(&legacy) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }
}

/// `report list` — one line per registered scenario.
fn list_scenarios() {
    let registry = ScenarioRegistry::all();
    for scenario in registry.iter() {
        println!("{}  {}", scenario.id(), scenario.describe());
    }
    println!("{} scenarios", registry.len());
}

/// Streams scenario progress to stderr, one line per event.
struct StderrProgress;

impl Progress for StderrProgress {
    fn on_event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::ScenarioStarted { scenario } => {
                eprintln!("[{scenario}] started");
            }
            ProgressEvent::Row {
                scenario,
                index,
                summary,
            } => {
                eprintln!("[{scenario}] row {index}: {summary}");
            }
            ProgressEvent::SimSteps {
                scenario,
                steps,
                elapsed_s,
                particles,
            } => {
                eprintln!(
                    "[{scenario}] sim t={elapsed_s:.2} s (+{steps} steps, {particles} particles)"
                );
            }
            ProgressEvent::ScenarioFinished {
                scenario,
                rows,
                wall_ms,
            } => {
                eprintln!("[{scenario}] done: {rows} rows in {wall_ms:.1} ms");
            }
        }
    }
}

/// `report run ...` — executes a scenario subset through the engine.
fn run_scenarios(args: &[String]) -> Result<(), String> {
    let mut ids: Vec<String> = Vec::new();
    let mut all = false;
    let mut json = false;
    let mut quiet = false;
    let mut runner = Runner::new(ScenarioRegistry::all());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--serial" => {
                runner.set_parallel(false);
            }
            "--quiet" => quiet = true,
            "--set" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--set needs a key=value argument".to_owned())?;
                runner.set_override(spec).map_err(|e| e.to_string())?;
            }
            "--seed" => {
                let seed = iter
                    .next()
                    .ok_or_else(|| "--seed needs an integer argument".to_owned())?;
                runner.set_base_seed(seed.parse().map_err(|_| format!("invalid seed `{seed}`"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            id => ids.push(id.to_owned()),
        }
    }
    if !quiet {
        runner.set_progress(Arc::new(StderrProgress));
    }

    let outcomes = if all {
        if !ids.is_empty() {
            return Err("pass either explicit ids or --all, not both".to_owned());
        }
        runner.run_all().map_err(|e| e.to_string())?
    } else if ids.is_empty() {
        return Err("no scenarios selected (pass ids like `e3`, or --all)".to_owned());
    } else {
        runner.run(&ids).map_err(|e| e.to_string())?
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcomes_to_json(&outcomes))
        );
    } else {
        print_markdown_report(&outcomes);
    }
    Ok(())
}

fn print_markdown_report(outcomes: &[RunOutcome]) {
    println!("# labchip experiment report");
    println!();
    println!(
        "Reproduction of \"New Perspectives and Opportunities From the Wild West of \
         Microelectronic Biochips\" (Manaresi et al., DATE 2005)."
    );
    println!();
    for outcome in outcomes {
        println!("{}", outcome.table);
    }
}

/// Median ns/op of `f`, adaptively batched.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate a batch size costing ≳1 ms.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed().as_micros() >= 1_000 {
            break;
        }
        batch *= 2;
    }
    let mut samples = Vec::with_capacity(32);
    for _ in 0..32 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_fields(out_path: &str) {
    // Fail fast on an unwritable destination — the measurements below take
    // a minute and would otherwise be thrown away at the final write.
    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }
    let mut entries: Vec<(String, f64)> = Vec::new();

    for side in [16u32, 320] {
        let field = cage_field(side);
        let probe = Vec3::new(
            field.plane().width() / 2.0,
            field.plane().height() / 2.0,
            30e-6,
        );
        entries.push((
            format!("kernel_field_evaluation/potential/{side}"),
            time_ns(|| {
                black_box(field.potential(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/e_squared/{side}"),
            time_ns(|| {
                black_box(field.e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared_fd/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared_fd(black_box(probe)));
            }),
        ));
    }

    {
        let field = cage_field(16);
        let cache = FieldCache::build(&field);
        let probe = Vec3::new(163.1e-6, 157.7e-6, 31e-6);
        entries.push((
            "kernel_field_evaluation/field_cache_grad_lookup".into(),
            time_ns(|| {
                black_box(cache.grad_e_squared(black_box(probe)));
            }),
        ));
    }

    // Simulator step throughput: particle-steps per second, 1000 particles.
    // The `threads/1` vs `threads/all_cores` comparison is meaningless
    // without knowing how many cores "all" resolved to on the machine that
    // ran it (a 1-core runner legitimately reports a 1.0x speedup), so the
    // machine's parallelism is recorded alongside every row and in the
    // document's `meta` block.
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut throughput: Vec<(String, f64, usize)> = Vec::new();
    for threads in [1usize, 0] {
        let mut sim = populated_simulator(threads, 1000);
        let ns_per_step = time_ns(|| sim.run(1));
        let resolved = if threads == 0 {
            available_parallelism
        } else {
            threads
        };
        let label = if threads == 0 {
            format!("all_cores({resolved})")
        } else {
            threads.to_string()
        };
        throughput.push((
            format!("simulator_step_1000_particles/threads/{label}"),
            ns_per_step,
            resolved,
        ));
        throughput.push((
            format!("particle_steps_per_second/threads/{label}"),
            1000.0 / (ns_per_step * 1e-9),
            resolved,
        ));
    }

    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}}},\n  \"benchmarks\": [\n"
    );
    for (i, (id, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() || !throughput.is_empty() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}}{sep}\n"
        ));
    }
    for (i, (id, value, threads)) in throughput.iter().enumerate() {
        let sep = if i + 1 < throughput.len() { "," } else { "" };
        let key = if id.starts_with("particle_steps") {
            "value"
        } else {
            "ns_per_op"
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"{key}\": {value:.1}, \"threads\": {threads}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    let speedup = {
        let find = |needle: &str| {
            entries
                .iter()
                .find(|(id, _)| id == needle)
                .map(|(_, ns)| *ns)
        };
        match (
            find("kernel_field_evaluation/grad_e_squared_fd/320"),
            find("kernel_field_evaluation/grad_e_squared/320"),
        ) {
            (Some(fd), Some(analytic)) if analytic > 0.0 => fd / analytic,
            _ => f64::NAN,
        }
    };
    println!(
        "wrote {out_path} ({} entries)",
        entries.len() + throughput.len()
    );
    println!("analytic grad_e_squared speedup over finite differences (side 320): {speedup:.1}x");
}

/// `report bench-workload OUT.json` — the workload-pipeline perf
/// trajectory: incremental-router planning, full driver cycles with and
/// without the event journal attached, and journal replay.
///
/// All cycle variants run the *identical* deterministic cycle sequence
/// (same seeds, same routing problems), so their wall-clock totals are
/// directly comparable; the minimum over repetitions filters scheduler
/// noise out of the overhead figures. CI bounds the journal write overhead
/// (< 2% of a live cycle) and requires replay to be faster than live
/// execution — the property that makes the journal a usable crash-recovery
/// and debugging artifact.
fn bench_workload(out_path: &str) {
    use labchip::workload::{BatchDriver, ForceEnvelope, Protocol, WorkloadConfig};
    use labchip_manipulation::journal::{replay, Journal};
    use labchip_units::GridDims;

    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }

    let envelope = ForceEnvelope::date05_reference();
    let mut entries: Vec<(String, f64)> = Vec::new();

    // Incremental-router planning alone (no execution, no sensing).
    for (side, particles) in [(128u32, 500usize), (256, 1000)] {
        let driver = BatchDriver::with_envelope(
            WorkloadConfig {
                array_side: side,
                ..WorkloadConfig::default()
            },
            envelope,
        );
        let mut samples = Vec::with_capacity(8);
        for _ in 0..8 {
            let t0 = Instant::now();
            black_box(driver.plan_only(particles, 2005));
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        entries.push((
            format!("workload/incremental_plan/{side}x{particles}"),
            samples[samples.len() / 2],
        ));
    }

    // Full driver cycles: live (no journal) vs journaled, the same
    // deterministic cycle sequence each way, then replay of the recorded
    // journals back into chip states.
    const CYCLES: usize = 4;
    const REPS: usize = 3;
    let cycle_config = WorkloadConfig {
        array_side: 96,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(cycle_config.array_side);
    let sep = cycle_config.min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, 200);
    let time_cycles = |journaled: bool| -> (f64, Vec<Journal>) {
        // Minimum total over repetitions: identical work each repetition,
        // so min is the cleanest noise filter.
        let mut best = f64::INFINITY;
        let mut journals = Vec::new();
        for _ in 0..REPS {
            let driver = BatchDriver::with_envelope(cycle_config, envelope);
            let mut run_journals = Vec::with_capacity(CYCLES);
            let t0 = Instant::now();
            for cycle in 0..CYCLES {
                if journaled {
                    let (outcome, journal) = driver.runner().run_journaled(&protocol, cycle);
                    black_box(outcome);
                    run_journals.push(journal);
                } else {
                    black_box(driver.runner().run(&protocol, cycle));
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed < best {
                best = elapsed;
                journals = run_journals;
            }
        }
        (best, journals)
    };
    // Warm both paths once (field caches, allocator) before measuring.
    time_cycles(false);
    let (live_total, _) = time_cycles(false);
    let (journaled_total, journals) = time_cycles(true);
    let replay_total = {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for journal in &journals {
                black_box(replay(journal, dims, sep).expect("recorded journals replay cleanly"));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let per_cycle = |total: f64| total / CYCLES as f64 * 1e9;
    entries.push((
        "workload/driver_cycle_live/96x200".into(),
        per_cycle(live_total),
    ));
    entries.push((
        "workload/driver_cycle_journaled/96x200".into(),
        per_cycle(journaled_total),
    ));
    entries.push((
        "workload/cycle_replay/96x200".into(),
        per_cycle(replay_total),
    ));
    let journal_overhead_pct = if live_total > 0.0 {
        100.0 * (journaled_total / live_total - 1.0)
    } else {
        f64::NAN
    };
    let replay_vs_live_pct = if live_total > 0.0 {
        100.0 * (replay_total / live_total - 1.0)
    } else {
        f64::NAN
    };

    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}, \"cycles\": {CYCLES}, \"reps\": {REPS}}},\n  \"benchmarks\": [\n"
    );
    for (id, ns) in &entries {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}},\n"
        ));
    }
    json.push_str(&format!(
        "    {{\"id\": \"workload/journal_overhead_pct\", \"value\": {journal_overhead_pct:.3}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"id\": \"workload/replay_vs_live_pct\", \"value\": {replay_vs_live_pct:.3}}}\n"
    ));
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    println!("wrote {out_path} ({} entries)", entries.len() + 2);
    println!(
        "journal write overhead vs live cycle: {journal_overhead_pct:+.3}% \
         ({:.1} ms journaled vs {:.1} ms live per cycle)",
        per_cycle(journaled_total) / 1e6,
        per_cycle(live_total) / 1e6
    );
    println!(
        "journal replay vs live execution: {replay_vs_live_pct:+.3}% \
         ({:.3} ms replay per cycle)",
        per_cycle(replay_total) / 1e6
    );
}

/// `report journal-diff` — where do two chip-state journals first diverge?
///
/// File mode (`report journal-diff A.json B.json`) compares two saved
/// journals event by event and prints the common-prefix length and the
/// first divergent pair. Demo mode (`--demo`) runs the canned cycle twice
/// at the *same* seed — open-loop (recovery disabled) versus closed-loop
/// (the DATE'05 reference policy) — and diffs the two journals: the
/// divergence point is exactly where the recovery loop first acted on a
/// detection mismatch, the E12 debugging question the journal was built to
/// answer. `--save PREFIX` writes both demo journals for later file-mode
/// diffs.
fn journal_diff(args: &[String]) -> Result<(), String> {
    use labchip::workload::{BatchDriver, Protocol, RecoveryPolicy, WorkloadConfig};
    use labchip_manipulation::journal::{diff, Journal};
    use labchip_units::GridDims;

    if args.first().map(String::as_str) != Some("--demo") {
        let [path_a, path_b] = args else {
            return Err(
                "usage: report journal-diff A.json B.json  |  report journal-diff --demo \
                 [--seed N] [--noise X] [--side N] [--particles N] [--save PREFIX]"
                    .into(),
            );
        };
        let load = |path: &String| -> Result<Journal, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|err| format!("cannot read journal `{path}`: {err}"))?;
            serde_json::from_str(&text)
                .map_err(|err| format!("`{path}` is not a journal JSON: {err}"))
        };
        let a = load(path_a)?;
        let b = load(path_b)?;
        println!("{}", diff(&a, &b));
        return Ok(());
    }

    // Demo mode: open- vs closed-loop at the same seed.
    let mut seed = 2005u64;
    let mut noise = 8.0f64;
    let mut side = 48u32;
    let mut particles = 60usize;
    let mut save: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            rest.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--noise" => {
                noise = value("--noise")?
                    .parse()
                    .map_err(|e| format!("--noise: {e}"))?;
            }
            "--side" => {
                side = value("--side")?
                    .parse()
                    .map_err(|e| format!("--side: {e}"))?
            }
            "--particles" => {
                particles = value("--particles")?
                    .parse()
                    .map_err(|e| format!("--particles: {e}"))?;
            }
            "--save" => save = Some(value("--save")?.clone()),
            other => return Err(format!("unknown journal-diff flag `{other}`")),
        }
    }

    let base = WorkloadConfig {
        array_side: side,
        seed,
        noise_scale: noise,
        detection_frames: 2,
        recovery: RecoveryPolicy::disabled(),
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(side);
    let sep = base.min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, particles);
    let run = |config: WorkloadConfig| {
        let driver = BatchDriver::new(config);
        driver.runner().run_journaled(&protocol, 0).1
    };
    let open = run(base);
    let closed = run(WorkloadConfig {
        recovery: RecoveryPolicy::date05_reference(),
        ..base
    });
    println!(
        "canned cycle, seed {seed}, noise {noise}, {side}x{side}, {particles} particles:\n\
         open-loop (recovery off) vs closed-loop (DATE'05 reference policy)\n"
    );
    println!("{}", diff(&open, &closed));
    if let Some(prefix) = save {
        for (suffix, journal) in [("open", &open), ("closed", &closed)] {
            let path = format!("{prefix}-{suffix}.json");
            std::fs::write(&path, serde_json::to_string(journal))
                .map_err(|err| format!("cannot write `{path}`: {err}"))?;
            println!("wrote {path} ({} events)", journal.len());
        }
    }
    Ok(())
}
