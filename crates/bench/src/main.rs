//! `report` — drives the scenario engine of the DATE'05 reproduction, and
//! emits the machine-readable field-kernel benchmark file.
//!
//! Usage:
//!
//! ```text
//! report list                          # enumerate the registered scenarios
//! report run --all                     # every experiment, markdown tables
//! report run e2 e5                     # a subset
//! report run --all --json              # one JSON document covering E1..E13
//! report run e3 --set threads=2        # key=value overrides onto the typed config
//! report run --all --seed 7 --serial   # derived per-scenario seeds, serial order
//! report bench-fields [OUT.json]       # field-kernel benchmark trajectory
//! report bench-workload [OUT.json]     # workload/driver benchmark trajectory
//! report [e2 e5 ...]                   # legacy spelling of `run`
//! ```
//!
//! The markdown output is what `EXPERIMENTS.md` quotes; `--json` emits the
//! same tables (plus full typed outputs, configs, seeds and wall-clock
//! times) as one JSON document from the same source. While scenarios run,
//! row-level progress streams to stderr so long runs never go dark. The
//! `bench-fields` subcommand times the field-evaluation kernels and the
//! particle-stepping loop and writes `BENCH_fields.json` (one object per
//! kernel with ns/op, plus simulator step throughput per thread count) so
//! successive PRs accumulate a perf trajectory.

use labchip::scenario::{
    outcomes_to_json, Progress, ProgressEvent, RunOutcome, Runner, ScenarioRegistry,
};
use labchip_bench::{cage_field, populated_simulator};
use labchip_physics::field::cache::FieldCache;
use labchip_physics::field::FieldModel;
use labchip_units::Vec3;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-fields") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_fields.json".into());
            bench_fields(&out);
        }
        Some("bench-workload") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_workload.json".into());
            bench_workload(&out);
        }
        Some("list") => list_scenarios(),
        Some("run") => {
            if let Err(message) = run_scenarios(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
        // Legacy spelling: bare ids (or nothing for everything), markdown.
        // Long-standing contract: unknown ids warn and are skipped (exit 0),
        // unlike the `run` subcommand's hard errors.
        _ => {
            let registry = ScenarioRegistry::all();
            let mut legacy: Vec<String> = Vec::with_capacity(args.len());
            for id in &args {
                if registry.get(id).is_some() {
                    legacy.push(id.clone());
                } else {
                    eprintln!("unknown experiment id `{id}` (expected E1..E13)");
                }
            }
            if args.is_empty() {
                legacy.push("--all".into());
            } else if legacy.is_empty() {
                // All ids were unknown: keep the legacy empty report.
                print_markdown_report(&[]);
                return;
            }
            legacy.push("--quiet".into());
            if let Err(message) = run_scenarios(&legacy) {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }
}

/// `report list` — one line per registered scenario.
fn list_scenarios() {
    let registry = ScenarioRegistry::all();
    for scenario in registry.iter() {
        println!("{}  {}", scenario.id(), scenario.describe());
    }
    println!("{} scenarios", registry.len());
}

/// Streams scenario progress to stderr, one line per event.
struct StderrProgress;

impl Progress for StderrProgress {
    fn on_event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::ScenarioStarted { scenario } => {
                eprintln!("[{scenario}] started");
            }
            ProgressEvent::Row {
                scenario,
                index,
                summary,
            } => {
                eprintln!("[{scenario}] row {index}: {summary}");
            }
            ProgressEvent::SimSteps {
                scenario,
                steps,
                elapsed_s,
                particles,
            } => {
                eprintln!(
                    "[{scenario}] sim t={elapsed_s:.2} s (+{steps} steps, {particles} particles)"
                );
            }
            ProgressEvent::ScenarioFinished {
                scenario,
                rows,
                wall_ms,
            } => {
                eprintln!("[{scenario}] done: {rows} rows in {wall_ms:.1} ms");
            }
        }
    }
}

/// `report run ...` — executes a scenario subset through the engine.
fn run_scenarios(args: &[String]) -> Result<(), String> {
    let mut ids: Vec<String> = Vec::new();
    let mut all = false;
    let mut json = false;
    let mut quiet = false;
    let mut runner = Runner::new(ScenarioRegistry::all());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--serial" => {
                runner.set_parallel(false);
            }
            "--quiet" => quiet = true,
            "--set" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--set needs a key=value argument".to_owned())?;
                runner.set_override(spec).map_err(|e| e.to_string())?;
            }
            "--seed" => {
                let seed = iter
                    .next()
                    .ok_or_else(|| "--seed needs an integer argument".to_owned())?;
                runner.set_base_seed(seed.parse().map_err(|_| format!("invalid seed `{seed}`"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            id => ids.push(id.to_owned()),
        }
    }
    if !quiet {
        runner.set_progress(Arc::new(StderrProgress));
    }

    let outcomes = if all {
        if !ids.is_empty() {
            return Err("pass either explicit ids or --all, not both".to_owned());
        }
        runner.run_all().map_err(|e| e.to_string())?
    } else if ids.is_empty() {
        return Err("no scenarios selected (pass ids like `e3`, or --all)".to_owned());
    } else {
        runner.run(&ids).map_err(|e| e.to_string())?
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcomes_to_json(&outcomes))
        );
    } else {
        print_markdown_report(&outcomes);
    }
    Ok(())
}

fn print_markdown_report(outcomes: &[RunOutcome]) {
    println!("# labchip experiment report");
    println!();
    println!(
        "Reproduction of \"New Perspectives and Opportunities From the Wild West of \
         Microelectronic Biochips\" (Manaresi et al., DATE 2005)."
    );
    println!();
    for outcome in outcomes {
        println!("{}", outcome.table);
    }
}

/// Median ns/op of `f`, adaptively batched.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate a batch size costing ≳1 ms.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed().as_micros() >= 1_000 {
            break;
        }
        batch *= 2;
    }
    let mut samples = Vec::with_capacity(32);
    for _ in 0..32 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_fields(out_path: &str) {
    // Fail fast on an unwritable destination — the measurements below take
    // a minute and would otherwise be thrown away at the final write.
    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }
    let mut entries: Vec<(String, f64)> = Vec::new();

    for side in [16u32, 320] {
        let field = cage_field(side);
        let probe = Vec3::new(
            field.plane().width() / 2.0,
            field.plane().height() / 2.0,
            30e-6,
        );
        entries.push((
            format!("kernel_field_evaluation/potential/{side}"),
            time_ns(|| {
                black_box(field.potential(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/e_squared/{side}"),
            time_ns(|| {
                black_box(field.e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared(black_box(probe)));
            }),
        ));
        entries.push((
            format!("kernel_field_evaluation/grad_e_squared_fd/{side}"),
            time_ns(|| {
                black_box(field.grad_e_squared_fd(black_box(probe)));
            }),
        ));
    }

    {
        let field = cage_field(16);
        let cache = FieldCache::build(&field);
        let probe = Vec3::new(163.1e-6, 157.7e-6, 31e-6);
        entries.push((
            "kernel_field_evaluation/field_cache_grad_lookup".into(),
            time_ns(|| {
                black_box(cache.grad_e_squared(black_box(probe)));
            }),
        ));
    }

    // Simulator step throughput: particle-steps per second, 1000 particles.
    // The `threads/1` vs `threads/all_cores` comparison is meaningless
    // without knowing how many cores "all" resolved to on the machine that
    // ran it (a 1-core runner legitimately reports a 1.0x speedup), so the
    // machine's parallelism is recorded alongside every row and in the
    // document's `meta` block.
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut throughput: Vec<(String, f64, usize)> = Vec::new();
    for threads in [1usize, 0] {
        let mut sim = populated_simulator(threads, 1000);
        let ns_per_step = time_ns(|| sim.run(1));
        let resolved = if threads == 0 {
            available_parallelism
        } else {
            threads
        };
        let label = if threads == 0 {
            format!("all_cores({resolved})")
        } else {
            threads.to_string()
        };
        throughput.push((
            format!("simulator_step_1000_particles/threads/{label}"),
            ns_per_step,
            resolved,
        ));
        throughput.push((
            format!("particle_steps_per_second/threads/{label}"),
            1000.0 / (ns_per_step * 1e-9),
            resolved,
        ));
    }

    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}}},\n  \"benchmarks\": [\n"
    );
    for (i, (id, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() || !throughput.is_empty() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}}{sep}\n"
        ));
    }
    for (i, (id, value, threads)) in throughput.iter().enumerate() {
        let sep = if i + 1 < throughput.len() { "," } else { "" };
        let key = if id.starts_with("particle_steps") {
            "value"
        } else {
            "ns_per_op"
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"{key}\": {value:.1}, \"threads\": {threads}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    let speedup = {
        let find = |needle: &str| {
            entries
                .iter()
                .find(|(id, _)| id == needle)
                .map(|(_, ns)| *ns)
        };
        match (
            find("kernel_field_evaluation/grad_e_squared_fd/320"),
            find("kernel_field_evaluation/grad_e_squared/320"),
        ) {
            (Some(fd), Some(analytic)) if analytic > 0.0 => fd / analytic,
            _ => f64::NAN,
        }
    };
    println!(
        "wrote {out_path} ({} entries)",
        entries.len() + throughput.len()
    );
    println!("analytic grad_e_squared speedup over finite differences (side 320): {speedup:.1}x");
}

/// `report bench-workload OUT.json` — the workload-pipeline perf
/// trajectory: incremental-router planning, full driver cycles, and the
/// protocol-runner overhead versus the retained legacy monolith.
///
/// Both cycle variants run the *identical* deterministic cycle sequence
/// (same seeds, same routing problems), so their wall-clock totals are
/// directly comparable; the minimum over repetitions filters scheduler
/// noise out of the overhead figure.
fn bench_workload(out_path: &str) {
    use labchip::workload::{BatchDriver, ForceEnvelope, WorkloadConfig};

    if let Err(err) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
    {
        eprintln!("cannot write benchmark output `{out_path}`: {err}");
        std::process::exit(1);
    }

    let envelope = ForceEnvelope::date05_reference();
    let mut entries: Vec<(String, f64)> = Vec::new();

    // Incremental-router planning alone (no execution, no sensing).
    for (side, particles) in [(128u32, 500usize), (256, 1000)] {
        let driver = BatchDriver::with_envelope(
            WorkloadConfig {
                array_side: side,
                ..WorkloadConfig::default()
            },
            envelope,
        );
        let mut samples = Vec::with_capacity(8);
        for _ in 0..8 {
            let t0 = Instant::now();
            black_box(driver.plan_only(particles, 2005));
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        entries.push((
            format!("workload/incremental_plan/{side}x{particles}"),
            samples[samples.len() / 2],
        ));
    }

    // Full driver cycles: the phase-pipeline `run_cycle` vs the retained
    // legacy monolith, each running the same deterministic cycle sequence.
    const CYCLES: usize = 4;
    const REPS: usize = 3;
    let cycle_config = WorkloadConfig {
        array_side: 96,
        ..WorkloadConfig::default()
    };
    let time_cycles = |legacy: bool| -> f64 {
        // Minimum total over repetitions: identical work each repetition,
        // so min is the cleanest noise filter.
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let mut driver = BatchDriver::with_envelope(cycle_config, envelope);
            let t0 = Instant::now();
            for _ in 0..CYCLES {
                if legacy {
                    black_box(driver.run_cycle_legacy(200));
                } else {
                    black_box(driver.run_cycle(200));
                }
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    // Warm both paths once (field caches, allocator) before measuring.
    time_cycles(false);
    let protocol_total = time_cycles(false);
    let legacy_total = time_cycles(true);
    let per_cycle = |total: f64| total / CYCLES as f64 * 1e9;
    entries.push((
        "workload/driver_cycle_protocol/96x200".into(),
        per_cycle(protocol_total),
    ));
    entries.push((
        "workload/driver_cycle_legacy/96x200".into(),
        per_cycle(legacy_total),
    ));
    let overhead_pct = if legacy_total > 0.0 {
        100.0 * (protocol_total / legacy_total - 1.0)
    } else {
        f64::NAN
    };

    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"meta\": {{\"available_parallelism\": {available_parallelism}, \"cycles\": {CYCLES}, \"reps\": {REPS}}},\n  \"benchmarks\": [\n"
    );
    for (id, ns) in &entries {
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.2}}},\n"
        ));
    }
    json.push_str(&format!(
        "    {{\"id\": \"workload/protocol_runner_overhead_pct\", \"value\": {overhead_pct:.3}}}\n"
    ));
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");

    println!("wrote {out_path} ({} entries)", entries.len() + 1);
    println!(
        "protocol-runner overhead vs legacy run_cycle: {overhead_pct:+.3}% \
         ({:.1} ms vs {:.1} ms per cycle)",
        per_cycle(protocol_total) / 1e6,
        per_cycle(legacy_total) / 1e6
    );
}
