//! Shared fixtures for the labchip benchmarks, used by both the criterion
//! benches (`benches/kernels.rs`) and the `report -- bench-fields` JSON
//! emitter so the two entry points measure the same workloads.

use labchip::prelude::{Biochip, ChipSimulator, SimulationConfig};
use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::field::{ElectrodePhase, ElectrodePlane};
use labchip_units::{GridCoord, GridDims, Meters, Seconds, Vec3, Volts};

/// Reference plane (20 µm pitch, 3.3 V, 80 µm chamber) with a single cage at
/// the array centre.
pub fn cage_plane(side: u32) -> ElectrodePlane {
    let mut plane = ElectrodePlane::new(
        GridDims::square(side),
        Meters::from_micrometers(20.0),
        Volts::new(3.3),
        Meters::from_micrometers(80.0),
    );
    plane.set_phase(
        GridCoord::new(side / 2, side / 2),
        ElectrodePhase::CounterPhase,
    );
    plane
}

/// [`cage_plane`] wrapped in the fast field model.
pub fn cage_field(side: u32) -> SuperpositionField {
    SuperpositionField::new(cage_plane(side))
}

/// The standard simulator benchmark workload: a 64×64 chip programmed with
/// the standard cage lattice and `particles` cells spread deterministically
/// (low-discrepancy additive recurrences) through the chamber.
pub fn populated_simulator(threads: usize, particles: u32) -> ChipSimulator {
    let mut chip = Biochip::small_reference(64);
    let pattern = labchip_array::pattern::CagePattern::standard_lattice(chip.array().dims())
        .expect("lattice fits");
    chip.program_pattern(&pattern).expect("pattern fits");
    let mut sim = ChipSimulator::new(
        chip,
        SimulationConfig {
            dt: Seconds::from_millis(0.5),
            brownian: true,
            seed: 9,
        },
    )
    .with_threads(threads);
    let cell = *sim.chip().reference_particle();
    let width = sim.chip().array().to_electrode_plane().width();
    for i in 0..particles {
        let fx = (i as f64 * 0.754_877_666) % 1.0;
        let fy = (i as f64 * 0.569_840_296) % 1.0;
        let z = 15e-6 + 50e-6 * ((i as f64 * 0.381_966_011) % 1.0);
        sim.add_particle(
            cell,
            Vec3::new((0.05 + 0.9 * fx) * width, (0.05 + 0.9 * fy) * width, z),
        )
        .expect("inside the chamber");
    }
    sim
}
