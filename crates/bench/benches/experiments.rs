//! Criterion benches: one group per scenario (E1–E12).
//!
//! Each bench runs the corresponding experiment with a reduced configuration
//! so that `cargo bench` completes in minutes; the `report` binary runs the
//! full default configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labchip::experiments::{
    e10_fullarray, e1_scale, e2_technology, e3_motion, e4_sensing, e5_designflow, e6_fabrication,
    e7_routing, e8_centering, e9_assay,
};
use labchip::scenario::{Scenario, ScenarioContext};
use labchip::workload::sort_problem;
use labchip_array::technology::TechnologyNode;
use labchip_manipulation::sharding::IncrementalRouter;
use labchip_units::GridDims;
use labchip_units::Seconds;
use std::hint::black_box;
use std::time::Duration;

/// Runs a scenario with a silent context — the trait-based spelling of the
/// retired `module::run(&config)` shims.
fn run_scenario<S: Scenario>(scenario: S, config: &S::Config) -> S::Output {
    scenario.run(config, &mut ScenarioContext::silent(scenario.id()))
}

fn configure<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_e1_scale(c: &mut Criterion) {
    let mut group = configure(c, "e1_array_scale");
    for side in [128u32, 320] {
        let config = e1_scale::Config {
            sides: vec![side],
            ..e1_scale::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(side), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e1_scale::ScaleScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e2_technology(c: &mut Criterion) {
    let mut group = configure(c, "e2_technology_voltage");
    for (label, node) in [
        ("cmos_350nm", TechnologyNode::cmos_350nm()),
        ("cmos_130nm", TechnologyNode::cmos_130nm()),
    ] {
        let config = e2_technology::Config {
            nodes: vec![node],
            ..e2_technology::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e2_technology::TechnologyScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e3_motion(c: &mut Criterion) {
    let mut group = configure(c, "e3_motion_timescales");
    for speed in [50.0f64, 200.0] {
        let config = e3_motion::Config {
            speeds_um_s: vec![speed],
            travel_steps: 3,
            dt: Seconds::from_millis(2.0),
            ..e3_motion::Config::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{speed}um_s")),
            &config,
            |b, cfg| {
                b.iter(|| black_box(run_scenario(e3_motion::MotionScenario, cfg)));
            },
        );
    }
    group.finish();
}

fn bench_e4_sensing(c: &mut Criterion) {
    let mut group = configure(c, "e4_sensor_averaging");
    for frames in [4u32, 64] {
        let config = e4_sensing::Config {
            frame_counts: vec![frames],
            trials: 500,
            ..e4_sensing::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(frames), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e4_sensing::SensingScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e5_designflow(c: &mut Criterion) {
    let mut group = configure(c, "e5_designflow_compare");
    for trials in [50u32, 200] {
        let config = e5_designflow::Config {
            trials,
            ..e5_designflow::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(trials), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e5_designflow::DesignFlowScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e6_fabrication(c: &mut Criterion) {
    let mut group = configure(c, "e6_fabrication_cost");
    let config = e6_fabrication::Config::default();
    group.bench_function("all_processes", |b| {
        b.iter(|| black_box(run_scenario(e6_fabrication::FabricationScenario, &config)));
    });
    group.finish();
}

fn bench_e7_routing(c: &mut Criterion) {
    let mut group = configure(c, "e7_parallel_routing");
    for particles in [20usize, 60] {
        let config = e7_routing::Config {
            array_side: 48,
            particle_counts: vec![particles],
            ..e7_routing::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(particles), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e7_routing::RoutingScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e8_centering(c: &mut Criterion) {
    let mut group = configure(c, "e8_design_centering");
    let config = e8_centering::Config::default();
    group.bench_function("yield_recovery", |b| {
        b.iter(|| black_box(run_scenario(e8_centering::CenteringScenario, &config)));
    });
    group.finish();
}

fn bench_e9_assay(c: &mut Criterion) {
    let mut group = configure(c, "e9_full_assay");
    for cells in [4u32, 9] {
        let config = e9_assay::Config {
            cells,
            ..e9_assay::Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(cells), &config, |b, cfg| {
            b.iter(|| black_box(run_scenario(e9_assay::AssayScenario, cfg)));
        });
    }
    group.finish();
}

fn bench_e10_fullarray(c: &mut Criterion) {
    let mut group = configure(c, "e10_full_array_sort");
    // The planners head-to-head at bench scale (the default E10 sweep is
    // minutes; this keeps `cargo bench` snappy while tracking the trend).
    let config = e10_fullarray::Config {
        array_side: 96,
        particles: 150,
        density_steps: vec![1.0],
        astar_cap: 0,
        threads: 0,
        ..e10_fullarray::Config::default()
    };
    group.bench_function("greedy_vs_incremental_150", |b| {
        b.iter(|| black_box(run_scenario(e10_fullarray::FullArrayScenario, &config)));
    });
    group.finish();
}

fn bench_workload_driver(c: &mut Criterion) {
    let mut group = configure(c, "workload_driver_cycle");
    // Full assay cycles live vs journaled, plus journal replay — the
    // criterion twin of `report bench-workload`, tracking that the journal
    // write overhead stays in the noise and replay stays far cheaper than
    // live execution.
    let envelope = labchip::workload::ForceEnvelope::date05_reference();
    let config = labchip::workload::WorkloadConfig {
        array_side: 96,
        ..labchip::workload::WorkloadConfig::default()
    };
    let dims = GridDims::square(config.array_side);
    let sep = config.min_separation.max(1);
    let protocol = labchip::workload::Protocol::canned_cycle(dims, sep, 200);
    group.bench_function("live_cycle_200", |b| {
        let driver = labchip::workload::BatchDriver::with_envelope(config, envelope);
        b.iter(|| black_box(driver.runner().run(&protocol, 0)));
    });
    group.bench_function("journaled_cycle_200", |b| {
        let driver = labchip::workload::BatchDriver::with_envelope(config, envelope);
        b.iter(|| black_box(driver.runner().run_journaled(&protocol, 0)));
    });
    group.bench_function("replay_cycle_200", |b| {
        let driver = labchip::workload::BatchDriver::with_envelope(config, envelope);
        let (_, journal) = driver.runner().run_journaled(&protocol, 0);
        b.iter(|| {
            black_box(
                labchip_manipulation::journal::replay(&journal, dims, sep)
                    .expect("recorded journals replay cleanly"),
            )
        });
    });
    group.finish();
}

fn bench_incremental_planner(c: &mut Criterion) {
    let mut group = configure(c, "incremental_sharded_planner");
    for particles in [250usize, 1000] {
        let problem = sort_problem(GridDims::square(256), particles, 2, 2005);
        let router = IncrementalRouter::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(particles),
            &problem,
            |b, problem| {
                b.iter(|| black_box(router.solve(problem).expect("well-formed")));
            },
        );
    }
    group.finish();
}

criterion_group!(
    experiments,
    bench_e1_scale,
    bench_e2_technology,
    bench_e3_motion,
    bench_e4_sensing,
    bench_e5_designflow,
    bench_e6_fabrication,
    bench_e7_routing,
    bench_e8_centering,
    bench_e9_assay,
    bench_e10_fullarray,
    bench_workload_driver,
    bench_incremental_planner
);
criterion_main!(experiments);
