//! Criterion benches of the computational kernels the experiments rest on:
//! field evaluation, Clausius–Mossotti spectra, the Laplace reference solver,
//! particle-dynamics stepping, channel-network solving and the cage router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labchip_bench::{cage_plane, populated_simulator};
use labchip_fluidics::channel::{ChannelNetwork, NodeId};
use labchip_fluidics::flow::RectangularChannel;
use labchip_manipulation::routing::{Router, RoutingStrategy};
use labchip_physics::dep::DepForceModel;
use labchip_physics::dynamics::{ForceBalance, OverdampedIntegrator, ParticleState};
use labchip_physics::field::cache::FieldCache;
use labchip_physics::field::laplace::LaplaceSolver;
use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::field::FieldModel;
use labchip_physics::medium::Medium;
use labchip_physics::particle::Particle;
use labchip_units::{
    GridCoord, GridRect, Hertz, Meters, PascalSeconds, Pascals, Seconds, Vec3, WATER_VISCOSITY,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_field_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_field_evaluation");
    group.measurement_time(Duration::from_secs(3));
    for side in [16u32, 320] {
        let field = SuperpositionField::new(cage_plane(side));
        let probe = Vec3::new(
            field.plane().width() / 2.0,
            field.plane().height() / 2.0,
            30e-6,
        );
        // Analytic single-pass Hessian kernel vs the 6-point finite-difference
        // chain it replaced — kept benchmarked side-by-side as the speedup
        // reference (the `_fd` path is 36 potential sweeps per query).
        group.bench_with_input(BenchmarkId::new("grad_e_squared", side), &field, |b, f| {
            b.iter(|| black_box(f.grad_e_squared(black_box(probe))));
        });
        group.bench_with_input(
            BenchmarkId::new("grad_e_squared_fd", side),
            &field,
            |b, f| {
                b.iter(|| black_box(f.grad_e_squared_fd(black_box(probe))));
            },
        );
        group.bench_with_input(BenchmarkId::new("e_squared", side), &field, |b, f| {
            b.iter(|| black_box(f.e_squared(black_box(probe))));
        });
    }
    // Trilinear cache lookups amortise the kernel sweep for whole-array runs.
    let field = SuperpositionField::new(cage_plane(16));
    let cache = FieldCache::build(&field);
    let probe = Vec3::new(
        field.plane().width() / 2.0 + 3.1e-6,
        field.plane().height() / 2.0 - 2.3e-6,
        31e-6,
    );
    group.bench_function("field_cache_grad_lookup", |b| {
        b.iter(|| black_box(cache.grad_e_squared(black_box(probe))));
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_step_1000_particles");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    // 1000 cells spread over a 64x64 array with a cage lattice; one bench
    // iteration advances every particle one step. Thread counts are pinned
    // per benchmark to expose the rayon scaling (results are bit-identical
    // across counts; only the wall clock changes).
    for threads in [1usize, 0] {
        let label = if threads == 0 {
            "all_cores".to_string()
        } else {
            threads.to_string()
        };
        let mut sim = populated_simulator(threads, 1000);
        group.bench_function(BenchmarkId::new("threads", label), |b| {
            b.iter(|| sim.run(1));
        });
    }
    group.finish();
}

fn bench_clausius_mossotti(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_clausius_mossotti");
    group.measurement_time(Duration::from_secs(2));
    let medium = Medium::physiological_low_conductivity();
    let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
    group.bench_function("viable_cell_spectrum_50_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50 {
                let f = Hertz::new(1e3 * 10f64.powf(i as f64 * 0.12));
                acc += cell.cm_re(&medium, f);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_laplace_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_laplace_solver");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let plane = cage_plane(7);
    let region = GridRect::new(GridCoord::new(0, 0), GridCoord::new(6, 6));
    group.bench_function("7x7_region", |b| {
        b.iter(|| black_box(LaplaceSolver::solve(&plane, region).expect("converges")));
    });
    group.finish();
}

fn bench_particle_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_particle_dynamics");
    group.measurement_time(Duration::from_secs(3));
    let field = SuperpositionField::new(cage_plane(16));
    let medium = Medium::physiological_low_conductivity();
    let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
    let balance = ForceBalance::new(&cell, &medium, Hertz::from_kilohertz(10.0));
    let integrator = OverdampedIntegrator::new(
        Seconds::from_millis(1.0),
        Meters::from_micrometers(10.0),
        Meters::from_micrometers(70.0),
    );
    let start = ParticleState::at(Vec3::new(170e-6, 170e-6, 30e-6));
    group.bench_function("100_steps", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            black_box(integrator.run(&field, &balance, start, 100, &mut rng))
        });
    });
    group.finish();
}

fn bench_dep_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dep_force");
    group.measurement_time(Duration::from_secs(2));
    let field = SuperpositionField::new(cage_plane(16));
    let medium = Medium::physiological_low_conductivity();
    let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
    let dep = DepForceModel::new(&cell, &medium, Hertz::from_kilohertz(10.0));
    let probe = Vec3::new(170e-6, 170e-6, 30e-6);
    group.bench_function("single_point", |b| {
        b.iter(|| black_box(dep.force(&field, black_box(probe))));
    });
    group.finish();
}

fn bench_channel_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_channel_network");
    group.measurement_time(Duration::from_secs(3));
    for nodes in [8u32, 32] {
        group.bench_with_input(BenchmarkId::new("ladder", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut net = ChannelNetwork::new();
                net.set_viscosity(PascalSeconds::new(WATER_VISCOSITY));
                let geom = RectangularChannel::new(
                    Meters::from_micrometers(200.0),
                    Meters::from_micrometers(50.0),
                    Meters::from_millimeters(2.0),
                )
                .expect("valid channel");
                // A ladder network: two rails with rungs.
                for i in 0..n {
                    net.add_segment(NodeId(i), NodeId(i + 1), geom);
                    net.add_segment(NodeId(100 + i), NodeId(100 + i + 1), geom);
                    net.add_segment(NodeId(i), NodeId(100 + i), geom);
                }
                net.set_pressure(NodeId(0), Pascals::new(1_000.0));
                net.set_pressure(NodeId(100 + n), Pascals::new(0.0));
                black_box(net.solve().expect("well posed"))
            });
        });
    }
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_router");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for particles in [16usize, 48] {
        let config = labchip::experiments::e7_routing::Config {
            array_side: 48,
            ..labchip::experiments::e7_routing::Config::default()
        };
        let problem = labchip::experiments::e7_routing::generate_problem(&config, particles);
        group.bench_with_input(
            BenchmarkId::new("astar", particles),
            &problem,
            |b, problem| {
                b.iter(|| {
                    black_box(
                        Router::new(RoutingStrategy::PrioritizedAStar)
                            .solve(problem)
                            .expect("valid problem"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", particles),
            &problem,
            |b, problem| {
                b.iter(|| {
                    black_box(
                        Router::new(RoutingStrategy::Greedy)
                            .solve(problem)
                            .expect("valid problem"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_field_evaluation,
    bench_simulator,
    bench_clausius_mossotti,
    bench_laplace_solver,
    bench_particle_dynamics,
    bench_dep_force,
    bench_channel_network,
    bench_router
);
criterion_main!(kernels);
