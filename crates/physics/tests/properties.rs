//! Property-based tests for the physics crate.

use labchip_physics::prelude::*;
use labchip_units::{GridCoord, GridDims, Hertz, Meters, SiemensPerMeter, Vec3, Volts};
use proptest::prelude::*;

fn cage_field(amplitude: f64, pitch_um: f64) -> (SuperpositionField, Vec3) {
    let mut plane = ElectrodePlane::new(
        GridDims::square(9),
        Meters::from_micrometers(pitch_um),
        Volts::new(amplitude),
        Meters::from_micrometers(4.0 * pitch_um),
    );
    plane.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
    let c = plane.electrode_center(GridCoord::new(4, 4));
    (SuperpositionField::new(plane), c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re[K] is bounded to (-0.5, 1.0] for any physical parameters.
    #[test]
    fn clausius_mossotti_factor_is_bounded(
        eps_p in 2.0f64..90.0,
        sig_p in 1e-7f64..2.0,
        sig_m in 1e-5f64..2.0,
        log_f in 3.0f64..9.0,
    ) {
        let particle = Particle::new(
            Meters::from_micrometers(8.0),
            labchip_units::KilogramsPerCubicMeter::new(1_050.0),
            ParticleKind::Homogeneous { relative_permittivity: eps_p, conductivity: sig_p },
        );
        let medium = Medium::physiological_low_conductivity()
            .with_conductivity(SiemensPerMeter::new(sig_m));
        let k = particle.cm_re(&medium, Hertz::new(10f64.powf(log_f)));
        prop_assert!(k > -0.5 - 1e-9 && k <= 1.0 + 1e-9, "K = {}", k);
    }

    /// The shelled-cell model must also stay within the physical CM bounds.
    #[test]
    fn shelled_cell_cm_factor_is_bounded(
        radius_um in 3.0f64..15.0,
        mem_cond in 1e-8f64..1e-2,
        cyt_cond in 0.05f64..1.0,
        log_f in 3.0f64..8.5,
    ) {
        let shell = ShellModel {
            membrane_conductivity: mem_cond,
            cytoplasm_conductivity: cyt_cond,
            ..ShellModel::viable_mammalian()
        };
        let particle = Particle::new(
            Meters::from_micrometers(radius_um),
            labchip_units::KilogramsPerCubicMeter::new(1_050.0),
            ParticleKind::ShelledCell(shell),
        );
        let medium = Medium::physiological_low_conductivity();
        let k = particle.cm_re(&medium, Hertz::new(10f64.powf(log_f)));
        prop_assert!(k > -0.5 - 1e-6 && k <= 1.0 + 1e-6, "K = {}", k);
    }

    /// The superposition potential never exceeds the applied boundary
    /// voltages (discrete maximum principle).
    #[test]
    fn potential_respects_maximum_principle(
        amplitude in 0.5f64..6.0,
        x_frac in 0.05f64..0.95,
        y_frac in 0.05f64..0.95,
        z_frac in 0.01f64..0.99,
    ) {
        let (field, _) = cage_field(amplitude, 20.0);
        let p = Vec3::new(
            x_frac * field.plane().width(),
            y_frac * field.plane().height(),
            z_frac * field.plane().chamber_height().get(),
        );
        let phi = field.potential(p);
        prop_assert!(phi.abs() <= amplitude + 1e-9, "phi = {}", phi);
    }

    /// |E|² scales exactly with V² in the linear field model — the paper's
    /// "DEP force depends on voltage squared" argument.
    #[test]
    fn e_squared_scales_quadratically_with_voltage(
        v1 in 0.5f64..3.0,
        scale in 1.1f64..4.0,
        x_off in -30.0f64..30.0,
        z_um in 10.0f64..70.0,
    ) {
        let v2 = v1 * scale;
        let (f1, c) = cage_field(v1, 20.0);
        let (f2, _) = cage_field(v2, 20.0);
        let p = Vec3::new(c.x + x_off * 1e-6, c.y, z_um * 1e-6);
        let e1 = f1.e_squared(p);
        let e2 = f2.e_squared(p);
        if e1 > 1e-3 {
            prop_assert!((e2 / e1 / (scale * scale) - 1.0).abs() < 1e-6);
        }
    }

    /// DEP force magnitude scales with the cube of the particle radius.
    #[test]
    fn dep_prefactor_scales_with_radius_cubed(r1_um in 2.0f64..8.0, scale in 1.2f64..3.0) {
        let medium = Medium::physiological_low_conductivity();
        let f = Hertz::from_kilohertz(10.0);
        let p1 = Particle::polystyrene_bead(Meters::from_micrometers(r1_um));
        let p2 = Particle::polystyrene_bead(Meters::from_micrometers(r1_um * scale));
        let d1 = DepForceModel::new(&p1, &medium, f).prefactor().abs();
        let d2 = DepForceModel::new(&p2, &medium, f).prefactor().abs();
        prop_assert!((d2 / d1 / scale.powi(3) - 1.0).abs() < 1e-6);
    }

    /// Stokes terminal velocity is linear in force and inversely proportional
    /// to radius.
    #[test]
    fn terminal_velocity_scaling(force_pn in 0.1f64..100.0, radius_um in 2.0f64..15.0) {
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(radius_um));
        let drag = StokesDrag::new(&cell, &medium);
        let f = labchip_units::Newtons::from_piconewtons(force_pn);
        let v = drag.terminal_velocity(f);
        prop_assert!(v.get() > 0.0);
        let v2 = drag.terminal_velocity(f * 2.0);
        prop_assert!((v2.get() / v.get() - 2.0).abs() < 1e-9);
    }

    /// Brownian RMS displacement grows with the square root of time.
    #[test]
    fn brownian_rms_sqrt_time(radius_um in 1.0f64..15.0, t in 0.01f64..10.0, scale in 1.5f64..9.0) {
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(radius_um));
        let b = BrownianMotion::new(&cell, &medium);
        let d1 = b.rms_displacement(labchip_units::Seconds::new(t));
        let d2 = b.rms_displacement(labchip_units::Seconds::new(t * scale));
        prop_assert!((d2 / d1 / scale.sqrt() - 1.0).abs() < 1e-9);
    }
}
