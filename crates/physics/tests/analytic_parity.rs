//! Parity between the analytic derivative engine of `SuperpositionField` and
//! the finite-difference reference path.
//!
//! Central differences carry O(h²) truncation error (~1e-3 relative at the
//! default pitch/20 step), so the strict comparison uses Richardson
//! extrapolation — two central differences at `h` and `h/2` combined as
//! `(4·D(h/2) − D(h))/3` — which cancels the h² term and converges O(h⁴) to
//! the true model derivative. Against that reference the analytic kernels
//! must agree to 1e-6 relative, across cage, edge-of-array and uniform-plane
//! probes.

use labchip_physics::field::superposition::SuperpositionField;
use labchip_physics::field::{ElectrodePhase, ElectrodePlane, FieldModel};
use labchip_units::{GridCoord, GridDims, Meters, Vec3, Volts};

const REL_TOL: f64 = 1e-6;

fn cage_plane(n: u32) -> ElectrodePlane {
    let mut plane = ElectrodePlane::new(
        GridDims::square(n),
        Meters::from_micrometers(20.0),
        Volts::new(3.3),
        Meters::from_micrometers(80.0),
    );
    plane.set_phase(GridCoord::new(n / 2, n / 2), ElectrodePhase::CounterPhase);
    plane
}

fn uniform_plane(n: u32) -> ElectrodePlane {
    ElectrodePlane::new(
        GridDims::square(n),
        Meters::from_micrometers(20.0),
        Volts::new(3.3),
        Meters::from_micrometers(80.0),
    )
}

/// Richardson-extrapolated central-difference gradient of `f`.
fn richardson_grad(f: impl Fn(Vec3) -> f64, p: Vec3, h: f64) -> Vec3 {
    let central = |h: f64| {
        Vec3::new(
            (f(Vec3::new(p.x + h, p.y, p.z)) - f(Vec3::new(p.x - h, p.y, p.z))) / (2.0 * h),
            (f(Vec3::new(p.x, p.y + h, p.z)) - f(Vec3::new(p.x, p.y - h, p.z))) / (2.0 * h),
            (f(Vec3::new(p.x, p.y, p.z + h)) - f(Vec3::new(p.x, p.y, p.z - h))) / (2.0 * h),
        )
    };
    let coarse = central(h);
    let fine = central(0.5 * h);
    (fine * 4.0 - coarse) / 3.0
}

/// Relative deviation of two vectors, floored so near-zero references (the
/// symmetric lateral components on a uniform plane) compare absolutely
/// against the overall magnitude.
fn rel_dev(a: Vec3, b: Vec3, scale_floor: f64) -> f64 {
    (a - b).norm() / b.norm().max(scale_floor)
}

/// Probe points: above the cage, off-centre in the cage, at the array edge,
/// and at mid-chamber.
fn probes(plane: &ElectrodePlane) -> Vec<Vec3> {
    let pitch = plane.pitch().get();
    let n = plane.dims().cols;
    let c = plane.electrode_center(GridCoord::new(n / 2, n / 2));
    vec![
        Vec3::new(c.x, c.y, 1.5 * pitch),
        Vec3::new(c.x + 0.3 * pitch, c.y - 0.2 * pitch, 1.2 * pitch),
        Vec3::new(c.x + 7e-6, c.y + 3e-6, 40e-6),
        // Edge of the array: half a pitch in from the corner.
        Vec3::new(0.5 * pitch, 0.5 * pitch, 1.5 * pitch),
        Vec3::new(0.7 * pitch, plane.height() - 0.7 * pitch, 30e-6),
    ]
}

fn assert_field_parity(model: &SuperpositionField, label: &str) {
    let h = model.differentiation_step() / 8.0;
    for p in probes(model.plane()) {
        // First derivatives: analytic E = −∇Φ vs Richardson FD of Φ.
        let analytic_e = model.field(p);
        let reference_e = -richardson_grad(|q| model.potential(q), p, h);
        let dev = rel_dev(analytic_e, reference_e, 1e-3 * reference_e.norm().max(1.0));
        assert!(
            dev < REL_TOL,
            "{label}: field deviates {dev:.3e} at {p:?}\n  analytic {analytic_e:?}\n  reference {reference_e:?}"
        );

        // |E|² consistency between the two paths follows from the above; the
        // Hessian path is checked directly: analytic ∇|E|² vs Richardson FD
        // of the analytic |E|².
        let analytic_g = model.grad_e_squared(p);
        let reference_g = richardson_grad(|q| model.e_squared(q), p, h);
        let scale_floor = 1e-3
            * reference_g
                .norm()
                .max(model.e_squared(p) / model.plane().pitch().get());
        let dev = rel_dev(analytic_g, reference_g, scale_floor);
        assert!(
            dev < REL_TOL,
            "{label}: grad|E|^2 deviates {dev:.3e} at {p:?}\n  analytic {analytic_g:?}\n  reference {reference_g:?}"
        );
    }
}

#[test]
fn analytic_gradients_match_richardson_fd_on_cage_plane() {
    let model = SuperpositionField::new(cage_plane(9));
    assert_field_parity(&model, "cage");
}

#[test]
fn analytic_gradients_match_richardson_fd_on_uniform_plane() {
    let model = SuperpositionField::new(uniform_plane(15));
    assert_field_parity(&model, "uniform");
}

#[test]
fn analytic_gradients_match_richardson_fd_near_array_edge() {
    // A cage right at the array corner stresses the truncated window.
    let mut plane = uniform_plane(9);
    plane.set_phase(GridCoord::new(1, 1), ElectrodePhase::CounterPhase);
    let model = SuperpositionField::new(plane);
    let pitch = model.plane().pitch().get();
    let c = model.plane().electrode_center(GridCoord::new(1, 1));
    let h = model.differentiation_step() / 8.0;
    for p in [
        Vec3::new(c.x, c.y, 1.5 * pitch),
        Vec3::new(c.x - 0.4 * pitch, c.y + 0.2 * pitch, 1.1 * pitch),
    ] {
        let analytic = model.grad_e_squared(p);
        let reference = richardson_grad(|q| model.e_squared(q), p, h);
        let dev = rel_dev(analytic, reference, 1e-3 * reference.norm().max(1.0));
        assert!(dev < REL_TOL, "edge cage: deviation {dev:.3e} at {p:?}");
    }
}

#[test]
fn plain_fd_path_agrees_at_its_own_accuracy() {
    // The unextrapolated `*_fd` oracle is O(h²): it must sit within ~1e-2 of
    // the analytic values at the default step — this guards against gross
    // sign/assembly errors independently of the Richardson machinery.
    let model = SuperpositionField::new(cage_plane(9));
    for p in probes(model.plane()) {
        let dev_e = rel_dev(model.field(p), model.field_fd(p), 1.0);
        assert!(dev_e < 1e-2, "field_fd deviates {dev_e:.3e} at {p:?}");
        let dev_g = rel_dev(
            model.grad_e_squared(p),
            model.grad_e_squared_fd(p),
            model.e_squared(p) / model.plane().pitch().get(),
        );
        assert!(
            dev_g < 2e-2,
            "grad_e_squared_fd deviates {dev_g:.3e} at {p:?}"
        );
    }
}

#[test]
fn batched_evaluation_matches_scalar_path() {
    let model = SuperpositionField::new(cage_plane(9));
    let points = probes(model.plane());
    let mut e2 = Vec::new();
    let mut grads = Vec::new();
    model.e_squared_many(&points, &mut e2);
    model.grad_e_squared_many(&points, &mut grads);
    assert_eq!(e2.len(), points.len());
    assert_eq!(grads.len(), points.len());
    for (i, &p) in points.iter().enumerate() {
        assert_eq!(e2[i], model.e_squared(p));
        assert_eq!(grads[i], model.grad_e_squared(p));
    }
}
