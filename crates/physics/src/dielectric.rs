//! Complex permittivities and the Clausius–Mossotti factor.
//!
//! The dielectrophoretic force on a spherical particle of radius `R` in a
//! medium of absolute permittivity `ε_m` is
//!
//! ```text
//! F_DEP = 2π ε_m R³ · Re[K(ω)] · ∇|E_rms|²
//! ```
//!
//! where `K(ω)` is the Clausius–Mossotti (CM) factor computed from the
//! complex permittivities of particle and medium. Its real part is bounded
//! to `(-0.5, 1.0)`; a negative value means the particle is pushed towards
//! field minima (negative DEP, the regime the paper's chip uses to hold cells
//! in levitated cages).

use crate::complex::Complex;
use labchip_units::VACUUM_PERMITTIVITY;
use serde::{Deserialize, Serialize};

/// A complex permittivity `ε* = ε₀εᵣ − j σ/ω`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexPermittivity {
    value: Complex,
}

impl ComplexPermittivity {
    /// Builds a complex permittivity from relative permittivity,
    /// conductivity (S/m) and angular frequency (rad/s).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not strictly positive.
    pub fn new(relative_permittivity: f64, conductivity: f64, omega: f64) -> Self {
        assert!(omega > 0.0, "angular frequency must be positive");
        Self {
            value: Complex::new(
                VACUUM_PERMITTIVITY * relative_permittivity,
                -conductivity / omega,
            ),
        }
    }

    /// Builds directly from a complex value (F/m).
    pub fn from_complex(value: Complex) -> Self {
        Self { value }
    }

    /// The underlying complex value in F/m.
    #[inline]
    pub fn value(&self) -> Complex {
        self.value
    }
}

/// Clausius–Mossotti factor `K = (ε_p* − ε_m*) / (ε_p* + 2 ε_m*)`.
pub fn clausius_mossotti(particle: ComplexPermittivity, medium: ComplexPermittivity) -> Complex {
    let p = particle.value();
    let m = medium.value();
    (p - m) / (p + m * 2.0)
}

/// DEP crossover frequency: the frequency at which `Re[K(ω)]` changes sign,
/// found by bisection over the given range. Returns `None` when the sign of
/// `Re[K]` is the same at both ends of the range.
///
/// `re_k` is a closure mapping angular frequency (rad/s) to `Re[K]`.
pub fn crossover_frequency<F>(re_k: F, omega_lo: f64, omega_hi: f64) -> Option<f64>
where
    F: Fn(f64) -> f64,
{
    let f_lo = re_k(omega_lo);
    let f_hi = re_k(omega_hi);
    if f_lo == 0.0 {
        return Some(omega_lo);
    }
    if f_hi == 0.0 {
        return Some(omega_hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return None;
    }
    // Bisection in log-frequency space: CM spectra vary over decades.
    let mut lo = omega_lo.ln();
    let mut hi = omega_hi.ln();
    let mut s_lo = f_lo.signum();
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let v = re_k(mid.exp());
        if v == 0.0 {
            return Some(mid.exp());
        }
        if v.signum() == s_lo {
            lo = mid;
            s_lo = v.signum();
        } else {
            hi = mid;
        }
        if (hi - lo).abs() < 1e-12 {
            break;
        }
    }
    Some((0.5 * (lo + hi)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm_re(eps_p: f64, sig_p: f64, eps_m: f64, sig_m: f64, omega: f64) -> f64 {
        clausius_mossotti(
            ComplexPermittivity::new(eps_p, sig_p, omega),
            ComplexPermittivity::new(eps_m, sig_m, omega),
        )
        .re
    }

    #[test]
    fn cm_factor_is_bounded() {
        // For any physical parameters Re[K] must lie in (-0.5, 1.0].
        let omegas = [1e3, 1e5, 1e7, 1e9];
        let params = [
            (2.5, 1e-4, 78.5, 0.03),
            (60.0, 0.5, 78.5, 1.5),
            (10.0, 1e-6, 78.5, 1e-4),
        ];
        for &omega in &omegas {
            for &(ep, sp, em, sm) in &params {
                let k = cm_re(ep, sp, em, sm, omega);
                assert!(k > -0.5 - 1e-9 && k <= 1.0 + 1e-9, "K = {k}");
            }
        }
    }

    #[test]
    fn polystyrene_bead_shows_negative_dep_at_high_frequency() {
        // Polystyrene: eps_r = 2.5, very low conductivity. In a conductive
        // medium Re[K] is negative at high frequency (insulating particle).
        let omega = 2.0 * std::f64::consts::PI * 10e6;
        let k = cm_re(2.5, 1e-4, 78.5, 0.03, omega);
        assert!(k < 0.0);
        // The theoretical limit at high frequency is (2.5-78.5)/(2.5+157) ≈ -0.476.
        assert!((k - (2.5 - 78.5) / (2.5 + 2.0 * 78.5)).abs() < 0.05);
    }

    #[test]
    fn conductive_particle_shows_positive_dep_at_low_frequency() {
        // A particle more conductive than the medium experiences positive DEP
        // at low frequencies where conductivities dominate.
        let omega = 2.0 * std::f64::consts::PI * 1e3;
        let k = cm_re(60.0, 0.5, 78.5, 0.03, omega);
        assert!(k > 0.0);
    }

    #[test]
    fn crossover_found_for_conductive_particle() {
        // Same particle as above: positive DEP at low f, negative at high f
        // (permittivity of particle below medium) => a crossover must exist.
        let re_k = |omega: f64| cm_re(60.0, 0.5, 78.5, 0.03, omega);
        let lo = 2.0 * std::f64::consts::PI * 1e3;
        let hi = 2.0 * std::f64::consts::PI * 1e9;
        let cross = crossover_frequency(re_k, lo, hi).expect("crossover expected");
        assert!(cross > lo && cross < hi);
        assert!(re_k(cross * 0.5).signum() != re_k(cross * 2.0).signum());
    }

    #[test]
    fn no_crossover_when_sign_constant() {
        // Polystyrene in low-conductivity buffer is negative-DEP at all
        // relevant frequencies above ~100 kHz.
        let re_k = |omega: f64| cm_re(2.5, 1e-4, 78.5, 0.03, omega);
        let lo = 2.0 * std::f64::consts::PI * 1e6;
        let hi = 2.0 * std::f64::consts::PI * 1e9;
        assert!(crossover_frequency(re_k, lo, hi).is_none());
    }

    #[test]
    #[should_panic(expected = "angular frequency")]
    fn zero_frequency_rejected() {
        let _ = ComplexPermittivity::new(78.5, 0.03, 0.0);
    }
}
