//! Particle (bead and cell) models.
//!
//! The paper's chip manipulates individual biological cells (20–30 µm) and,
//! during development, polystyrene calibration beads. For DEP the particle is
//! characterised by its radius, mass density and effective complex
//! permittivity; biological cells are modelled with the standard
//! **single-shell model** (insulating membrane around a conductive
//! cytoplasm).

use crate::complex::Complex;
use crate::dielectric::{clausius_mossotti, ComplexPermittivity};
use crate::medium::Medium;
use labchip_units::{
    Hertz, Kilograms, KilogramsPerCubicMeter, Meters, CELL_DENSITY, POLYSTYRENE_DENSITY,
    VACUUM_PERMITTIVITY,
};
use serde::{Deserialize, Serialize};

/// Dielectric description of a particle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParticleKind {
    /// A homogeneous dielectric sphere (e.g. a polystyrene bead).
    Homogeneous {
        /// Relative permittivity of the bulk material.
        relative_permittivity: f64,
        /// Bulk conductivity in S/m (including surface conductance effects).
        conductivity: f64,
    },
    /// A single-shell model of a biological cell: conductive cytoplasm
    /// surrounded by a thin, poorly conducting membrane.
    ShelledCell(ShellModel),
}

/// Parameters of the single-shell cell model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShellModel {
    /// Membrane thickness.
    pub membrane_thickness: Meters,
    /// Relative permittivity of the membrane.
    pub membrane_permittivity: f64,
    /// Conductivity of the membrane in S/m.
    pub membrane_conductivity: f64,
    /// Relative permittivity of the cytoplasm.
    pub cytoplasm_permittivity: f64,
    /// Conductivity of the cytoplasm in S/m.
    pub cytoplasm_conductivity: f64,
}

impl ShellModel {
    /// Typical viable mammalian cell: intact, highly insulating membrane
    /// (σ ≈ 10⁻⁷ S/m) over a conductive cytoplasm (σ ≈ 0.4 S/m).
    pub fn viable_mammalian() -> Self {
        Self {
            membrane_thickness: Meters::from_nanometers(7.0),
            membrane_permittivity: 6.0,
            membrane_conductivity: 1e-7,
            cytoplasm_permittivity: 60.0,
            cytoplasm_conductivity: 0.4,
        }
    }

    /// Non-viable (membrane-compromised) cell: the membrane has become
    /// permeable, raising its effective conductivity by orders of magnitude.
    /// This is the dielectric signature used to discriminate live from dead
    /// cells on DEP chips.
    pub fn nonviable_mammalian() -> Self {
        Self {
            membrane_conductivity: 1e-3,
            ..Self::viable_mammalian()
        }
    }

    /// Effective complex permittivity of the shelled sphere of outer radius
    /// `radius` at angular frequency `omega` (rad/s), using the standard
    /// single-shell reduction.
    pub fn effective_permittivity(&self, radius: Meters, omega: f64) -> ComplexPermittivity {
        let r_out = radius.get();
        let r_in = (radius.get() - self.membrane_thickness.get()).max(radius.get() * 1e-3);
        let gamma = r_out / r_in;
        let eps_mem = ComplexPermittivity::new(
            self.membrane_permittivity,
            self.membrane_conductivity,
            omega,
        )
        .value();
        let eps_cyt = ComplexPermittivity::new(
            self.cytoplasm_permittivity,
            self.cytoplasm_conductivity,
            omega,
        )
        .value();
        let k1 = (eps_cyt - eps_mem) / (eps_cyt + eps_mem * 2.0);
        let g3 = Complex::from_real(gamma.powi(3));
        let eff = eps_mem * ((g3 + k1 * 2.0) / (g3 - k1));
        ComplexPermittivity::from_complex(eff)
    }
}

/// A spherical particle suspended in the chamber.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Radius of the (outer) sphere.
    pub radius: Meters,
    /// Mass density.
    pub density: KilogramsPerCubicMeter,
    /// Dielectric model.
    pub kind: ParticleKind,
}

impl Particle {
    /// Creates a particle from its parts.
    pub fn new(radius: Meters, density: KilogramsPerCubicMeter, kind: ParticleKind) -> Self {
        Self {
            radius,
            density,
            kind,
        }
    }

    /// A viable mammalian cell of the given radius (density ≈ 1050 kg/m³).
    pub fn viable_cell(radius: Meters) -> Self {
        Self {
            radius,
            density: KilogramsPerCubicMeter::new(CELL_DENSITY),
            kind: ParticleKind::ShelledCell(ShellModel::viable_mammalian()),
        }
    }

    /// A non-viable (membrane-compromised) mammalian cell.
    pub fn nonviable_cell(radius: Meters) -> Self {
        Self {
            radius,
            density: KilogramsPerCubicMeter::new(CELL_DENSITY),
            kind: ParticleKind::ShelledCell(ShellModel::nonviable_mammalian()),
        }
    }

    /// A polystyrene calibration bead of the given radius.
    pub fn polystyrene_bead(radius: Meters) -> Self {
        Self {
            radius,
            density: KilogramsPerCubicMeter::new(POLYSTYRENE_DENSITY),
            kind: ParticleKind::Homogeneous {
                relative_permittivity: 2.55,
                conductivity: 2e-4,
            },
        }
    }

    /// Particle volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        4.0 / 3.0 * std::f64::consts::PI * self.radius.get().powi(3)
    }

    /// Particle mass.
    #[inline]
    pub fn mass(&self) -> Kilograms {
        Kilograms::new(self.volume() * self.density.get())
    }

    /// Effective complex permittivity at angular frequency `omega` (rad/s).
    pub fn effective_permittivity(&self, omega: f64) -> ComplexPermittivity {
        match self.kind {
            ParticleKind::Homogeneous {
                relative_permittivity,
                conductivity,
            } => ComplexPermittivity::new(relative_permittivity, conductivity, omega),
            ParticleKind::ShelledCell(shell) => shell.effective_permittivity(self.radius, omega),
        }
    }

    /// Clausius–Mossotti factor of this particle in `medium` at drive
    /// frequency `frequency`.
    pub fn clausius_mossotti(&self, medium: &Medium, frequency: Hertz) -> Complex {
        let omega = frequency.angular();
        clausius_mossotti(
            self.effective_permittivity(omega),
            medium.complex_permittivity(omega),
        )
    }

    /// Real part of the Clausius–Mossotti factor (the quantity the DEP force
    /// scales with).
    pub fn cm_re(&self, medium: &Medium, frequency: Hertz) -> f64 {
        self.clausius_mossotti(medium, frequency).re
    }

    /// Effective relative permittivity magnitude (useful for reporting).
    pub fn effective_relative_permittivity(&self, omega: f64) -> f64 {
        self.effective_permittivity(omega).value().re / VACUUM_PERMITTIVITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::Hertz;

    fn low_cond_medium() -> Medium {
        Medium::physiological_low_conductivity()
    }

    #[test]
    fn viable_cell_is_negative_dep_at_low_frequency() {
        // Below ~50 kHz the intact membrane insulates the cell: nDEP.
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let k = cell.cm_re(&low_cond_medium(), Hertz::from_kilohertz(10.0));
        assert!(k < 0.0, "expected nDEP, got K = {k}");
    }

    #[test]
    fn viable_cell_turns_positive_dep_at_intermediate_frequency() {
        // Between the two crossovers (~100 kHz .. ~100 MHz in low-conductivity
        // buffer) the conductive cytoplasm dominates: pDEP.
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let k = cell.cm_re(&low_cond_medium(), Hertz::from_megahertz(5.0));
        assert!(k > 0.0, "expected pDEP, got K = {k}");
    }

    #[test]
    fn viable_and_nonviable_cells_differ() {
        // At ~10 kHz the viable/non-viable contrast is large (the intact
        // membrane insulates the viable cell, the leaky membrane of the dead
        // cell does not) — this is what makes DEP useful for viability
        // sorting.
        let viable = Particle::viable_cell(Meters::from_micrometers(10.0));
        let dead = Particle::nonviable_cell(Meters::from_micrometers(10.0));
        let f = Hertz::from_kilohertz(10.0);
        let kv = viable.cm_re(&low_cond_medium(), f);
        let kd = dead.cm_re(&low_cond_medium(), f);
        assert!(kv < 0.0, "viable cell should be nDEP at 10 kHz, got {kv}");
        assert!(
            kd > 0.0,
            "leaky dead cell should be pDEP at 10 kHz, got {kd}"
        );
        assert!((kv - kd).abs() > 0.5, "viable {kv} vs dead {kd}");
    }

    #[test]
    fn polystyrene_bead_is_negative_dep_in_buffer() {
        let bead = Particle::polystyrene_bead(Meters::from_micrometers(5.0));
        let k = bead.cm_re(&low_cond_medium(), Hertz::from_megahertz(1.0));
        assert!(k < 0.0);
        assert!(k > -0.5);
    }

    #[test]
    fn cm_factor_bounded_for_all_presets_and_frequencies() {
        let particles = [
            Particle::viable_cell(Meters::from_micrometers(8.0)),
            Particle::nonviable_cell(Meters::from_micrometers(8.0)),
            Particle::polystyrene_bead(Meters::from_micrometers(3.0)),
        ];
        let media = [
            Medium::deionized_water(),
            Medium::physiological_low_conductivity(),
            Medium::phosphate_buffered_saline(),
        ];
        for p in &particles {
            for m in &media {
                for exp in 3..9 {
                    let f = Hertz::new(10f64.powi(exp));
                    let k = p.cm_re(m, f);
                    assert!(k > -0.5 - 1e-6 && k < 1.0 + 1e-6, "K out of range: {k}");
                }
            }
        }
    }

    #[test]
    fn mass_and_volume_scale_with_radius_cubed() {
        let small = Particle::viable_cell(Meters::from_micrometers(5.0));
        let big = Particle::viable_cell(Meters::from_micrometers(10.0));
        assert!((big.volume() / small.volume() - 8.0).abs() < 1e-9);
        assert!((big.mass().get() / small.mass().get() - 8.0).abs() < 1e-9);
        // A 10 µm-radius cell weighs on the order of a few nanograms.
        assert!(big.mass().as_picograms() > 1_000.0);
    }

    #[test]
    fn cell_mass_exceeds_displaced_water_mass() {
        // Cells are slightly denser than the medium, so they sediment; this
        // is why the DEP cage must levitate them against gravity.
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let medium = low_cond_medium();
        let displaced = cell.volume() * medium.density.get();
        assert!(cell.mass().get() > displaced);
    }
}
