//! # labchip-physics
//!
//! Physics substrate for the `labchip` workspace: everything needed to model
//! the dielectrophoretic (DEP) manipulation of single cells above a CMOS
//! electrode array, as described in the DATE'05 paper "New Perspectives and
//! Opportunities From the Wild West of Microelectronic Biochips".
//!
//! The crate provides:
//!
//! * complex permittivities and the **Clausius–Mossotti factor** of
//!   homogeneous beads and single-shell cell models ([`dielectric`],
//!   [`particle`]),
//! * quasi-static **electric-field models** above a programmed electrode
//!   array — a fast analytic superposition model and a finite-difference
//!   Laplace solver ([`field`]),
//! * the **DEP force**, trap stiffness and holding force ([`dep`]),
//! * Stokes **drag**, sedimentation, **Brownian motion** and Joule-heating /
//!   evaporation side effects ([`drag`], [`brownian`], [`thermal`]),
//! * overdamped **particle dynamics** integration and levitation-equilibrium
//!   solving ([`dynamics`], [`levitation`]).
//!
//! ## Example: a cell in a DEP cage
//!
//! ```
//! use labchip_physics::prelude::*;
//! use labchip_units::{Hertz, Meters, Vec3, Volts};
//!
//! let medium = Medium::physiological_low_conductivity();
//! let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
//! // Negative DEP at 10 kHz in a low-conductivity buffer: the cell is pushed
//! // towards field minima, i.e. into the cage.
//! let cm = cell.clausius_mossotti(&medium, Hertz::from_kilohertz(10.0));
//! assert!(cm.re < 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod brownian;
pub mod complex;
pub mod dep;
pub mod dielectric;
pub mod drag;
pub mod dynamics;
pub mod error;
pub mod field;
pub mod levitation;
pub mod medium;
pub mod particle;
pub mod thermal;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::brownian::BrownianMotion;
    pub use crate::complex::Complex;
    pub use crate::dep::{DepForceModel, TrapAnalysis};
    pub use crate::dielectric::{clausius_mossotti, crossover_frequency, ComplexPermittivity};
    pub use crate::drag::StokesDrag;
    pub use crate::dynamics::{ForceBalance, OverdampedIntegrator, ParticleState, Trajectory};
    pub use crate::error::PhysicsError;
    pub use crate::field::cache::FieldCache;
    pub use crate::field::laplace::LaplaceSolver;
    pub use crate::field::superposition::SuperpositionField;
    pub use crate::field::{ElectrodePhase, ElectrodePlane, FieldModel};
    pub use crate::levitation::LevitationSolver;
    pub use crate::medium::Medium;
    pub use crate::particle::{Particle, ParticleKind, ShellModel};
    pub use crate::thermal::{EvaporationModel, JouleHeating};
}

pub use error::PhysicsError;
