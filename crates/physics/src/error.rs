//! Error type for the physics crate.

use std::fmt;

/// Errors produced by the physics models.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicsError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Name of the solver.
        solver: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A query was made outside the domain covered by a field model.
    OutOfDomain {
        /// Description of the query location.
        what: String,
    },
}

impl fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PhysicsError::NoConvergence {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "solver `{solver}` did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            PhysicsError::OutOfDomain { what } => write!(f, "query outside model domain: {what}"),
        }
    }
}

impl std::error::Error for PhysicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PhysicsError::InvalidParameter {
            name: "radius",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("radius"));
        let e = PhysicsError::NoConvergence {
            solver: "sor",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("sor"));
        let e = PhysicsError::OutOfDomain {
            what: "z < 0".into(),
        };
        assert!(e.to_string().contains("z < 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysicsError>();
    }
}
