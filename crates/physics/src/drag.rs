//! Viscous drag and sedimentation.
//!
//! At the micrometre scale the Reynolds number is ≪ 1, so particle motion is
//! overdamped: velocity is proportional to force through the Stokes drag
//! coefficient `γ = 6πηR`. This is why cells move at the 10–100 µm/s speeds
//! quoted in the paper rather than accelerating ballistically.

use crate::medium::Medium;
use crate::particle::Particle;
use labchip_units::{MetersPerSecond, Newtons, Vec3, STANDARD_GRAVITY};
use serde::{Deserialize, Serialize};

/// Stokes drag model for a spherical particle in a medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StokesDrag {
    gamma: f64,
    radius: f64,
}

impl StokesDrag {
    /// Builds the drag model from particle radius and medium viscosity.
    pub fn new(particle: &Particle, medium: &Medium) -> Self {
        let radius = particle.radius.get();
        Self {
            gamma: 6.0 * std::f64::consts::PI * medium.viscosity.get() * radius,
            radius,
        }
    }

    /// Drag coefficient `γ = 6πηR` in N·s/m.
    #[inline]
    pub fn coefficient(&self) -> f64 {
        self.gamma
    }

    /// Drag coefficient including Faxén's wall correction for motion parallel
    /// to a wall at distance `gap` between particle surface and wall.
    ///
    /// The correction diverges as the particle touches the wall; `gap` is
    /// clamped to 1 % of the radius.
    pub fn coefficient_near_wall(&self, gap: f64) -> f64 {
        let h = self.radius + gap.max(self.radius * 0.01);
        let ratio = self.radius / h;
        // Faxén series for translation parallel to a plane wall.
        let correction = 1.0 - (9.0 / 16.0) * ratio + (1.0 / 8.0) * ratio.powi(3)
            - (45.0 / 256.0) * ratio.powi(4)
            - (1.0 / 16.0) * ratio.powi(5);
        self.gamma / correction.max(0.05)
    }

    /// Terminal velocity under a constant force (free solution, no wall).
    #[inline]
    pub fn terminal_velocity(&self, force: Newtons) -> MetersPerSecond {
        MetersPerSecond::new(force.get() / self.gamma)
    }

    /// Velocity vector resulting from a force vector.
    #[inline]
    pub fn velocity_from_force(&self, force: Vec3) -> Vec3 {
        force / self.gamma
    }

    /// Drag force opposing a velocity `v` (N).
    #[inline]
    pub fn force_at_velocity(&self, velocity: MetersPerSecond) -> Newtons {
        Newtons::new(self.gamma * velocity.get())
    }
}

/// Net gravity minus buoyancy force on a particle in a medium. Positive z is
/// *up* (away from the chip), so the returned vector points down for a
/// particle denser than the medium.
pub fn sedimentation_force(particle: &Particle, medium: &Medium) -> Vec3 {
    let delta_rho = particle.density.get() - medium.density.get();
    let f = -delta_rho * particle.volume() * STANDARD_GRAVITY;
    Vec3::new(0.0, 0.0, f)
}

/// Magnitude of the sedimentation (weight minus buoyancy) force.
pub fn sedimentation_force_magnitude(particle: &Particle, medium: &Medium) -> Newtons {
    Newtons::new(sedimentation_force(particle, medium).norm())
}

/// Sedimentation terminal velocity (signed, negative = sinking).
pub fn sedimentation_velocity(particle: &Particle, medium: &Medium) -> MetersPerSecond {
    let drag = StokesDrag::new(particle, medium);
    MetersPerSecond::new(sedimentation_force(particle, medium).z / drag.coefficient())
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::Meters;

    fn cell_and_medium() -> (Particle, Medium) {
        (
            Particle::viable_cell(Meters::from_micrometers(10.0)),
            Medium::physiological_low_conductivity(),
        )
    }

    #[test]
    fn drag_coefficient_order_of_magnitude() {
        let (cell, medium) = cell_and_medium();
        let drag = StokesDrag::new(&cell, &medium);
        // 6π * 0.89e-3 * 10e-6 ≈ 1.7e-7 N·s/m.
        assert!(drag.coefficient() > 1e-7 && drag.coefficient() < 3e-7);
    }

    #[test]
    fn piconewton_force_gives_micrometer_per_second_velocity() {
        // This is the paper's §2 timescale claim: DEP forces of a few pN move
        // cells at roughly 10-100 µm/s.
        let (cell, medium) = cell_and_medium();
        let drag = StokesDrag::new(&cell, &medium);
        let v = drag.terminal_velocity(Newtons::from_piconewtons(5.0));
        let um_s = v.as_micrometers_per_second();
        assert!(um_s > 5.0 && um_s < 100.0, "v = {um_s} um/s");
    }

    #[test]
    fn wall_correction_increases_drag() {
        let (cell, medium) = cell_and_medium();
        let drag = StokesDrag::new(&cell, &medium);
        let far = drag.coefficient_near_wall(100e-6);
        let near = drag.coefficient_near_wall(0.5e-6);
        assert!(far >= drag.coefficient() * 0.99);
        assert!(near > far, "near-wall drag must exceed far-wall drag");
        assert!(
            near < drag.coefficient() * 10.0,
            "correction should stay bounded"
        );
    }

    #[test]
    fn velocity_from_force_is_parallel_to_force() {
        let (cell, medium) = cell_and_medium();
        let drag = StokesDrag::new(&cell, &medium);
        let f = Vec3::new(1e-12, -2e-12, 0.5e-12);
        let v = drag.velocity_from_force(f);
        let cross = f.cross(v).norm();
        assert!(cross < 1e-24);
        assert!(v.dot(f) > 0.0);
    }

    #[test]
    fn sedimentation_points_down_and_is_sub_piconewton_scale() {
        let (cell, medium) = cell_and_medium();
        let f = sedimentation_force(&cell, &medium);
        assert!(f.z < 0.0);
        let mag = sedimentation_force_magnitude(&cell, &medium);
        // Δρ≈53 kg/m³, V≈4.2e-15 m³ → ≈2.2 pN for a 10 µm-radius cell.
        assert!(mag.as_piconewtons() > 0.5 && mag.as_piconewtons() < 10.0);
    }

    #[test]
    fn sedimentation_velocity_is_slow() {
        let (cell, medium) = cell_and_medium();
        let v = sedimentation_velocity(&cell, &medium);
        assert!(v.get() < 0.0, "cells sink");
        let um_s = v.as_micrometers_per_second().abs();
        assert!(um_s > 1.0 && um_s < 50.0, "v = {um_s} um/s");
    }

    #[test]
    fn drag_force_opposes_motion_linearly() {
        let (cell, medium) = cell_and_medium();
        let drag = StokesDrag::new(&cell, &medium);
        let f1 = drag.force_at_velocity(MetersPerSecond::from_micrometers_per_second(10.0));
        let f2 = drag.force_at_velocity(MetersPerSecond::from_micrometers_per_second(20.0));
        assert!((f2.get() / f1.get() - 2.0).abs() < 1e-12);
    }
}
