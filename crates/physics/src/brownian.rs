//! Brownian motion of suspended particles.
//!
//! Thermal agitation sets the noise floor of any single-cell manipulation:
//! the DEP trap stiffness must produce a confinement much tighter than the
//! free diffusion length over the manipulation timescale, and the detection
//! electronics must average over it (paper §2: trade execution time for
//! quality of results).

use crate::drag::StokesDrag;
use crate::medium::Medium;
use crate::particle::Particle;
use labchip_units::{Seconds, Vec3, BOLTZMANN};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal deviate with the Box–Muller transform.
///
/// Kept local (rather than depending on `rand_distr`) because a single
/// Gaussian sampler is all the workspace needs.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Brownian-motion model for one particle in one medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownianMotion {
    diffusion: f64,
    temperature: f64,
}

impl BrownianMotion {
    /// Builds the model from the Stokes–Einstein relation `D = kT / γ`.
    pub fn new(particle: &Particle, medium: &Medium) -> Self {
        let gamma = StokesDrag::new(particle, medium).coefficient();
        Self {
            diffusion: BOLTZMANN * medium.temperature.get() / gamma,
            temperature: medium.temperature.get(),
        }
    }

    /// Diffusion coefficient in m²/s.
    #[inline]
    pub fn diffusion_coefficient(&self) -> f64 {
        self.diffusion
    }

    /// RMS displacement along one axis after time `dt`: `√(2 D dt)`.
    #[inline]
    pub fn rms_displacement(&self, dt: Seconds) -> f64 {
        (2.0 * self.diffusion * dt.get()).sqrt()
    }

    /// Thermal energy `kT` in joules.
    #[inline]
    pub fn thermal_energy(&self) -> f64 {
        BOLTZMANN * self.temperature
    }

    /// Samples a random 3-D displacement over `dt` using the caller's RNG.
    pub fn sample_displacement<R: Rng + ?Sized>(&self, dt: Seconds, rng: &mut R) -> Vec3 {
        let sigma = self.rms_displacement(dt);
        Vec3::new(
            sigma * standard_normal(rng),
            sigma * standard_normal(rng),
            sigma * standard_normal(rng),
        )
    }

    /// Equipartition estimate of the RMS confinement of a particle held in a
    /// harmonic trap of stiffness `k` (N/m): `√(kT / k)`.
    pub fn trap_confinement(&self, stiffness: f64) -> f64 {
        if stiffness <= 0.0 {
            f64::INFINITY
        } else {
            (self.thermal_energy() / stiffness).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::Meters;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> BrownianMotion {
        BrownianMotion::new(
            &Particle::viable_cell(Meters::from_micrometers(10.0)),
            &Medium::physiological_low_conductivity(),
        )
    }

    #[test]
    fn diffusion_coefficient_order_of_magnitude() {
        // kT/γ for a 10 µm-radius sphere in water ≈ 2.5e-14 m²/s.
        let b = model();
        assert!(b.diffusion_coefficient() > 1e-14 && b.diffusion_coefficient() < 1e-13);
    }

    #[test]
    fn rms_displacement_grows_with_sqrt_time() {
        let b = model();
        let d1 = b.rms_displacement(Seconds::new(1.0));
        let d4 = b.rms_displacement(Seconds::new(4.0));
        assert!((d4 / d1 - 2.0).abs() < 1e-9);
        // Over 1 s a big cell diffuses a fraction of a micrometre — far less
        // than the 10-100 µm/s directed DEP motion, which is why the DEP drag
        // dominates transport.
        assert!(d1 < 1e-6);
    }

    #[test]
    fn smaller_particles_diffuse_faster() {
        let medium = Medium::physiological_low_conductivity();
        let big = BrownianMotion::new(
            &Particle::viable_cell(Meters::from_micrometers(10.0)),
            &medium,
        );
        let small = BrownianMotion::new(
            &Particle::polystyrene_bead(Meters::from_micrometers(1.0)),
            &medium,
        );
        assert!(small.diffusion_coefficient() > big.diffusion_coefficient());
    }

    #[test]
    fn sampled_displacements_have_correct_scale() {
        let b = model();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let dt = Seconds::new(1.0);
        let n = 2_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let d = b.sample_displacement(dt, &mut rng);
            sum_sq += d.x * d.x;
        }
        let measured_rms = (sum_sq / n as f64).sqrt();
        let expected = b.rms_displacement(dt);
        assert!(
            (measured_rms / expected - 1.0).abs() < 0.1,
            "measured {measured_rms:.3e} expected {expected:.3e}"
        );
    }

    #[test]
    fn trap_confinement_shrinks_with_stiffness() {
        let b = model();
        let loose = b.trap_confinement(1e-9);
        let tight = b.trap_confinement(1e-6);
        assert!(tight < loose);
        assert_eq!(b.trap_confinement(0.0), f64::INFINITY);
        // A DEP cage with ~1e-7 N/m stiffness confines a cell to well under a
        // micrometre RMS — tight compared to the 20 µm pitch.
        assert!(b.trap_confinement(1e-7) < 1e-6);
    }
}
