//! Overdamped particle dynamics.
//!
//! At cell scale inertia is negligible (the velocity relaxation time is
//! microseconds), so the equation of motion reduces to a force balance:
//! `v = F_total / γ` plus Brownian noise. The integrator advances particle
//! positions with that rule and records trajectories for analysis.

use crate::brownian::BrownianMotion;
use crate::dep::DepForceModel;
use crate::drag::{sedimentation_force, StokesDrag};
use crate::field::FieldModel;
use crate::medium::Medium;
use crate::particle::Particle;
use labchip_units::{Meters, MetersPerSecond, Seconds, Vec3};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Instantaneous state of a simulated particle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleState {
    /// Position in chamber coordinates (metres), z = 0 at the electrode plane.
    pub position: Vec3,
    /// Velocity from the last force balance (m/s).
    pub velocity: Vec3,
    /// Simulated time.
    pub time: Seconds,
}

impl ParticleState {
    /// Creates a state at rest at `position`, time zero.
    pub fn at(position: Vec3) -> Self {
        Self {
            position,
            velocity: Vec3::ZERO,
            time: Seconds::ZERO,
        }
    }
}

/// The set of forces acting on a particle, combined into a net force.
#[derive(Debug, Clone, Copy)]
pub struct ForceBalance {
    dep: DepForceModel,
    drag: StokesDrag,
    sedimentation: Vec3,
    /// Externally imposed flow velocity of the medium (drag force is computed
    /// relative to it).
    pub flow_velocity: Vec3,
    /// Whether Brownian noise is added during integration.
    pub brownian_enabled: bool,
    brownian: BrownianMotion,
    /// Cached reciprocal drag coefficient — the force→velocity conversion
    /// runs once per particle per step, so the division is hoisted here.
    inv_drag: f64,
}

impl ForceBalance {
    /// Builds the balance for one particle type in one medium at the given
    /// DEP drive frequency.
    pub fn new(particle: &Particle, medium: &Medium, frequency: labchip_units::Hertz) -> Self {
        let drag = StokesDrag::new(particle, medium);
        let inv_drag = 1.0 / drag.coefficient();
        Self {
            dep: DepForceModel::new(particle, medium, frequency),
            drag,
            sedimentation: sedimentation_force(particle, medium),
            flow_velocity: Vec3::ZERO,
            brownian_enabled: true,
            brownian: BrownianMotion::new(particle, medium),
            inv_drag,
        }
    }

    /// The DEP model in use.
    pub fn dep(&self) -> &DepForceModel {
        &self.dep
    }

    /// The drag model in use.
    pub fn drag(&self) -> &StokesDrag {
        &self.drag
    }

    /// The Brownian model in use.
    pub fn brownian(&self) -> &BrownianMotion {
        &self.brownian
    }

    /// Deterministic net force (DEP + sedimentation + flow drag) at a
    /// position.
    pub fn net_force<F: FieldModel + ?Sized>(&self, field: &F, position: Vec3) -> Vec3 {
        self.dep.force(field, position)
            + self.sedimentation
            + self.flow_velocity * self.drag.coefficient()
    }

    /// Deterministic drift velocity at a position.
    pub fn drift_velocity<F: FieldModel + ?Sized>(&self, field: &F, position: Vec3) -> Vec3 {
        self.net_force(field, position) * self.inv_drag
    }
}

/// Explicit overdamped (Euler–Maruyama) integrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverdampedIntegrator {
    /// Time step.
    pub dt: Seconds,
    /// Lower bound on z (particles cannot cross the chip surface); the
    /// particle radius is the natural choice.
    pub floor_z: Meters,
    /// Upper bound on z (the lid), minus the particle radius.
    pub ceiling_z: Meters,
}

impl OverdampedIntegrator {
    /// Creates an integrator with the given step and vertical bounds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or the bounds are inverted.
    pub fn new(dt: Seconds, floor_z: Meters, ceiling_z: Meters) -> Self {
        assert!(dt.get() > 0.0, "time step must be positive");
        assert!(
            ceiling_z.get() > floor_z.get(),
            "ceiling must be above floor"
        );
        Self {
            dt,
            floor_z,
            ceiling_z,
        }
    }

    /// Advances one step, returning the new state.
    pub fn step<F, R>(
        &self,
        field: &F,
        balance: &ForceBalance,
        state: &ParticleState,
        rng: &mut R,
    ) -> ParticleState
    where
        F: FieldModel + ?Sized,
        R: Rng + ?Sized,
    {
        let drift = balance.drift_velocity(field, state.position);
        let mut displacement = drift * self.dt.get();
        if balance.brownian_enabled {
            displacement += balance.brownian().sample_displacement(self.dt, rng);
        }
        let mut position = state.position + displacement;
        position.z = position.z.clamp(self.floor_z.get(), self.ceiling_z.get());
        ParticleState {
            position,
            velocity: displacement / self.dt.get(),
            time: state.time + self.dt,
        }
    }

    /// Runs `steps` integration steps, recording the trajectory.
    pub fn run<F, R>(
        &self,
        field: &F,
        balance: &ForceBalance,
        initial: ParticleState,
        steps: usize,
        rng: &mut R,
    ) -> Trajectory
    where
        F: FieldModel + ?Sized,
        R: Rng + ?Sized,
    {
        let mut states = Vec::with_capacity(steps + 1);
        states.push(initial);
        let mut current = initial;
        for _ in 0..steps {
            current = self.step(field, balance, &current, rng);
            states.push(current);
        }
        Trajectory { states }
    }
}

/// A recorded particle trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    states: Vec<ParticleState>,
}

impl Trajectory {
    /// The recorded states, in time order.
    pub fn states(&self) -> &[ParticleState] {
        &self.states
    }

    /// First state.
    ///
    /// # Panics
    ///
    /// Never panics: a trajectory always contains at least the initial state.
    pub fn first(&self) -> &ParticleState {
        &self.states[0]
    }

    /// Last state.
    pub fn last(&self) -> &ParticleState {
        self.states.last().expect("trajectory is never empty")
    }

    /// Total simulated duration.
    pub fn duration(&self) -> Seconds {
        self.last().time - self.first().time
    }

    /// Net displacement from start to end.
    pub fn net_displacement(&self) -> Vec3 {
        self.last().position - self.first().position
    }

    /// Path length along the trajectory.
    pub fn path_length(&self) -> Meters {
        let mut total = 0.0;
        for pair in self.states.windows(2) {
            total += (pair[1].position - pair[0].position).norm();
        }
        Meters::new(total)
    }

    /// Average speed along the path.
    pub fn mean_speed(&self) -> MetersPerSecond {
        let d = self.duration();
        if d.get() <= 0.0 {
            MetersPerSecond::ZERO
        } else {
            MetersPerSecond::new(self.path_length().get() / d.get())
        }
    }

    /// Maximum lateral (xy) distance from a reference point over the whole
    /// trajectory — used to decide whether a particle stayed trapped.
    pub fn max_lateral_excursion(&self, reference: Vec3) -> Meters {
        let max = self
            .states
            .iter()
            .map(|s| (s.position.xy() - reference.xy()).norm())
            .fold(0.0_f64, f64::max);
        Meters::new(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::superposition::SuperpositionField;
    use crate::field::{ElectrodePhase, ElectrodePlane};
    use labchip_units::{GridCoord, GridDims, Hertz, Volts};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (SuperpositionField, ForceBalance, Vec3) {
        let mut plane = ElectrodePlane::new(
            GridDims::square(9),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
        let cage = plane.electrode_center(GridCoord::new(4, 4));
        let field = SuperpositionField::new(plane);
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let balance = ForceBalance::new(&cell, &medium, Hertz::from_kilohertz(10.0));
        (field, balance, cage)
    }

    fn integrator() -> OverdampedIntegrator {
        // The cage is a stiff trap (k/γ relaxation time of a few ms), so the
        // explicit integrator needs sub-millisecond steps to stay stable.
        OverdampedIntegrator::new(
            Seconds::from_millis(0.5),
            Meters::from_micrometers(10.0),
            Meters::from_micrometers(70.0),
        )
    }

    #[test]
    fn trapped_cell_stays_near_cage_center() {
        let (field, balance, cage) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let start = ParticleState::at(Vec3::new(cage.x + 5e-6, cage.y, 30e-6));
        let traj = integrator().run(&field, &balance, start, 2_000, &mut rng);
        let excursion = traj.max_lateral_excursion(Vec3::new(cage.x, cage.y, 0.0));
        assert!(
            excursion.as_micrometers() < 20.0,
            "cell escaped the cage: {} um",
            excursion.as_micrometers()
        );
        // The cell also settles at a levitated height above the chip floor.
        assert!(traj.last().position.z > 10e-6);
    }

    #[test]
    fn untrapped_region_lets_cell_sediment() {
        // On a uniform plane (no cage programmed) the DEP force vanishes and
        // the cell sinks towards the chip under gravity.
        let plane = ElectrodePlane::new(
            GridDims::square(9),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        let field = SuperpositionField::new(plane);
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let mut balance = ForceBalance::new(&cell, &medium, Hertz::from_kilohertz(10.0));
        balance.brownian_enabled = false;
        let start = ParticleState::at(Vec3::new(90e-6, 90e-6, 60e-6));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let traj = integrator().run(&field, &balance, start, 300, &mut rng);
        assert!(traj.last().position.z < start.position.z);
    }

    #[test]
    fn drift_velocity_matches_force_over_gamma() {
        let (field, balance, cage) = setup();
        let p = Vec3::new(cage.x + 10e-6, cage.y, 30e-6);
        let f = balance.net_force(&field, p);
        let v = balance.drift_velocity(&field, p);
        let gamma = balance.drag().coefficient();
        assert!((v.x - f.x / gamma).abs() < 1e-15);
        assert!((v.z - f.z / gamma).abs() < 1e-15);
    }

    #[test]
    fn imposed_flow_advects_particle() {
        // On a uniform (cage-free) plane the lateral DEP force vanishes by
        // symmetry, so an imposed flow carries the cell along.
        let plane = ElectrodePlane::new(
            GridDims::square(9),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        let center = Vec3::new(90e-6, 90e-6, 40e-6);
        let field = SuperpositionField::new(plane);
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let mut balance = ForceBalance::new(&cell, &medium, Hertz::from_kilohertz(10.0));
        balance.brownian_enabled = false;
        balance.flow_velocity = Vec3::new(50e-6, 0.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let traj = integrator().run(&field, &balance, ParticleState::at(center), 200, &mut rng);
        assert!(traj.net_displacement().x > 0.0);
        // Carried at roughly the flow speed: 50 µm/s for 0.1 s ≈ 5 µm.
        let expected = 50e-6 * traj.duration().get();
        assert!((traj.net_displacement().x - expected).abs() < 0.5 * expected);
    }

    #[test]
    fn trajectory_metrics_are_consistent() {
        let (field, balance, cage) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let start = ParticleState::at(Vec3::new(cage.x, cage.y, 30e-6));
        let traj = integrator().run(&field, &balance, start, 50, &mut rng);
        assert_eq!(traj.states().len(), 51);
        assert!((traj.duration().get() - 50.0 * 0.5e-3).abs() < 1e-9);
        assert!(traj.path_length().get() >= traj.net_displacement().norm() - 1e-12);
        assert!(traj.mean_speed().get() >= 0.0);
    }

    #[test]
    fn integrator_clamps_to_chamber() {
        let (field, mut balance, cage) = setup();
        balance.brownian_enabled = false;
        let start = ParticleState::at(Vec3::new(cage.x + 70e-6, cage.y + 70e-6, 10.5e-6));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let traj = integrator().run(&field, &balance, start, 500, &mut rng);
        for s in traj.states() {
            assert!(s.position.z >= 10e-6 - 1e-12);
            assert!(s.position.z <= 70e-6 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "time step")]
    fn zero_time_step_rejected() {
        let _ = OverdampedIntegrator::new(
            Seconds::ZERO,
            Meters::from_micrometers(10.0),
            Meters::from_micrometers(70.0),
        );
    }
}
