//! Levitation equilibrium of a trapped cell.
//!
//! The paper's chip holds cells "in levitation": inside a cage the negative
//! DEP force has an upward component near the electrode plane that balances
//! the net weight of the cell at some height above the chip. This module
//! finds that equilibrium height and reports whether a stable levitation
//! point exists at all for the given drive conditions — the quantity that
//! degrades as the supply voltage shrinks with newer technology nodes.

use crate::dep::DepForceModel;
use crate::drag::sedimentation_force;
use crate::field::FieldModel;
use crate::medium::Medium;
use crate::particle::Particle;
use labchip_units::{Hertz, Meters, Vec3};
use serde::{Deserialize, Serialize};

/// Result of a levitation analysis above one cage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevitationPoint {
    /// Height of the stable equilibrium above the electrode plane.
    pub height: Meters,
    /// Net vertical DEP force at that height (N); equals the cell weight in
    /// magnitude.
    pub dep_force_z: f64,
    /// Vertical stiffness `-d(Fz)/dz` at the equilibrium (N/m); positive
    /// means the equilibrium is stable.
    pub vertical_stiffness: f64,
}

/// Solver for the vertical force balance above a cage centre.
#[derive(Debug, Clone, Copy)]
pub struct LevitationSolver {
    dep: DepForceModel,
    weight_z: f64,
    z_min: f64,
    z_max: f64,
}

impl LevitationSolver {
    /// Creates a solver for one particle/medium/frequency combination,
    /// searching between `z_min` and `z_max` above the electrode plane.
    ///
    /// # Panics
    ///
    /// Panics if the search range is empty or non-positive.
    pub fn new(
        particle: &Particle,
        medium: &Medium,
        frequency: Hertz,
        z_min: Meters,
        z_max: Meters,
    ) -> Self {
        assert!(
            z_max.get() > z_min.get() && z_min.get() > 0.0,
            "need 0 < z_min < z_max"
        );
        Self {
            dep: DepForceModel::new(particle, medium, frequency),
            weight_z: sedimentation_force(particle, medium).z,
            z_min: z_min.get(),
            z_max: z_max.get(),
        }
    }

    /// The DEP force model used by the solver.
    pub fn dep(&self) -> &DepForceModel {
        &self.dep
    }

    /// Net vertical force (DEP + weight − buoyancy) at height `z` above the
    /// cage centre located at `(x, y)` in chip coordinates.
    pub fn net_vertical_force<F: FieldModel + ?Sized>(
        &self,
        field: &F,
        cage_xy: (f64, f64),
        z: f64,
    ) -> f64 {
        self.dep.force(field, Vec3::new(cage_xy.0, cage_xy.1, z)).z + self.weight_z
    }

    /// Finds the stable levitation point above `cage_xy`, if one exists.
    ///
    /// The net force is sampled over the search range; a stable equilibrium
    /// is a sign change from positive (pushing up) below to negative (pulling
    /// down) above, which is then refined by bisection.
    pub fn solve<F: FieldModel + ?Sized>(
        &self,
        field: &F,
        cage_xy: (f64, f64),
    ) -> Option<LevitationPoint> {
        let samples = 60;
        let mut prev_z = self.z_min;
        let mut prev_f = self.net_vertical_force(field, cage_xy, prev_z);
        for i in 1..=samples {
            let z = self.z_min + (self.z_max - self.z_min) * i as f64 / samples as f64;
            let f = self.net_vertical_force(field, cage_xy, z);
            if prev_f > 0.0 && f <= 0.0 {
                // Bracketed a stable equilibrium; refine by bisection.
                let (mut lo, mut hi) = (prev_z, z);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if self.net_vertical_force(field, cage_xy, mid) > 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let height = 0.5 * (lo + hi);
                let dz = (self.z_max - self.z_min) * 1e-3;
                let f_hi = self.net_vertical_force(field, cage_xy, height + dz);
                let f_lo = self.net_vertical_force(field, cage_xy, height - dz);
                let stiffness = -(f_hi - f_lo) / (2.0 * dz);
                return Some(LevitationPoint {
                    height: Meters::new(height),
                    dep_force_z: self.net_vertical_force(field, cage_xy, height) - self.weight_z,
                    vertical_stiffness: stiffness,
                });
            }
            prev_z = z;
            prev_f = f;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::superposition::SuperpositionField;
    use crate::field::{ElectrodePhase, ElectrodePlane};
    use labchip_units::{GridCoord, GridDims, Volts};

    fn cage_field(amplitude: f64) -> (SuperpositionField, (f64, f64)) {
        let mut plane = ElectrodePlane::new(
            GridDims::square(9),
            Meters::from_micrometers(20.0),
            Volts::new(amplitude),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
        let c = plane.electrode_center(GridCoord::new(4, 4));
        (SuperpositionField::new(plane), (c.x, c.y))
    }

    fn solver(amplitude: f64) -> (SuperpositionField, (f64, f64), LevitationSolver) {
        let (field, xy) = cage_field(amplitude);
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let medium = Medium::physiological_low_conductivity();
        let solver = LevitationSolver::new(
            &cell,
            &medium,
            Hertz::from_kilohertz(10.0),
            Meters::from_micrometers(11.0),
            Meters::from_micrometers(70.0),
        );
        (field, xy, solver)
    }

    #[test]
    fn high_voltage_drive_levitates_the_cell() {
        let (field, xy, solver) = solver(3.3);
        let point = solver
            .solve(&field, xy)
            .expect("levitation expected at 3.3 V");
        // Levitation heights on these chips are in the tens of micrometres.
        assert!(point.height.as_micrometers() > 11.0);
        assert!(point.height.as_micrometers() < 70.0);
        assert!(point.vertical_stiffness > 0.0, "equilibrium must be stable");
        // The DEP force balances the ~2 pN net weight of the cell.
        assert!(point.dep_force_z > 0.0);
    }

    #[test]
    fn levitation_height_increases_with_voltage() {
        let (field_lo, xy, solver_lo) = solver(2.0);
        let (field_hi, _, solver_hi) = solver(5.0);
        let lo = solver_lo.solve(&field_lo, xy);
        let hi = solver_hi.solve(&field_hi, xy);
        match (lo, hi) {
            (Some(lo), Some(hi)) => {
                assert!(
                    hi.height.get() >= lo.height.get(),
                    "stronger drive lifts higher"
                );
            }
            (None, Some(_)) => { /* low voltage cannot levitate at all: also consistent */ }
            other => panic!("unexpected levitation outcome: {other:?}"),
        }
    }

    #[test]
    fn positive_dep_frequency_gives_no_levitation() {
        // At 5 MHz the viable cell is pDEP: it is attracted to field maxima
        // at the electrode edges, not levitated above the cage.
        let (field, xy) = cage_field(3.3);
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let medium = Medium::physiological_low_conductivity();
        let solver = LevitationSolver::new(
            &cell,
            &medium,
            Hertz::from_megahertz(5.0),
            Meters::from_micrometers(11.0),
            Meters::from_micrometers(70.0),
        );
        assert!(solver.solve(&field, xy).is_none());
    }

    #[test]
    #[should_panic(expected = "z_min")]
    fn invalid_range_rejected() {
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let medium = Medium::physiological_low_conductivity();
        let _ = LevitationSolver::new(
            &cell,
            &medium,
            Hertz::from_kilohertz(10.0),
            Meters::from_micrometers(50.0),
            Meters::from_micrometers(20.0),
        );
    }
}
