//! Dielectrophoretic force, trap stiffness and holding force.
//!
//! The time-averaged DEP force on a small sphere in a non-uniform RMS field
//! is `F = 2π ε_m R³ Re[K] ∇|E_rms|²`. The paper's §2 leans on two of its
//! properties: the force scales with the **square of the drive voltage**
//! (hence older, higher-voltage technology nodes are attractive) and, for
//! negative `Re[K]`, it pushes particles towards field minima — the cages.

use crate::field::FieldModel;
use crate::medium::Medium;
use crate::particle::Particle;
use labchip_units::{Hertz, Newtons, Vec3};
use serde::{Deserialize, Serialize};

/// Precomputed DEP force model for one particle type in one medium at one
/// drive frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepForceModel {
    prefactor: f64,
    cm_re: f64,
}

impl DepForceModel {
    /// Builds the force model from particle, medium and drive frequency.
    pub fn new(particle: &Particle, medium: &Medium, frequency: Hertz) -> Self {
        let cm_re = particle.cm_re(medium, frequency);
        let prefactor = 2.0
            * std::f64::consts::PI
            * medium.absolute_permittivity()
            * particle.radius.get().powi(3)
            * cm_re;
        Self { prefactor, cm_re }
    }

    /// Real part of the Clausius–Mossotti factor used by this model.
    #[inline]
    pub fn cm_re(&self) -> f64 {
        self.cm_re
    }

    /// `2π ε_m R³ Re[K]` in SI units — multiply by `∇|E|²` to get the force.
    #[inline]
    pub fn prefactor(&self) -> f64 {
        self.prefactor
    }

    /// Returns `true` when the particle is in the negative-DEP regime (pushed
    /// towards field minima, i.e. trappable in a cage).
    #[inline]
    pub fn is_negative_dep(&self) -> bool {
        self.cm_re < 0.0
    }

    /// DEP force vector at `position` in the given field.
    pub fn force<F: FieldModel + ?Sized>(&self, field: &F, position: Vec3) -> Vec3 {
        field.grad_e_squared(position) * self.prefactor
    }

    /// Magnitude of the DEP force at `position`.
    pub fn force_magnitude<F: FieldModel + ?Sized>(&self, field: &F, position: Vec3) -> Newtons {
        Newtons::new(self.force(field, position).norm())
    }

    /// DEP potential energy `U = −2π ε_m R³ Re[K] |E|²` at `position`; for
    /// negative DEP this has minima where `|E|²` has minima.
    pub fn potential_energy<F: FieldModel + ?Sized>(&self, field: &F, position: Vec3) -> f64 {
        -self.prefactor * field.e_squared(position)
    }
}

/// Quantitative characterisation of one DEP cage (trap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrapAnalysis {
    /// Location of the `|E|²` minimum (the cage centre).
    pub minimum: Vec3,
    /// `|E|²` at the minimum, (V/m)².
    pub e_squared_at_minimum: f64,
    /// Lateral trap stiffness (N/m): restoring force per unit lateral
    /// displacement, evaluated near the minimum.
    pub lateral_stiffness: f64,
    /// Maximum lateral restoring (holding) force towards the cage centre on
    /// the segment from the centre towards the next cage site.
    pub holding_force: Newtons,
}

impl TrapAnalysis {
    /// Analyses the trap around `seed` (a first guess for the cage centre,
    /// e.g. one pitch above the counter-phase electrode).
    ///
    /// `lateral_extent` bounds the search for the minimum and the holding
    /// force scan (typically one electrode pitch); `vertical_range` bounds
    /// the z search (typically the chamber height).
    pub fn analyze<F: FieldModel + ?Sized>(
        field: &F,
        dep: &DepForceModel,
        seed: Vec3,
        lateral_extent: f64,
        vertical_range: (f64, f64),
    ) -> Self {
        let minimum = find_local_minimum(field, seed, lateral_extent, vertical_range);
        let e_squared_at_minimum = field.e_squared(minimum);

        // Stiffness: numerically differentiate the restoring force a small
        // lateral step away from the minimum.
        let dx = lateral_extent * 0.05;
        let f_plus = dep.force(field, Vec3::new(minimum.x + dx, minimum.y, minimum.z));
        let f_minus = dep.force(field, Vec3::new(minimum.x - dx, minimum.y, minimum.z));
        // For a restoring trap f_plus.x < 0 and f_minus.x > 0; stiffness is
        // -dFx/dx > 0.
        let lateral_stiffness = -(f_plus.x - f_minus.x) / (2.0 * dx);

        // Holding force: the strongest pull back towards the centre along the
        // +x escape path.
        let mut holding: f64 = 0.0;
        let steps = 24;
        for i in 1..=steps {
            let x = minimum.x + lateral_extent * i as f64 / steps as f64;
            let f = dep.force(field, Vec3::new(x, minimum.y, minimum.z));
            // Restoring component points in -x.
            holding = holding.max(-f.x);
        }

        Self {
            minimum,
            e_squared_at_minimum,
            lateral_stiffness,
            holding_force: Newtons::new(holding.max(0.0)),
        }
    }
}

/// Coarse-to-fine search for the local minimum of `|E|²` around `seed`.
fn find_local_minimum<F: FieldModel + ?Sized>(
    field: &F,
    seed: Vec3,
    lateral_extent: f64,
    vertical_range: (f64, f64),
) -> Vec3 {
    let mut best = seed;
    let mut best_val = field.e_squared(seed);
    let mut lateral = lateral_extent;
    let mut z_lo = vertical_range.0;
    let mut z_hi = vertical_range.1;

    for _ in 0..4 {
        let n = 6;
        for iz in 0..=n {
            let z = z_lo + (z_hi - z_lo) * iz as f64 / n as f64;
            for iy in -n / 2..=n / 2 {
                for ix in -n / 2..=n / 2 {
                    let p = Vec3::new(
                        best.x + lateral * ix as f64 / n as f64,
                        best.y + lateral * iy as f64 / n as f64,
                        z,
                    );
                    let v = field.e_squared(p);
                    if v < best_val {
                        best_val = v;
                        best = p;
                    }
                }
            }
        }
        // Narrow the search around the current best.
        lateral *= 0.4;
        let z_span = (z_hi - z_lo) * 0.4;
        z_lo = (best.z - z_span / 2.0).max(vertical_range.0);
        z_hi = (best.z + z_span / 2.0).min(vertical_range.1);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::superposition::SuperpositionField;
    use crate::field::{ElectrodePhase, ElectrodePlane};
    use labchip_units::{GridCoord, GridDims, Meters, Volts};

    fn cage_setup(amplitude: f64) -> (SuperpositionField, Vec3) {
        let mut plane = ElectrodePlane::new(
            GridDims::square(9),
            Meters::from_micrometers(20.0),
            Volts::new(amplitude),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
        let c = plane.electrode_center(GridCoord::new(4, 4));
        (SuperpositionField::new(plane), c)
    }

    fn cell_model(amplitude: f64) -> (SuperpositionField, Vec3, DepForceModel) {
        let (field, c) = cage_setup(amplitude);
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        // 10 kHz: strongly negative DEP for a viable cell in this buffer.
        let dep = DepForceModel::new(&cell, &medium, Hertz::from_kilohertz(10.0));
        (field, c, dep)
    }

    #[test]
    fn negative_dep_cell_is_pulled_towards_cage_center() {
        let (field, c, dep) = cell_model(3.3);
        assert!(dep.is_negative_dep());
        let pitch = 20e-6;
        // Displaced to +x of the cage centre at cage height: force should
        // point back in -x.
        let p = Vec3::new(c.x + 0.4 * pitch, c.y, 1.5 * pitch);
        let f = dep.force(&field, p);
        assert!(f.x < 0.0, "expected restoring force, got {:?}", f);
    }

    #[test]
    fn dep_force_is_piconewton_scale() {
        // Single-cell DEP forces on this kind of chip are tens of fN to tens
        // of pN; anything wildly outside that range indicates a unit bug.
        let (field, c, dep) = cell_model(3.3);
        let p = Vec3::new(c.x + 10e-6, c.y, 30e-6);
        let f = dep.force_magnitude(&field, p);
        assert!(
            f.as_piconewtons() > 1e-3 && f.as_piconewtons() < 1e4,
            "force = {} pN",
            f.as_piconewtons()
        );
    }

    #[test]
    fn force_scales_with_voltage_squared() {
        let (field_hi, c, dep) = cell_model(5.0);
        let (field_lo, _, _) = cell_model(1.2);
        let p = Vec3::new(c.x + 10e-6, c.y, 30e-6);
        let f_hi = dep.force_magnitude(&field_hi, p).get();
        let f_lo = dep.force_magnitude(&field_lo, p).get();
        let expected = (5.0f64 / 1.2).powi(2);
        assert!(
            ((f_hi / f_lo) / expected - 1.0).abs() < 1e-6,
            "ratio {} vs expected {expected}",
            f_hi / f_lo
        );
    }

    #[test]
    fn force_scales_with_radius_cubed() {
        let medium = Medium::physiological_low_conductivity();
        let small = Particle::viable_cell(Meters::from_micrometers(5.0));
        let large = Particle::viable_cell(Meters::from_micrometers(10.0));
        let f = Hertz::from_kilohertz(10.0);
        let dep_small = DepForceModel::new(&small, &medium, f);
        let dep_large = DepForceModel::new(&large, &medium, f);
        let ratio = dep_large.prefactor() / dep_small.prefactor();
        assert!((ratio - 8.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    fn potential_energy_minimum_at_cage() {
        let (field, c, dep) = cell_model(3.3);
        let pitch = 20e-6;
        let z = 1.5 * pitch;
        let u_center = dep.potential_energy(&field, Vec3::new(c.x, c.y, z));
        let u_away = dep.potential_energy(&field, Vec3::new(c.x + 1.5 * pitch, c.y, z));
        assert!(u_center < u_away);
    }

    #[test]
    fn trap_analysis_finds_cage_above_electrode() {
        let (field, c, dep) = cell_model(3.3);
        let pitch = 20e-6;
        let analysis = TrapAnalysis::analyze(
            &field,
            &dep,
            Vec3::new(c.x, c.y, 1.5 * pitch),
            pitch,
            (0.3 * pitch, 80e-6 - 0.3 * pitch),
        );
        // The minimum must stay laterally near the counter-phase electrode.
        assert!((analysis.minimum.x - c.x).abs() < pitch);
        assert!((analysis.minimum.y - c.y).abs() < pitch);
        // It must be a real trap: positive stiffness and holding force.
        assert!(analysis.lateral_stiffness > 0.0);
        assert!(analysis.holding_force.get() > 0.0);
        assert!(analysis.e_squared_at_minimum >= 0.0);
    }

    #[test]
    fn positive_dep_particle_is_not_negative_dep() {
        // A viable cell at 5 MHz in low-conductivity buffer is pDEP.
        let medium = Medium::physiological_low_conductivity();
        let cell = Particle::viable_cell(Meters::from_micrometers(10.0));
        let dep = DepForceModel::new(&cell, &medium, Hertz::from_megahertz(5.0));
        assert!(!dep.is_negative_dep());
    }
}
