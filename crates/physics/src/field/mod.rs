//! Quasi-static electric-field models above the electrode array.
//!
//! The chip drives every electrode with a sinusoidal voltage that is either
//! **in phase** or in **counter-phase** with respect to the conductive lid
//! (and may leave electrodes floating). Because all phases are 0 or π, the
//! spatial part of the potential is a real field `Φ(r)` obtained by solving
//! Laplace's equation with signed boundary amplitudes, and the time-averaged
//! squared field is `|E_rms|² = |∇Φ|²` when `Φ` is built from RMS amplitudes.
//!
//! Two interchangeable models implement [`FieldModel`]:
//!
//! * [`superposition::SuperpositionField`] — a fast, closed-form
//!   approximation based on patch (Poisson-kernel) superposition, suitable
//!   for whole-array simulations with thousands of cages;
//! * [`laplace::LaplaceSolver`] — a finite-difference Laplace solution on a
//!   3-D grid, used as the accuracy reference for small regions.

pub mod cache;
pub mod laplace;
pub mod superposition;

use labchip_units::{GridCoord, GridDims, Meters, Vec3, Volts};
use serde::{Deserialize, Serialize};

/// Drive phase of one electrode relative to the lid counter-electrode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ElectrodePhase {
    /// Driven with the same phase as the reference sinusoid (+V).
    #[default]
    InPhase,
    /// Driven in counter-phase (−V). In the paper's architecture a cage forms
    /// above a counter-phase electrode surrounded by in-phase neighbours.
    CounterPhase,
    /// Left floating / high impedance (contributes no drive; modelled as 0 V).
    Floating,
}

impl ElectrodePhase {
    /// Signed multiplier applied to the drive amplitude.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            ElectrodePhase::InPhase => 1.0,
            ElectrodePhase::CounterPhase => -1.0,
            ElectrodePhase::Floating => 0.0,
        }
    }

    /// Logical inverse (floating stays floating).
    #[inline]
    pub fn inverted(self) -> Self {
        match self {
            ElectrodePhase::InPhase => ElectrodePhase::CounterPhase,
            ElectrodePhase::CounterPhase => ElectrodePhase::InPhase,
            ElectrodePhase::Floating => ElectrodePhase::Floating,
        }
    }
}

/// Boundary-condition description of the programmed electrode plane plus the
/// lid: everything a field model needs to know about the chip state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectrodePlane {
    dims: GridDims,
    pitch: Meters,
    amplitude: Volts,
    lid_voltage: Volts,
    chamber_height: Meters,
    phases: Vec<ElectrodePhase>,
}

impl ElectrodePlane {
    /// Creates a plane with every electrode in phase (no cages programmed).
    ///
    /// # Panics
    ///
    /// Panics if `pitch`, `amplitude` scale or `chamber_height` are not
    /// strictly positive, or if the grid is empty.
    pub fn new(dims: GridDims, pitch: Meters, amplitude: Volts, chamber_height: Meters) -> Self {
        assert!(dims.count() > 0, "electrode grid must be non-empty");
        assert!(pitch.get() > 0.0, "pitch must be positive");
        assert!(
            chamber_height.get() > 0.0,
            "chamber height must be positive"
        );
        Self {
            dims,
            pitch,
            amplitude,
            lid_voltage: -amplitude,
            chamber_height,
            phases: vec![ElectrodePhase::InPhase; dims.count() as usize],
        }
    }

    /// Grid dimensions of the electrode array.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Electrode pitch.
    #[inline]
    pub fn pitch(&self) -> Meters {
        self.pitch
    }

    /// RMS drive amplitude.
    #[inline]
    pub fn amplitude(&self) -> Volts {
        self.amplitude
    }

    /// Lid (counter-electrode) RMS voltage. Defaults to `-amplitude`, i.e.
    /// the lid is driven in counter-phase as in the paper's chip.
    #[inline]
    pub fn lid_voltage(&self) -> Volts {
        self.lid_voltage
    }

    /// Sets the lid voltage.
    pub fn set_lid_voltage(&mut self, v: Volts) {
        self.lid_voltage = v;
    }

    /// Height of the liquid chamber between electrode plane and lid.
    #[inline]
    pub fn chamber_height(&self) -> Meters {
        self.chamber_height
    }

    /// Phase programmed on one electrode.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the array.
    #[inline]
    pub fn phase(&self, at: GridCoord) -> ElectrodePhase {
        self.phases[self.dims.index_of(at)]
    }

    /// Programs the phase of one electrode.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the array.
    pub fn set_phase(&mut self, at: GridCoord, phase: ElectrodePhase) {
        let idx = self.dims.index_of(at);
        self.phases[idx] = phase;
    }

    /// Programs every electrode to the same phase.
    pub fn fill(&mut self, phase: ElectrodePhase) {
        self.phases.fill(phase);
    }

    /// Signed RMS voltage of one electrode (amplitude × phase sign).
    #[inline]
    pub fn signed_voltage(&self, at: GridCoord) -> Volts {
        self.amplitude * self.phase(at).sign()
    }

    /// Row-major phase buffer — the raw storage behind [`ElectrodePlane::phase`].
    /// Field models use this to precompute flat voltage buffers without
    /// per-cell coordinate checks.
    #[inline]
    pub fn phases_raw(&self) -> &[ElectrodePhase] {
        &self.phases
    }

    /// Physical centre of an electrode in chip-plane coordinates (z = 0).
    #[inline]
    pub fn electrode_center(&self, at: GridCoord) -> Vec3 {
        at.to_position(self.pitch.get()).with_z(0.0)
    }

    /// Electrode grid cell containing a chip-plane position, if inside the
    /// array.
    pub fn electrode_at(&self, x: f64, y: f64) -> Option<GridCoord> {
        if x < 0.0 || y < 0.0 {
            return None;
        }
        let cx = (x / self.pitch.get()).floor() as u64;
        let cy = (y / self.pitch.get()).floor() as u64;
        if cx >= self.dims.cols as u64 || cy >= self.dims.rows as u64 {
            None
        } else {
            Some(GridCoord::new(cx as u32, cy as u32))
        }
    }

    /// Number of counter-phase electrodes (a proxy for the number of
    /// programmed cages when using single-electrode cages).
    pub fn counter_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| **p == ElectrodePhase::CounterPhase)
            .count()
    }

    /// Iterates over all `(coordinate, phase)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GridCoord, ElectrodePhase)> + '_ {
        self.dims.iter().map(move |c| (c, self.phase(c)))
    }

    /// Total chip-plane extent in x (metres).
    #[inline]
    pub fn width(&self) -> f64 {
        self.dims.cols as f64 * self.pitch.get()
    }

    /// Total chip-plane extent in y (metres).
    #[inline]
    pub fn height(&self) -> f64 {
        self.dims.rows as f64 * self.pitch.get()
    }
}

/// A model of the spatial electric field produced by an [`ElectrodePlane`].
///
/// The `*_fd` methods are the finite-difference evaluation path and always
/// derive from [`FieldModel::potential`] (respectively
/// [`FieldModel::e_squared`]); the plain methods default to them but may be
/// overridden with closed-form implementations — the fast
/// [`superposition::SuperpositionField`] overrides them with analytic
/// gradients, while the grid-based [`laplace::LaplaceSolver`] keeps the
/// defaults. Tests use the `*_fd` path as the accuracy oracle for analytic
/// overrides.
pub trait FieldModel {
    /// Spatial (RMS) potential `Φ` at a point, in volts.
    fn potential(&self, p: Vec3) -> f64;

    /// Step used for numerical differentiation, in metres.
    fn differentiation_step(&self) -> f64;

    /// Electric field `E = −∇Φ` at a point, by central differences over
    /// [`FieldModel::potential`].
    fn field_fd(&self, p: Vec3) -> Vec3 {
        let h = self.differentiation_step();
        let dx = (self.potential(Vec3::new(p.x + h, p.y, p.z))
            - self.potential(Vec3::new(p.x - h, p.y, p.z)))
            / (2.0 * h);
        let dy = (self.potential(Vec3::new(p.x, p.y + h, p.z))
            - self.potential(Vec3::new(p.x, p.y - h, p.z)))
            / (2.0 * h);
        let dz = (self.potential(Vec3::new(p.x, p.y, p.z + h))
            - self.potential(Vec3::new(p.x, p.y, p.z - h)))
            / (2.0 * h);
        Vec3::new(-dx, -dy, -dz)
    }

    /// Squared RMS field magnitude from the finite-difference field.
    fn e_squared_fd(&self, p: Vec3) -> f64 {
        self.field_fd(p).norm_squared()
    }

    /// Gradient of `|E_rms|²` by the pure finite-difference chain: central
    /// differences over [`FieldModel::e_squared_fd`], which itself central-
    /// differences the potential — 36 potential evaluations per query. This
    /// is the seed implementation's exact evaluation path, kept as the
    /// accuracy oracle and benchmark baseline for analytic overrides.
    fn grad_e_squared_fd(&self, p: Vec3) -> Vec3 {
        let h = self.differentiation_step();
        let gx = (self.e_squared_fd(Vec3::new(p.x + h, p.y, p.z))
            - self.e_squared_fd(Vec3::new(p.x - h, p.y, p.z)))
            / (2.0 * h);
        let gy = (self.e_squared_fd(Vec3::new(p.x, p.y + h, p.z))
            - self.e_squared_fd(Vec3::new(p.x, p.y - h, p.z)))
            / (2.0 * h);
        let gz = (self.e_squared_fd(Vec3::new(p.x, p.y, p.z + h))
            - self.e_squared_fd(Vec3::new(p.x, p.y, p.z - h)))
            / (2.0 * h);
        Vec3::new(gx, gy, gz)
    }

    /// Electric field `E = −∇Φ` at a point.
    fn field(&self, p: Vec3) -> Vec3 {
        self.field_fd(p)
    }

    /// Squared RMS field magnitude `|E_rms|²` at a point, in (V/m)².
    fn e_squared(&self, p: Vec3) -> f64 {
        self.field(p).norm_squared()
    }

    /// Gradient of `|E_rms|²` at a point.
    fn grad_e_squared(&self, p: Vec3) -> Vec3 {
        self.grad_e_squared_fd(p)
    }

    /// Batched [`FieldModel::e_squared`]: fills `out` with one value per
    /// probe point (cleared first). The default is a plain loop, so every
    /// model conforms; implementations with cheaper batch paths (sampled
    /// caches, SIMD sweeps) may override.
    fn e_squared_many(&self, points: &[Vec3], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|&p| self.e_squared(p)));
    }

    /// Batched [`FieldModel::grad_e_squared`]; same contract as
    /// [`FieldModel::e_squared_many`].
    fn grad_e_squared_many(&self, points: &[Vec3], out: &mut Vec<Vec3>) {
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|&p| self.grad_e_squared(p)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> ElectrodePlane {
        ElectrodePlane::new(
            GridDims::square(8),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        )
    }

    #[test]
    fn phase_signs() {
        assert_eq!(ElectrodePhase::InPhase.sign(), 1.0);
        assert_eq!(ElectrodePhase::CounterPhase.sign(), -1.0);
        assert_eq!(ElectrodePhase::Floating.sign(), 0.0);
        assert_eq!(
            ElectrodePhase::InPhase.inverted(),
            ElectrodePhase::CounterPhase
        );
        assert_eq!(
            ElectrodePhase::Floating.inverted(),
            ElectrodePhase::Floating
        );
    }

    #[test]
    fn plane_programs_phases() {
        let mut p = plane();
        assert_eq!(p.counter_phase_count(), 0);
        p.set_phase(GridCoord::new(3, 3), ElectrodePhase::CounterPhase);
        assert_eq!(p.phase(GridCoord::new(3, 3)), ElectrodePhase::CounterPhase);
        assert_eq!(p.counter_phase_count(), 1);
        assert_eq!(p.signed_voltage(GridCoord::new(3, 3)), Volts::new(-3.3));
        p.fill(ElectrodePhase::Floating);
        assert_eq!(p.counter_phase_count(), 0);
        assert_eq!(p.signed_voltage(GridCoord::new(0, 0)), Volts::new(0.0));
    }

    #[test]
    fn electrode_lookup_round_trips() {
        let p = plane();
        let c = GridCoord::new(5, 2);
        let pos = p.electrode_center(c);
        assert_eq!(p.electrode_at(pos.x, pos.y), Some(c));
        assert_eq!(p.electrode_at(-1e-6, 0.0), None);
        assert_eq!(p.electrode_at(1.0, 1.0), None);
    }

    #[test]
    fn lid_defaults_to_counter_phase_of_drive() {
        let p = plane();
        assert_eq!(p.lid_voltage(), Volts::new(-3.3));
        let mut p2 = plane();
        p2.set_lid_voltage(Volts::new(0.0));
        assert_eq!(p2.lid_voltage(), Volts::new(0.0));
    }

    #[test]
    fn geometric_extent() {
        let p = plane();
        assert!((p.width() - 160e-6).abs() < 1e-12);
        assert!((p.height() - 160e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pitch")]
    fn zero_pitch_rejected() {
        let _ = ElectrodePlane::new(
            GridDims::square(4),
            Meters::new(0.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
    }
}
