//! Fast closed-form field approximation by patch superposition, with
//! **analytic gradients**.
//!
//! # Model
//!
//! Each electrode is treated as a square patch on the z = 0 plane held at its
//! programmed signed RMS voltage. The potential at a point inside the chamber
//! is approximated in two steps:
//!
//! 1. the **bottom-plane trace** at height `z` is the normalised half-space
//!    Poisson-kernel average of the nearby patches,
//!    `φ_b(x,y,z) = N/W = Σ_i w_i·V_i / Σ_i w_i` with
//!    `w_i = A_e · z / (2π (ρ_i² + z²)^{3/2})`, which reproduces the lateral
//!    smoothing of the electrode pattern with height;
//! 2. the chamber potential blends linearly towards the lid voltage,
//!    `Φ(p) = (1 − z/h)·φ_b(p) + (z/h)·V_lid`, which is exact for a uniform
//!    electrode pattern (parallel-plate field `2V/h` when the lid is driven in
//!    counter-phase) and keeps the potential bounded by the boundary voltages.
//!
//! The model reproduces the qualitative cage structure — a local minimum of
//! `|E|²` forms above a counter-phase electrode surrounded by in-phase
//! neighbours — and the exact `V²` scaling of `|E|²`. Absolute accuracy is
//! traded for speed; the finite-difference
//! [`LaplaceSolver`](super::laplace::LaplaceSolver) serves as the reference.
//!
//! Patches farther than `cutoff_cells` pitches from the query point are
//! ignored — the kernel decays as `ρ⁻³`, so the truncation error is small and
//! evaluation cost is independent of the array size. This is what makes
//! whole-array (>100,000 electrode) simulations tractable.
//!
//! # Analytic-gradient derivation
//!
//! The DEP force needs `∇|E|²`, i.e. third spatial derivatives of the
//! potential when done by nested finite differences — the seed implementation
//! evaluated the 169-cell kernel sum 36 times per force query. Because every
//! weight `w_i` is a closed-form function of the probe point, all derivatives
//! can instead be accumulated in **one pass** over the cells. With
//! `d = (dx, dy)` the offset from patch centre `i`, `s = dx² + dy² + z²`,
//! and `C = A_e/(2π)`:
//!
//! ```text
//! w    =  C z s^{-3/2}
//! ∂w/∂x = −3 C z dx s^{-5/2}            (same for y)
//! ∂w/∂z =  C (s − 3z²) s^{-5/2}
//! ∂²w/∂x²  = −3 C z (s − 5dx²) s^{-7/2}  (same for y)
//! ∂²w/∂x∂y = 15 C z dx dy s^{-7/2}
//! ∂²w/∂x∂z = −3 C dx (s − 5z²) s^{-7/2}  (same for y,z)
//! ∂²w/∂z²  =  3 C z (5z² − 3s) s^{-7/2}
//! ```
//!
//! (the trace `w_xx + w_yy + w_zz` vanishes: each patch kernel is harmonic
//! above the plane, a useful internal consistency check). The half-integer
//! powers are computed as `s·√s`, `s²·√s`, `s³·√s` — no `powf` in the hot
//! path — and the signed patch voltages are **cached in a flat buffer** at
//! construction, so the inner loop is pure float arithmetic with no enum
//! dispatch.
//!
//! Sums `W, N` and their first/second derivatives then give the quotient
//! `g = φ_b = N/W` via
//!
//! ```text
//! g_a  = (N_a − g W_a) / W
//! g_ab = (N_ab − g_a W_b − g_b W_a − g W_ab) / W
//! ```
//!
//! and the lid blend `Φ = (1 − z/h) g + (z/h) V_lid` contributes
//!
//! ```text
//! Φ_x = (1−t) g_x                Φ_xx = (1−t) g_xx        Φ_xy = (1−t) g_xy
//! Φ_z = (1−t) g_z + (V_lid−g)/h  Φ_xz = (1−t) g_xz − g_x/h
//!                                Φ_zz = (1−t) g_zz − 2 g_z/h
//! ```
//!
//! finally `|E|² = |∇Φ|²` and `∇|E|² = 2 H(Φ) ∇Φ` with `H` the Hessian.
//! The finite-difference path is kept as [`FieldModel::e_squared_fd`] /
//! [`FieldModel::grad_e_squared_fd`] and is the accuracy oracle in the
//! parity tests (`tests/analytic_parity.rs`).
//!
//! # When to use [`FieldCache`](super::cache::FieldCache) instead
//!
//! Direct evaluation costs one kernel sweep (`(2·cutoff+1)²` cells) per
//! query and is exact w.r.t. the model — use it for few particles, for
//! accuracy-sensitive probes (trap analysis, levitation solving), or when
//! the pattern changes every few steps. For whole-array runs with thousands
//! of particles stepping many times between reprograms, sample the field
//! once into a `FieldCache` lattice and pay one trilinear lookup per query;
//! after a reprogram, `mark_dirty` + `refresh` rebuilds only the nodes whose
//! values can have changed.

use super::{ElectrodePlane, FieldModel};
use labchip_units::{GridCoord, Vec3};
use std::ops::{Deref, DerefMut};

/// Superposition-of-patches field model over an [`ElectrodePlane`].
#[derive(Debug, Clone)]
pub struct SuperpositionField {
    plane: ElectrodePlane,
    cutoff_cells: u32,
    /// Cached signed electrode voltages (amplitude × phase sign), row-major —
    /// rebuilt by [`SuperpositionField::refresh_voltages`] and whenever a
    /// [`PlaneGuard`] from [`SuperpositionField::plane_mut`] is dropped.
    voltages: Vec<f64>,
}

/// Index layout of the derivative accumulators in [`Sums`]:
/// value, x, y, z, xx, xy, xz, yy, yz, zz.
const VAL: usize = 0;
const DX: usize = 1;
const DY: usize = 2;
const DZ: usize = 3;
const DXX: usize = 4;
const DXY: usize = 5;
const DXZ: usize = 6;
const DYY: usize = 7;
const DYZ: usize = 8;
const DZZ: usize = 9;

/// Kernel sums `W` (geometry weights) and `N` (voltage-weighted) together
/// with their spatial derivatives up to the requested order.
#[derive(Debug, Default, Clone, Copy)]
struct Sums {
    w: [f64; 10],
    n: [f64; 10],
}

impl SuperpositionField {
    /// Default truncation radius, in electrode pitches.
    pub const DEFAULT_CUTOFF_CELLS: u32 = 6;

    /// Creates a field model over the given programmed plane with the default
    /// truncation radius.
    pub fn new(plane: ElectrodePlane) -> Self {
        Self::with_cutoff(plane, Self::DEFAULT_CUTOFF_CELLS)
    }

    /// Creates a field model with an explicit truncation radius (in pitches).
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_cells` is zero.
    pub fn with_cutoff(plane: ElectrodePlane, cutoff_cells: u32) -> Self {
        assert!(cutoff_cells > 0, "cutoff must be at least one cell");
        let mut field = Self {
            plane,
            cutoff_cells,
            voltages: Vec::new(),
        };
        field.refresh_voltages();
        field
    }

    /// The programmed electrode plane this model reads from.
    pub fn plane(&self) -> &ElectrodePlane {
        &self.plane
    }

    /// Mutable access to the plane, e.g. to reprogram phases between steps.
    /// The returned guard rebuilds the cached voltage buffer when dropped,
    /// so the field model always reflects the programmed state.
    pub fn plane_mut(&mut self) -> PlaneGuard<'_> {
        PlaneGuard { field: self }
    }

    /// Rebuilds the cached signed-voltage buffer from the plane. Called
    /// automatically by [`SuperpositionField::plane_mut`]'s guard; exposed
    /// for callers that mutate the plane through other means.
    pub fn refresh_voltages(&mut self) {
        let dims = self.plane.dims();
        let amplitude = self.plane.amplitude().get();
        self.voltages.clear();
        self.voltages.reserve(dims.count() as usize);
        self.voltages.extend(
            self.plane
                .phases_raw()
                .iter()
                .map(|phase| amplitude * phase.sign()),
        );
    }

    /// Truncation radius in cells.
    pub fn cutoff_cells(&self) -> u32 {
        self.cutoff_cells
    }

    /// Inclusive cell-index window `(x0, x1, y0, y1)` that contributes to a
    /// probe at `(x, y)`; empty (`x0 > x1`) when the probe is more than the
    /// cutoff outside the array.
    #[inline]
    fn window(&self, x: f64, y: f64) -> (usize, usize, usize, usize) {
        let pitch = self.plane.pitch().get();
        let dims = self.plane.dims();
        let cutoff = self.cutoff_cells as i64;
        let cx = (x / pitch).floor() as i64;
        let cy = (y / pitch).floor() as i64;
        let x0 = (cx - cutoff).max(0) as usize;
        let x1 = ((cx + cutoff).max(0) as u64).min(dims.cols as u64 - 1) as usize;
        let y0 = (cy - cutoff).max(0) as usize;
        let y1 = ((cy + cutoff).max(0) as u64).min(dims.rows as u64 - 1) as usize;
        (x0, x1, y0, y1)
    }

    /// One pass over the contributing cells, accumulating the kernel sums and
    /// their derivatives up to `ORDER` (0 = values, 1 = +gradient,
    /// 2 = +Hessian). Monomorphised per order, so lower-order paths carry no
    /// dead arithmetic.
    fn kernel_sums<const ORDER: usize>(&self, p: Vec3) -> Sums {
        let pitch = self.plane.pitch().get();
        let cols = self.plane.dims().cols as usize;
        let h = self.plane.chamber_height().get();
        // Clamp as the seed model did: probes outside the chamber see the
        // boundary value; the 1e-9 floor avoids the kernel singularity on the
        // electrode plane itself.
        let z = p.z.clamp(0.0, h).max(1e-9);
        let c = pitch * pitch / (2.0 * std::f64::consts::PI);
        let z_sq = z * z;

        let (x0, x1, y0, y1) = self.window(p.x, p.y);
        let mut sums = Sums::default();
        if x0 > x1 || y0 > y1 {
            return sums;
        }
        for yi in y0..=y1 {
            let dy = p.y - (yi as f64 + 0.5) * pitch;
            let row = yi * cols;
            for xi in x0..=x1 {
                let dx = p.x - (xi as f64 + 0.5) * pitch;
                let v = self.voltages[row + xi];
                let s = dx * dx + dy * dy + z_sq;
                // s^{3/2} etc. via multiply + sqrt — no powf in the hot path.
                let k3 = 1.0 / (s * s.sqrt());
                let w = c * z * k3;
                sums.w[VAL] += w;
                sums.n[VAL] += w * v;
                if ORDER >= 1 {
                    let k5 = k3 / s;
                    let wx = -3.0 * c * z * dx * k5;
                    let wy = -3.0 * c * z * dy * k5;
                    let wz = c * (s - 3.0 * z_sq) * k5;
                    sums.w[DX] += wx;
                    sums.w[DY] += wy;
                    sums.w[DZ] += wz;
                    sums.n[DX] += wx * v;
                    sums.n[DY] += wy * v;
                    sums.n[DZ] += wz * v;
                    if ORDER >= 2 {
                        let k7 = k5 / s;
                        let wxx = -3.0 * c * z * (s - 5.0 * dx * dx) * k7;
                        let wyy = -3.0 * c * z * (s - 5.0 * dy * dy) * k7;
                        let wxy = 15.0 * c * z * dx * dy * k7;
                        let wxz = -3.0 * c * dx * (s - 5.0 * z_sq) * k7;
                        let wyz = -3.0 * c * dy * (s - 5.0 * z_sq) * k7;
                        let wzz = 3.0 * c * z * (5.0 * z_sq - 3.0 * s) * k7;
                        sums.w[DXX] += wxx;
                        sums.w[DXY] += wxy;
                        sums.w[DXZ] += wxz;
                        sums.w[DYY] += wyy;
                        sums.w[DYZ] += wyz;
                        sums.w[DZZ] += wzz;
                        sums.n[DXX] += wxx * v;
                        sums.n[DXY] += wxy * v;
                        sums.n[DXZ] += wxz * v;
                        sums.n[DYY] += wyy * v;
                        sums.n[DYZ] += wyz * v;
                        sums.n[DZZ] += wzz * v;
                    }
                }
            }
        }
        sums
    }

    /// Bottom-trace value and first derivatives `(g, gx, gy, gz)` from sums.
    #[inline]
    fn trace_gradient(sums: &Sums) -> (f64, f64, f64, f64) {
        let w = sums.w[VAL];
        if w == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let g = sums.n[VAL] / w;
        let gx = (sums.n[DX] - g * sums.w[DX]) / w;
        let gy = (sums.n[DY] - g * sums.w[DY]) / w;
        let gz = (sums.n[DZ] - g * sums.w[DZ]) / w;
        (g, gx, gy, gz)
    }

    /// Fused single-pass evaluation of the potential and its spatial
    /// gradient `∇Φ` (both exact for the model, no finite differences).
    pub fn potential_and_gradient(&self, p: Vec3) -> (f64, Vec3) {
        let h = self.plane.chamber_height().get();
        let z = p.z.clamp(0.0, h);
        let t = z / h;
        let lid_v = self.plane.lid_voltage().get();
        let sums = self.kernel_sums::<1>(p);
        let (g, gx, gy, gz) = Self::trace_gradient(&sums);
        let phi = (1.0 - t) * g + t * lid_v;
        let grad = Vec3::new(
            (1.0 - t) * gx,
            (1.0 - t) * gy,
            (1.0 - t) * gz + (lid_v - g) / h,
        );
        (phi, grad)
    }

    /// Fused single-pass evaluation of `|E|²` and `∇|E|²` from the analytic
    /// gradient and Hessian of the potential.
    pub fn e_squared_with_gradient(&self, p: Vec3) -> (f64, Vec3) {
        let h = self.plane.chamber_height().get();
        let z = p.z.clamp(0.0, h);
        let t = z / h;
        let one_t = 1.0 - t;
        let lid_v = self.plane.lid_voltage().get();

        let sums = self.kernel_sums::<2>(p);
        let (g, gx, gy, gz) = Self::trace_gradient(&sums);
        let w = sums.w[VAL];
        let (gxx, gxy, gxz, gyy, gyz, gzz) = if w == 0.0 {
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            (
                (sums.n[DXX] - 2.0 * gx * sums.w[DX] - g * sums.w[DXX]) / w,
                (sums.n[DXY] - gx * sums.w[DY] - gy * sums.w[DX] - g * sums.w[DXY]) / w,
                (sums.n[DXZ] - gx * sums.w[DZ] - gz * sums.w[DX] - g * sums.w[DXZ]) / w,
                (sums.n[DYY] - 2.0 * gy * sums.w[DY] - g * sums.w[DYY]) / w,
                (sums.n[DYZ] - gy * sums.w[DZ] - gz * sums.w[DY] - g * sums.w[DYZ]) / w,
                (sums.n[DZZ] - 2.0 * gz * sums.w[DZ] - g * sums.w[DZZ]) / w,
            )
        };

        // Gradient of Φ = (1−t) g + t V_lid.
        let px = one_t * gx;
        let py = one_t * gy;
        let pz = one_t * gz + (lid_v - g) / h;
        // Hessian of Φ.
        let pxx = one_t * gxx;
        let pxy = one_t * gxy;
        let pyy = one_t * gyy;
        let pxz = one_t * gxz - gx / h;
        let pyz = one_t * gyz - gy / h;
        let pzz = one_t * gzz - 2.0 * gz / h;

        let e2 = px * px + py * py + pz * pz;
        // ∇|∇Φ|² = 2 H ∇Φ.
        let grad = Vec3::new(
            2.0 * (px * pxx + py * pxy + pz * pxz),
            2.0 * (px * pxy + py * pyy + pz * pyz),
            2.0 * (px * pxz + py * pyz + pz * pzz),
        );
        (e2, grad)
    }

    /// Legacy per-coordinate iterator over contributing cells; kept for
    /// diagnostics and tests.
    pub fn local_cells(&self, p: Vec3) -> impl Iterator<Item = GridCoord> + '_ {
        let (x0, x1, y0, y1) = self.window(p.x, p.y);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| GridCoord::new(x as u32, y as u32)))
    }
}

/// RAII guard for in-place plane edits: rebuilds the cached signed-voltage
/// buffer when dropped.
#[derive(Debug)]
pub struct PlaneGuard<'a> {
    field: &'a mut SuperpositionField,
}

impl Deref for PlaneGuard<'_> {
    type Target = ElectrodePlane;

    fn deref(&self) -> &ElectrodePlane {
        &self.field.plane
    }
}

impl DerefMut for PlaneGuard<'_> {
    fn deref_mut(&mut self) -> &mut ElectrodePlane {
        &mut self.field.plane
    }
}

impl Drop for PlaneGuard<'_> {
    fn drop(&mut self) {
        self.field.refresh_voltages();
    }
}

impl FieldModel for SuperpositionField {
    fn potential(&self, p: Vec3) -> f64 {
        let h = self.plane.chamber_height().get();
        let z = p.z.clamp(0.0, h);
        let t = z / h;
        let lid_v = self.plane.lid_voltage().get();
        let sums = self.kernel_sums::<0>(p);
        let phi_bottom = if sums.w[VAL] == 0.0 {
            0.0
        } else {
            sums.n[VAL] / sums.w[VAL]
        };
        (1.0 - t) * phi_bottom + t * lid_v
    }

    fn differentiation_step(&self) -> f64 {
        self.plane.pitch().get() * 0.05
    }

    fn field(&self, p: Vec3) -> Vec3 {
        let (_, grad) = self.potential_and_gradient(p);
        -grad
    }

    fn e_squared(&self, p: Vec3) -> f64 {
        let (_, grad) = self.potential_and_gradient(p);
        grad.norm_squared()
    }

    fn grad_e_squared(&self, p: Vec3) -> Vec3 {
        self.e_squared_with_gradient(p).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::ElectrodePhase;
    use labchip_units::{GridDims, Meters, Volts};

    fn cage_plane(n: u32) -> ElectrodePlane {
        let mut plane = ElectrodePlane::new(
            GridDims::square(n),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        // Single cage at the array centre.
        let c = GridCoord::new(n / 2, n / 2);
        plane.set_phase(c, ElectrodePhase::CounterPhase);
        plane
    }

    fn cage_center_xy(plane: &ElectrodePlane) -> (f64, f64) {
        let n = plane.dims().cols;
        let c = GridCoord::new(n / 2, n / 2);
        let pos = plane.electrode_center(c);
        (pos.x, pos.y)
    }

    #[test]
    fn potential_is_bounded_by_boundary_voltages() {
        let plane = cage_plane(9);
        let model = SuperpositionField::new(plane);
        let v = model.plane().amplitude().get();
        for &z_frac in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            for &x_frac in &[0.2, 0.5, 0.8] {
                let p = Vec3::new(
                    x_frac * model.plane().width(),
                    0.5 * model.plane().height(),
                    z_frac * model.plane().chamber_height().get(),
                );
                let phi = model.potential(p);
                assert!(phi <= v + 1e-9 && phi >= -v - 1e-9, "phi = {phi}");
            }
        }
    }

    #[test]
    fn potential_near_electrode_approaches_its_voltage() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        // Just above the counter-phase electrode the potential should be
        // strongly negative (close to -V).
        let phi = model.potential(Vec3::new(cx, cy, 0.5e-6));
        assert!(phi < -0.8 * model.plane().amplitude().get(), "phi = {phi}");
        // Just above an in-phase electrode far from the cage it should be
        // strongly positive.
        let phi_in = model.potential(Vec3::new(
            cx + 3.0 * model.plane().pitch().get(),
            cy,
            0.5e-6,
        ));
        assert!(
            phi_in > 0.5 * model.plane().amplitude().get(),
            "phi = {phi_in}"
        );
    }

    #[test]
    fn cage_has_field_minimum_above_counter_phase_electrode() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        let pitch = model.plane().pitch().get();
        let z = 1.5 * pitch;
        let e_center = model.e_squared(Vec3::new(cx, cy, z));
        // |E|² above the cage centre must be lower than above the in-phase
        // neighbours at the same height: that is what makes it a trap for
        // negative-DEP particles.
        for &(dx, dy) in &[(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)] {
            let e_nb = model.e_squared(Vec3::new(cx + 1.5 * dx * pitch, cy + 1.5 * dy * pitch, z));
            assert!(
                e_center < e_nb,
                "cage centre |E|^2 {e_center:.3e} not below neighbour {e_nb:.3e}"
            );
        }
    }

    #[test]
    fn field_scales_linearly_with_voltage_so_e_squared_scales_quadratically() {
        // This is the paper's §2 argument: DEP force ∝ V², so halving the
        // supply voltage (newer technology node) costs 4× in force.
        let mut lo = cage_plane(9);
        lo.set_lid_voltage(Volts::new(-1.2));
        let hi = cage_plane(9);
        let lo = {
            let mut p =
                ElectrodePlane::new(lo.dims(), lo.pitch(), Volts::new(1.2), lo.chamber_height());
            p.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
            p
        };
        let (cx, cy) = cage_center_xy(&hi);
        let m_hi = SuperpositionField::new(hi);
        let m_lo = SuperpositionField::new(lo);
        let probe = Vec3::new(cx + 10e-6, cy, 30e-6);
        let ratio_v = 3.3f64 / 1.2;
        let ratio_e2 = m_hi.e_squared(probe) / m_lo.e_squared(probe);
        assert!(
            (ratio_e2 / (ratio_v * ratio_v) - 1.0).abs() < 1e-6,
            "expected quadratic scaling, got ratio {ratio_e2}"
        );
    }

    #[test]
    fn grad_e_squared_points_away_from_cage_center_laterally() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        let pitch = model.plane().pitch().get();
        // A little off-centre, |E|² increases away from the cage, so the
        // lateral gradient points outward; nDEP force (−K∇|E|²) then points
        // back in. Restoring behaviour is what we check here.
        let p = Vec3::new(cx + 0.3 * pitch, cy, 1.5 * pitch);
        let g = model.grad_e_squared(p);
        assert!(g.x > 0.0, "expected outward gradient, got {}", g.x);
    }

    #[test]
    fn uniform_plane_has_negligible_lateral_field() {
        // With every electrode in phase the lateral field should nearly
        // vanish by symmetry (away from the array edges).
        let plane = ElectrodePlane::new(
            GridDims::square(15),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        let model = SuperpositionField::new(plane);
        let p = Vec3::new(
            0.5 * model.plane().width(),
            0.5 * model.plane().height(),
            40e-6,
        );
        let e = model.field(p);
        assert!(e.x.abs() < 0.02 * e.z.abs() + 1.0);
        assert!(e.y.abs() < 0.02 * e.z.abs() + 1.0);
        // The vertical field should be roughly 2V / h.
        let expected = 2.0 * 3.3 / 80e-6;
        assert!(
            (e.z.abs() - expected).abs() / expected < 0.5,
            "Ez = {}",
            e.z
        );
    }

    #[test]
    fn cutoff_must_be_positive() {
        let plane = cage_plane(5);
        let result = std::panic::catch_unwind(|| SuperpositionField::with_cutoff(plane, 0));
        assert!(result.is_err());
    }

    #[test]
    fn evaluation_cost_is_independent_of_array_size() {
        // Not a timing test: just confirm large arrays are usable by
        // evaluating a point on a 200x200 (40,000 electrode) plane.
        let mut plane = ElectrodePlane::new(
            GridDims::square(200),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(GridCoord::new(100, 100), ElectrodePhase::CounterPhase);
        let model = SuperpositionField::new(plane);
        let c = model.plane().electrode_center(GridCoord::new(100, 100));
        let e2 = model.e_squared(Vec3::new(c.x, c.y, 30e-6));
        assert!(e2.is_finite() && e2 > 0.0);
    }

    #[test]
    fn plane_guard_rebuilds_voltage_cache() {
        let plane = cage_plane(9);
        let mut model = SuperpositionField::new(plane);
        let (cx, cy) = cage_center_xy(model.plane());
        let probe = Vec3::new(cx, cy, 0.5e-6);
        let before = model.potential(probe);
        assert!(before < 0.0, "cage electrode reads negative, got {before}");
        // Flip the cage electrode back in phase through the guard; the
        // cached buffer must pick the change up.
        model
            .plane_mut()
            .set_phase(GridCoord::new(4, 4), ElectrodePhase::InPhase);
        let after = model.potential(probe);
        assert!(
            after > 0.0,
            "reprogrammed electrode reads positive, got {after}"
        );
    }

    #[test]
    fn fused_potential_matches_scalar_potential() {
        let plane = cage_plane(9);
        let model = SuperpositionField::new(plane);
        let (cx, cy) = cage_center_xy(model.plane());
        for &(dx, dz) in &[(0.0, 15e-6), (7e-6, 30e-6), (-13e-6, 55e-6)] {
            let p = Vec3::new(cx + dx, cy + 3e-6, dz);
            let (phi, _) = model.potential_and_gradient(p);
            assert!((phi - model.potential(p)).abs() < 1e-12 * phi.abs().max(1.0));
        }
    }

    #[test]
    fn analytic_field_matches_finite_differences() {
        let plane = cage_plane(9);
        let model = SuperpositionField::new(plane);
        let (cx, cy) = cage_center_xy(model.plane());
        let p = Vec3::new(cx + 6e-6, cy - 4e-6, 28e-6);
        let analytic = model.field(p);
        let fd = model.field_fd(p);
        let scale = fd.norm().max(1.0);
        // The default FD step (pitch/20) carries ~1e-3 relative truncation
        // error; the strict 1e-6 parity check with Richardson extrapolation
        // lives in tests/analytic_parity.rs.
        assert!(
            (analytic - fd).norm() / scale < 1e-2,
            "analytic {analytic:?} vs fd {fd:?}"
        );
    }

    #[test]
    fn kernel_hessian_trace_vanishes() {
        // Each patch kernel is harmonic above the plane, so the Hessian
        // accumulators of W must be traceless.
        let plane = cage_plane(9);
        let model = SuperpositionField::new(plane);
        let (cx, cy) = cage_center_xy(model.plane());
        let sums = model.kernel_sums::<2>(Vec3::new(cx + 5e-6, cy - 2e-6, 33e-6));
        let trace = sums.w[DXX] + sums.w[DYY] + sums.w[DZZ];
        let scale = sums.w[DXX].abs() + sums.w[DYY].abs() + sums.w[DZZ].abs();
        assert!(
            trace.abs() <= 1e-10 * scale.max(1e-300),
            "trace = {trace:.3e}"
        );
    }
}
