//! Fast closed-form field approximation by patch superposition.
//!
//! Each electrode is treated as a square patch on the z = 0 plane held at its
//! programmed signed RMS voltage. The potential at a point inside the chamber
//! is approximated in two steps:
//!
//! 1. the **bottom-plane trace** at height `z` is the normalised half-space
//!    Poisson-kernel average of the nearby patches,
//!    `φ_b(x,y,z) = Σ_i w_i·V_i / Σ_i w_i` with
//!    `w_i = A_e · z / (2π (ρ_i² + z²)^{3/2})`, which reproduces the lateral
//!    smoothing of the electrode pattern with height;
//! 2. the chamber potential blends linearly towards the lid voltage,
//!    `Φ(p) = (1 − z/h)·φ_b(p) + (z/h)·V_lid`, which is exact for a uniform
//!    electrode pattern (parallel-plate field `2V/h` when the lid is driven in
//!    counter-phase) and keeps the potential bounded by the boundary voltages.
//!
//! The model reproduces the qualitative cage structure — a local minimum of
//! `|E|²` forms above a counter-phase electrode surrounded by in-phase
//! neighbours — and the exact `V²` scaling of `|E|²`. Absolute accuracy is
//! traded for speed; the finite-difference
//! [`LaplaceSolver`](super::laplace::LaplaceSolver) serves as the reference.
//!
//! Patches farther than `cutoff_cells` pitches from the query point are
//! ignored — the kernel decays as `ρ⁻³`, so the truncation error is small and
//! evaluation cost is independent of the array size. This is what makes
//! whole-array (>100,000 electrode) simulations tractable.

use super::{ElectrodePlane, FieldModel};
use labchip_units::{GridCoord, Vec3};

/// Superposition-of-patches field model over an [`ElectrodePlane`].
#[derive(Debug, Clone)]
pub struct SuperpositionField {
    plane: ElectrodePlane,
    cutoff_cells: u32,
}

impl SuperpositionField {
    /// Default truncation radius, in electrode pitches.
    pub const DEFAULT_CUTOFF_CELLS: u32 = 6;

    /// Creates a field model over the given programmed plane with the default
    /// truncation radius.
    pub fn new(plane: ElectrodePlane) -> Self {
        Self::with_cutoff(plane, Self::DEFAULT_CUTOFF_CELLS)
    }

    /// Creates a field model with an explicit truncation radius (in pitches).
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_cells` is zero.
    pub fn with_cutoff(plane: ElectrodePlane, cutoff_cells: u32) -> Self {
        assert!(cutoff_cells > 0, "cutoff must be at least one cell");
        Self {
            plane,
            cutoff_cells,
        }
    }

    /// The programmed electrode plane this model reads from.
    pub fn plane(&self) -> &ElectrodePlane {
        &self.plane
    }

    /// Mutable access to the plane, e.g. to reprogram phases between steps.
    pub fn plane_mut(&mut self) -> &mut ElectrodePlane {
        &mut self.plane
    }

    /// Truncation radius in cells.
    pub fn cutoff_cells(&self) -> u32 {
        self.cutoff_cells
    }

    fn kernel(area: f64, rho_sq: f64, dist: f64) -> f64 {
        // Half-space Poisson kernel integrated over a patch of area `area`,
        // approximated by the kernel at the patch centre. Clamp the distance
        // to avoid the singularity exactly on the boundary plane.
        let d = dist.max(1e-9);
        area * d / (2.0 * std::f64::consts::PI * (rho_sq + d * d).powf(1.5))
    }

    fn local_cells(&self, p: Vec3) -> impl Iterator<Item = GridCoord> + '_ {
        let pitch = self.plane.pitch().get();
        let dims = self.plane.dims();
        let cutoff = self.cutoff_cells as i64;
        let cx = (p.x / pitch).floor() as i64;
        let cy = (p.y / pitch).floor() as i64;
        let x0 = (cx - cutoff).max(0) as u32;
        let x1 = ((cx + cutoff).max(0) as u64).min(dims.cols as u64 - 1) as u32;
        let y0 = (cy - cutoff).max(0) as u32;
        let y1 = ((cy + cutoff).max(0) as u64).min(dims.rows as u64 - 1) as u32;
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| GridCoord::new(x, y)))
    }
}

impl FieldModel for SuperpositionField {
    fn potential(&self, p: Vec3) -> f64 {
        let pitch = self.plane.pitch().get();
        let area = pitch * pitch;
        let h = self.plane.chamber_height().get();
        let z = p.z.clamp(0.0, h);
        let lid_v = self.plane.lid_voltage().get();

        // Bottom-plane trace: Poisson-kernel weighted average of the nearby
        // electrode voltages at height z.
        let mut weighted = 0.0;
        let mut total = 0.0;
        for c in self.local_cells(p) {
            let center = self.plane.electrode_center(c);
            let rho_sq = (p.x - center.x).powi(2) + (p.y - center.y).powi(2);
            let w = Self::kernel(area, rho_sq, z);
            weighted += w * self.plane.signed_voltage(c).get();
            total += w;
        }
        let phi_bottom = if total == 0.0 { 0.0 } else { weighted / total };

        // Linear blend towards the lid.
        let t = z / h;
        (1.0 - t) * phi_bottom + t * lid_v
    }

    fn differentiation_step(&self) -> f64 {
        self.plane.pitch().get() * 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::ElectrodePhase;
    use labchip_units::{GridDims, Meters, Volts};

    fn cage_plane(n: u32) -> ElectrodePlane {
        let mut plane = ElectrodePlane::new(
            GridDims::square(n),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        // Single cage at the array centre.
        let c = GridCoord::new(n / 2, n / 2);
        plane.set_phase(c, ElectrodePhase::CounterPhase);
        plane
    }

    fn cage_center_xy(plane: &ElectrodePlane) -> (f64, f64) {
        let n = plane.dims().cols;
        let c = GridCoord::new(n / 2, n / 2);
        let pos = plane.electrode_center(c);
        (pos.x, pos.y)
    }

    #[test]
    fn potential_is_bounded_by_boundary_voltages() {
        let plane = cage_plane(9);
        let model = SuperpositionField::new(plane);
        let v = model.plane().amplitude().get();
        for &z_frac in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            for &x_frac in &[0.2, 0.5, 0.8] {
                let p = Vec3::new(
                    x_frac * model.plane().width(),
                    0.5 * model.plane().height(),
                    z_frac * model.plane().chamber_height().get(),
                );
                let phi = model.potential(p);
                assert!(phi <= v + 1e-9 && phi >= -v - 1e-9, "phi = {phi}");
            }
        }
    }

    #[test]
    fn potential_near_electrode_approaches_its_voltage() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        // Just above the counter-phase electrode the potential should be
        // strongly negative (close to -V).
        let phi = model.potential(Vec3::new(cx, cy, 0.5e-6));
        assert!(phi < -0.8 * model.plane().amplitude().get(), "phi = {phi}");
        // Just above an in-phase electrode far from the cage it should be
        // strongly positive.
        let phi_in = model.potential(Vec3::new(
            cx + 3.0 * model.plane().pitch().get(),
            cy,
            0.5e-6,
        ));
        assert!(phi_in > 0.5 * model.plane().amplitude().get(), "phi = {phi_in}");
    }

    #[test]
    fn cage_has_field_minimum_above_counter_phase_electrode() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        let pitch = model.plane().pitch().get();
        let z = 1.5 * pitch;
        let e_center = model.e_squared(Vec3::new(cx, cy, z));
        // |E|² above the cage centre must be lower than above the in-phase
        // neighbours at the same height: that is what makes it a trap for
        // negative-DEP particles.
        for &(dx, dy) in &[(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)] {
            let e_nb = model.e_squared(Vec3::new(cx + 1.5 * dx * pitch, cy + 1.5 * dy * pitch, z));
            assert!(
                e_center < e_nb,
                "cage centre |E|^2 {e_center:.3e} not below neighbour {e_nb:.3e}"
            );
        }
    }

    #[test]
    fn field_scales_linearly_with_voltage_so_e_squared_scales_quadratically() {
        // This is the paper's §2 argument: DEP force ∝ V², so halving the
        // supply voltage (newer technology node) costs 4× in force.
        let mut lo = cage_plane(9);
        lo.set_lid_voltage(Volts::new(-1.2));
        let hi = cage_plane(9);
        let lo = {
            let mut p = ElectrodePlane::new(
                lo.dims(),
                lo.pitch(),
                Volts::new(1.2),
                lo.chamber_height(),
            );
            p.set_phase(GridCoord::new(4, 4), ElectrodePhase::CounterPhase);
            p
        };
        let (cx, cy) = cage_center_xy(&hi);
        let m_hi = SuperpositionField::new(hi);
        let m_lo = SuperpositionField::new(lo);
        let probe = Vec3::new(cx + 10e-6, cy, 30e-6);
        let ratio_v = 3.3f64 / 1.2;
        let ratio_e2 = m_hi.e_squared(probe) / m_lo.e_squared(probe);
        assert!(
            (ratio_e2 / (ratio_v * ratio_v) - 1.0).abs() < 1e-6,
            "expected quadratic scaling, got ratio {ratio_e2}"
        );
    }

    #[test]
    fn grad_e_squared_points_away_from_cage_center_laterally() {
        let plane = cage_plane(9);
        let (cx, cy) = cage_center_xy(&plane);
        let model = SuperpositionField::new(plane);
        let pitch = model.plane().pitch().get();
        // A little off-centre, |E|² increases away from the cage, so the
        // lateral gradient points outward; nDEP force (−K∇|E|²) then points
        // back in. Restoring behaviour is what we check here.
        let p = Vec3::new(cx + 0.3 * pitch, cy, 1.5 * pitch);
        let g = model.grad_e_squared(p);
        assert!(g.x > 0.0, "expected outward gradient, got {}", g.x);
    }

    #[test]
    fn uniform_plane_has_negligible_lateral_field() {
        // With every electrode in phase the lateral field should nearly
        // vanish by symmetry (away from the array edges).
        let plane = ElectrodePlane::new(
            GridDims::square(15),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        let model = SuperpositionField::new(plane);
        let p = Vec3::new(
            0.5 * model.plane().width(),
            0.5 * model.plane().height(),
            40e-6,
        );
        let e = model.field(p);
        assert!(e.x.abs() < 0.02 * e.z.abs() + 1.0);
        assert!(e.y.abs() < 0.02 * e.z.abs() + 1.0);
        // The vertical field should be roughly 2V / h.
        let expected = 2.0 * 3.3 / 80e-6;
        assert!((e.z.abs() - expected).abs() / expected < 0.5, "Ez = {}", e.z);
    }

    #[test]
    fn cutoff_must_be_positive() {
        let plane = cage_plane(5);
        let result = std::panic::catch_unwind(|| SuperpositionField::with_cutoff(plane, 0));
        assert!(result.is_err());
    }

    #[test]
    fn evaluation_cost_is_independent_of_array_size() {
        // Not a timing test: just confirm large arrays are usable by
        // evaluating a point on a 200x200 (40,000 electrode) plane.
        let mut plane = ElectrodePlane::new(
            GridDims::square(200),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(GridCoord::new(100, 100), ElectrodePhase::CounterPhase);
        let model = SuperpositionField::new(plane);
        let c = model.plane().electrode_center(GridCoord::new(100, 100));
        let e2 = model.e_squared(Vec3::new(c.x, c.y, 30e-6));
        assert!(e2.is_finite() && e2 > 0.0);
    }
}
