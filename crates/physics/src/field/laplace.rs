//! Finite-difference Laplace solver.
//!
//! Solves `∇²Φ = 0` on a uniform 3-D grid spanning a rectangular sub-region
//! of the chamber, with Dirichlet boundary conditions on the electrode plane
//! (z = 0, the programmed signed voltages) and on the lid (z = h), and
//! homogeneous Neumann conditions on the four lateral faces. Successive
//! over-relaxation (SOR) is used; the result is exposed through the
//! [`FieldModel`] trait via trilinear interpolation.
//!
//! This model is the accuracy reference for the fast
//! [`SuperpositionField`](super::superposition::SuperpositionField); it is
//! meant for small regions (a few cages), not for the whole 100,000-electrode
//! array.

use super::{ElectrodePlane, FieldModel};
use crate::error::PhysicsError;
use labchip_units::{GridRect, Vec3};

/// Finite-difference solution of the chamber potential over a sub-region of
/// the electrode plane.
#[derive(Debug, Clone)]
pub struct LaplaceSolver {
    /// Grid origin in chip coordinates (metres).
    origin: (f64, f64),
    /// Grid spacing in metres (same in x, y, z).
    spacing: f64,
    /// Number of nodes in x, y, z.
    nx: usize,
    ny: usize,
    nz: usize,
    /// Potential at each node, index `x + nx*(y + ny*z)`.
    phi: Vec<f64>,
    /// Iterations actually used.
    iterations: usize,
    /// Final residual (max absolute update of the last sweep).
    residual: f64,
}

/// Configuration for the SOR iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Nodes per electrode pitch in the lateral directions.
    pub nodes_per_pitch: usize,
    /// Maximum SOR sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum absolute update per sweep (volts).
    pub tolerance: f64,
    /// Over-relaxation factor in `(1, 2)`.
    pub omega: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            nodes_per_pitch: 4,
            max_iterations: 4_000,
            tolerance: 1e-5,
            omega: 1.8,
        }
    }
}

impl LaplaceSolver {
    /// Solves the potential over the sub-region `region` (in electrode
    /// coordinates, inclusive) of `plane` using the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::NoConvergence`] when the SOR iteration does
    /// not reach the requested tolerance, and
    /// [`PhysicsError::InvalidParameter`] for nonsensical configurations.
    pub fn solve(plane: &ElectrodePlane, region: GridRect) -> Result<Self, PhysicsError> {
        Self::solve_with(plane, region, SolverConfig::default())
    }

    /// Solves with an explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`LaplaceSolver::solve`].
    pub fn solve_with(
        plane: &ElectrodePlane,
        region: GridRect,
        config: SolverConfig,
    ) -> Result<Self, PhysicsError> {
        if config.nodes_per_pitch < 2 {
            return Err(PhysicsError::InvalidParameter {
                name: "nodes_per_pitch",
                reason: "must be at least 2".into(),
            });
        }
        if !(1.0..2.0).contains(&config.omega) {
            return Err(PhysicsError::InvalidParameter {
                name: "omega",
                reason: "must lie in [1, 2)".into(),
            });
        }
        if !plane.dims().contains(region.min) || !plane.dims().contains(region.max) {
            return Err(PhysicsError::OutOfDomain {
                what: format!("region {region:?} outside electrode array {}", plane.dims()),
            });
        }

        let pitch = plane.pitch().get();
        let spacing = pitch / config.nodes_per_pitch as f64;
        let cells_x = (region.max.x - region.min.x + 1) as usize;
        let cells_y = (region.max.y - region.min.y + 1) as usize;
        let nx = cells_x * config.nodes_per_pitch + 1;
        let ny = cells_y * config.nodes_per_pitch + 1;
        let nz = ((plane.chamber_height().get() / spacing).round() as usize).max(2) + 1;
        let origin = (region.min.x as f64 * pitch, region.min.y as f64 * pitch);

        let mut phi = vec![0.0_f64; nx * ny * nz];
        let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);

        // Dirichlet boundary: bottom plane takes the signed electrode
        // voltages, top plane the lid voltage. Initialise the interior with a
        // linear blend to speed up convergence.
        let lid_v = plane.lid_voltage().get();
        let mut bottom = vec![0.0_f64; nx * ny];
        for yi in 0..ny {
            for xi in 0..nx {
                let x = origin.0 + xi as f64 * spacing;
                let y = origin.1 + yi as f64 * spacing;
                let v = plane
                    .electrode_at(x.min(plane.width() - 1e-12), y.min(plane.height() - 1e-12))
                    .map(|c| plane.signed_voltage(c).get())
                    .unwrap_or(0.0);
                bottom[xi + nx * yi] = v;
            }
        }
        for zi in 0..nz {
            let t = zi as f64 / (nz - 1) as f64;
            for yi in 0..ny {
                for xi in 0..nx {
                    let v_bottom = bottom[xi + nx * yi];
                    phi[idx(xi, yi, zi)] = (1.0 - t) * v_bottom + t * lid_v;
                }
            }
        }

        // SOR sweeps over interior nodes; lateral faces get mirror (Neumann)
        // treatment by clamping neighbour indices. The clamped column/row
        // lookups are hoisted into tables and the linear index is carried
        // incrementally per row — the arithmetic (and therefore the iteration
        // count and residual) is bit-identical to the naive per-node form,
        // just without recomputing six index clamps per node per sweep.
        let xm_col: Vec<usize> = (0..nx).map(|xi| xi.saturating_sub(1)).collect();
        let xp_col: Vec<usize> = (0..nx).map(|xi| (xi + 1).min(nx - 1)).collect();
        let ym_row: Vec<usize> = (0..ny).map(|yi| yi.saturating_sub(1)).collect();
        let yp_row: Vec<usize> = (0..ny).map(|yi| (yi + 1).min(ny - 1)).collect();
        let slab = nx * ny;
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        for sweep in 0..config.max_iterations {
            let mut max_update: f64 = 0.0;
            for zi in 1..nz - 1 {
                let slab_base = slab * zi;
                for yi in 0..ny {
                    let row = slab_base + nx * yi;
                    let row_ym = slab_base + nx * ym_row[yi];
                    let row_yp = slab_base + nx * yp_row[yi];
                    let row_zm = row - slab;
                    let row_zp = row + slab;
                    for xi in 0..nx {
                        let neighbours = phi[row + xm_col[xi]]
                            + phi[row + xp_col[xi]]
                            + phi[row_ym + xi]
                            + phi[row_yp + xi]
                            + phi[row_zm + xi]
                            + phi[row_zp + xi];
                        let target = neighbours / 6.0;
                        let old = phi[row + xi];
                        let new = old + config.omega * (target - old);
                        max_update = max_update.max((new - old).abs());
                        phi[row + xi] = new;
                    }
                }
            }
            iterations = sweep + 1;
            residual = max_update;
            if max_update < config.tolerance {
                break;
            }
        }

        if residual >= config.tolerance {
            return Err(PhysicsError::NoConvergence {
                solver: "laplace-sor",
                iterations,
                residual,
            });
        }

        Ok(Self {
            origin,
            spacing,
            nx,
            ny,
            nz,
            phi,
            iterations,
            residual,
        })
    }

    /// Number of SOR sweeps used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Residual of the final sweep.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Grid spacing in metres.
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Number of nodes in (x, y, z).
    pub fn node_counts(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    fn node(&self, x: usize, y: usize, z: usize) -> f64 {
        self.phi[x + self.nx * (y + self.ny * z)]
    }

    /// Trilinear interpolation of the stored potential; points outside the
    /// solved box are clamped to it.
    fn interpolate(&self, p: Vec3) -> f64 {
        let fx = ((p.x - self.origin.0) / self.spacing).clamp(0.0, (self.nx - 1) as f64);
        let fy = ((p.y - self.origin.1) / self.spacing).clamp(0.0, (self.ny - 1) as f64);
        let fz = (p.z / self.spacing).clamp(0.0, (self.nz - 1) as f64);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let z0 = fz.floor() as usize;
        let x1 = (x0 + 1).min(self.nx - 1);
        let y1 = (y0 + 1).min(self.ny - 1);
        let z1 = (z0 + 1).min(self.nz - 1);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let tz = fz - z0 as f64;

        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(self.node(x0, y0, z0), self.node(x1, y0, z0), tx);
        let c10 = lerp(self.node(x0, y1, z0), self.node(x1, y1, z0), tx);
        let c01 = lerp(self.node(x0, y0, z1), self.node(x1, y0, z1), tx);
        let c11 = lerp(self.node(x0, y1, z1), self.node(x1, y1, z1), tx);
        let c0 = lerp(c00, c10, ty);
        let c1 = lerp(c01, c11, ty);
        lerp(c0, c1, tz)
    }
}

impl FieldModel for LaplaceSolver {
    fn potential(&self, p: Vec3) -> f64 {
        self.interpolate(p)
    }

    fn differentiation_step(&self) -> f64 {
        self.spacing * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::ElectrodePhase;
    use labchip_units::{GridCoord, GridDims, GridRect, Meters, Volts};

    fn small_plane_with_cage() -> (ElectrodePlane, GridRect) {
        let mut plane = ElectrodePlane::new(
            GridDims::square(7),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(60.0),
        );
        plane.set_phase(GridCoord::new(3, 3), ElectrodePhase::CounterPhase);
        let region = GridRect::new(GridCoord::new(0, 0), GridCoord::new(6, 6));
        (plane, region)
    }

    #[test]
    fn solver_converges_on_small_region() {
        let (plane, region) = small_plane_with_cage();
        let solved = LaplaceSolver::solve(&plane, region).expect("convergence");
        assert!(solved.iterations() > 0);
        assert!(solved.residual() < 1e-4);
        let (nx, ny, nz) = solved.node_counts();
        assert!(nx > 10 && ny > 10 && nz > 3);
    }

    #[test]
    fn boundary_values_are_respected() {
        let (plane, region) = small_plane_with_cage();
        let solved = LaplaceSolver::solve(&plane, region).expect("convergence");
        // Near the bottom above the cage electrode: close to -V.
        let c = plane.electrode_center(GridCoord::new(3, 3));
        let phi_bottom = solved.potential(Vec3::new(c.x, c.y, 0.0));
        assert!((phi_bottom - (-3.3)).abs() < 0.3, "phi = {phi_bottom}");
        // At the lid: close to the lid voltage.
        let phi_top = solved.potential(Vec3::new(c.x, c.y, plane.chamber_height().get()));
        assert!(
            (phi_top - plane.lid_voltage().get()).abs() < 0.3,
            "phi = {phi_top}"
        );
    }

    #[test]
    fn interior_satisfies_maximum_principle() {
        let (plane, region) = small_plane_with_cage();
        let solved = LaplaceSolver::solve(&plane, region).expect("convergence");
        let v = plane.amplitude().get();
        for &z in &[10e-6, 30e-6, 50e-6] {
            for &x in &[20e-6, 70e-6, 120e-6] {
                let phi = solved.potential(Vec3::new(x, 70e-6, z));
                assert!(phi.abs() <= v + 1e-6, "phi = {phi}");
            }
        }
    }

    #[test]
    fn cage_minimum_matches_superposition_model_location() {
        // The reference solver and the fast model must agree on which
        // electrode hosts the |E|² minimum.
        use crate::field::superposition::SuperpositionField;
        let (plane, region) = small_plane_with_cage();
        let solved = LaplaceSolver::solve(&plane, region).expect("convergence");
        let fast = SuperpositionField::new(plane.clone());
        let pitch = plane.pitch().get();
        let z = 1.2 * pitch;
        let mut best_ref = (f64::INFINITY, GridCoord::new(0, 0));
        let mut best_fast = (f64::INFINITY, GridCoord::new(0, 0));
        for c in GridRect::new(GridCoord::new(1, 1), GridCoord::new(5, 5)).iter() {
            let pos = plane.electrode_center(c);
            let probe = Vec3::new(pos.x, pos.y, z);
            let e_ref = solved.e_squared(probe);
            let e_fast = fast.e_squared(probe);
            if e_ref < best_ref.0 {
                best_ref = (e_ref, c);
            }
            if e_fast < best_fast.0 {
                best_fast = (e_fast, c);
            }
        }
        assert_eq!(best_ref.1, GridCoord::new(3, 3));
        assert_eq!(best_fast.1, best_ref.1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (plane, region) = small_plane_with_cage();
        let bad_nodes = SolverConfig {
            nodes_per_pitch: 1,
            ..SolverConfig::default()
        };
        assert!(matches!(
            LaplaceSolver::solve_with(&plane, region, bad_nodes),
            Err(PhysicsError::InvalidParameter {
                name: "nodes_per_pitch",
                ..
            })
        ));
        let bad_omega = SolverConfig {
            omega: 2.5,
            ..SolverConfig::default()
        };
        assert!(matches!(
            LaplaceSolver::solve_with(&plane, region, bad_omega),
            Err(PhysicsError::InvalidParameter { name: "omega", .. })
        ));
        let out_of_range = GridRect::new(GridCoord::new(0, 0), GridCoord::new(20, 20));
        assert!(matches!(
            LaplaceSolver::solve(&plane, out_of_range),
            Err(PhysicsError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn too_few_iterations_reports_no_convergence() {
        let (plane, region) = small_plane_with_cage();
        let config = SolverConfig {
            max_iterations: 1,
            tolerance: 1e-12,
            ..SolverConfig::default()
        };
        let err = LaplaceSolver::solve_with(&plane, region, config).unwrap_err();
        assert!(matches!(err, PhysicsError::NoConvergence { .. }));
    }
}
