//! Sampled-lattice field cache for whole-array simulations.
//!
//! [`FieldCache`] samples a [`SuperpositionField`]'s potential, `|E|²` and
//! `∇|E|²` onto a regular 3-D lattice spanning the chamber and answers
//! queries by trilinear interpolation. One query costs eight lattice reads —
//! independent of the electrode cutoff — which is what makes thousand-cage,
//! thousand-particle runs cheap: the kernel sweep is paid once per lattice
//! node instead of once per particle per step.
//!
//! The cache tracks a **dirty region** in electrode coordinates: after a
//! reprogram, call [`FieldCache::mark_dirty`] with the changed electrodes
//! (or [`FieldCache::mark_all_dirty`]) and then [`FieldCache::refresh`].
//! Only lattice nodes within the superposition cutoff of the dirty
//! electrodes are recomputed — shifting one cage on a 320×320 array
//! re-samples a few thousand nodes, not millions.
//!
//! Accuracy: values are exact (w.r.t. the analytic model) on lattice nodes
//! and trilinear between them, so the interpolation error is second order in
//! the node spacing. Use direct [`SuperpositionField`] evaluation for
//! accuracy-critical probes (trap stiffness, levitation equilibria); use the
//! cache for bulk particle stepping. See the module docs of
//! [`superposition`](super::superposition) for the full trade-off
//! discussion.

use super::superposition::SuperpositionField;
use super::FieldModel;
use labchip_units::{GridRect, Vec3};
use rayon::prelude::*;

/// Trilinearly interpolated samples of a [`SuperpositionField`].
#[derive(Debug, Clone)]
pub struct FieldCache {
    /// Lattice spacing in x and y (metres).
    spacing_xy: f64,
    /// Lattice spacing in z (metres).
    spacing_z: f64,
    /// Node counts.
    nx: usize,
    ny: usize,
    nz: usize,
    /// Sampled potential, index `x + nx*(y + ny*z)`.
    pot: Vec<f64>,
    /// Sampled `|E|²`.
    e2: Vec<f64>,
    /// Sampled `∇|E|²`.
    grad: Vec<Vec3>,
    /// Electrode-coordinate region whose nodes need resampling.
    dirty: Option<GridRect>,
    /// Influence radius of one electrode in lattice nodes (cutoff + 1 pitch).
    influence_nodes: usize,
    /// Electrode pitch (metres), for dirty-region conversion.
    pitch: f64,
}

impl FieldCache {
    /// Default lateral sampling density.
    pub const DEFAULT_NODES_PER_PITCH: u32 = 4;
    /// Default number of z levels.
    pub const DEFAULT_Z_LEVELS: u32 = 9;

    /// Samples `field` on a lattice with the default resolution.
    pub fn build(field: &SuperpositionField) -> Self {
        Self::build_with(field, Self::DEFAULT_NODES_PER_PITCH, Self::DEFAULT_Z_LEVELS)
    }

    /// Samples `field` with `nodes_per_pitch` lateral nodes per electrode
    /// pitch and `z_levels` levels spanning the chamber height.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_pitch` is zero or `z_levels < 2`.
    pub fn build_with(field: &SuperpositionField, nodes_per_pitch: u32, z_levels: u32) -> Self {
        assert!(nodes_per_pitch > 0, "need at least one node per pitch");
        assert!(z_levels >= 2, "need at least two z levels");
        let plane = field.plane();
        let pitch = plane.pitch().get();
        let dims = plane.dims();
        let nx = dims.cols as usize * nodes_per_pitch as usize + 1;
        let ny = dims.rows as usize * nodes_per_pitch as usize + 1;
        let nz = z_levels as usize;
        let spacing_xy = pitch / nodes_per_pitch as f64;
        let spacing_z = plane.chamber_height().get() / (nz - 1) as f64;
        let node_count = nx * ny * nz;
        let mut cache = Self {
            spacing_xy,
            spacing_z,
            nx,
            ny,
            nz,
            pot: vec![0.0; node_count],
            e2: vec![0.0; node_count],
            grad: vec![Vec3::ZERO; node_count],
            dirty: None,
            influence_nodes: ((field.cutoff_cells() as f64 + 1.0) * pitch / spacing_xy).ceil()
                as usize,
            pitch,
        };
        cache.resample(field, 0, nx, 0, ny);
        cache
    }

    /// Node counts in (x, y, z).
    pub fn node_counts(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Marks an electrode-coordinate region (inclusive) as stale. Regions
    /// accumulate (as their bounding box) until [`FieldCache::refresh`].
    pub fn mark_dirty(&mut self, region: GridRect) {
        self.dirty = Some(match self.dirty {
            None => region,
            Some(old) => GridRect {
                min: labchip_units::GridCoord::new(
                    old.min.x.min(region.min.x),
                    old.min.y.min(region.min.y),
                ),
                max: labchip_units::GridCoord::new(
                    old.max.x.max(region.max.x),
                    old.max.y.max(region.max.y),
                ),
            },
        });
    }

    /// Marks the whole lattice stale.
    pub fn mark_all_dirty(&mut self) {
        self.dirty = Some(GridRect::new(
            labchip_units::GridCoord::new(0, 0),
            labchip_units::GridCoord::new(u32::MAX, u32::MAX),
        ));
    }

    /// Whether a refresh is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty.is_some()
    }

    /// Re-samples the nodes affected by the accumulated dirty region from
    /// `field` (which should reflect the *new* programmed state). Returns the
    /// number of lattice nodes recomputed.
    pub fn refresh(&mut self, field: &SuperpositionField) -> usize {
        let Some(region) = self.dirty.take() else {
            return 0;
        };
        // Convert the electrode region to node indices, inflated by the
        // superposition influence radius.
        let to_node = |cells: f64| (cells * self.pitch / self.spacing_xy) as isize;
        let x0 = (to_node(region.min.x as f64) - self.influence_nodes as isize).max(0) as usize;
        let y0 = (to_node(region.min.y as f64) - self.influence_nodes as isize).max(0) as usize;
        let x1 = (to_node(region.max.x.saturating_add(1) as f64) + self.influence_nodes as isize)
            .min(self.nx as isize - 1) as usize
            + 1;
        let y1 = (to_node(region.max.y.saturating_add(1) as f64) + self.influence_nodes as isize)
            .min(self.ny as isize - 1) as usize
            + 1;
        self.resample(field, x0, x1, y0, y1);
        (x1 - x0) * (y1 - y0) * self.nz
    }

    /// Recomputes the nodes with `x0 <= xi < x1`, `y0 <= yi < y1` (all z),
    /// in parallel over rows.
    fn resample(&mut self, field: &SuperpositionField, x0: usize, x1: usize, y0: usize, y1: usize) {
        let (nx, ny) = (self.nx, self.ny);
        let (sxy, sz) = (self.spacing_xy, self.spacing_z);
        // One work item per (z, y) row so the rayon chunks stay balanced.
        struct Row<'a> {
            zi: usize,
            yi: usize,
            pot: &'a mut [f64],
            e2: &'a mut [f64],
            grad: &'a mut [Vec3],
        }
        let mut rows: Vec<Row<'_>> = Vec::with_capacity(self.nz * (y1 - y0));
        {
            let mut pot_rest: &mut [f64] = &mut self.pot;
            let mut e2_rest: &mut [f64] = &mut self.e2;
            let mut grad_rest: &mut [Vec3] = &mut self.grad;
            let mut offset = 0usize;
            for zi in 0..self.nz {
                for yi in 0..ny {
                    let row_start = nx * (yi + ny * zi);
                    let keep = yi >= y0 && yi < y1;
                    let skip = row_start - offset;
                    let (_, p1) = pot_rest.split_at_mut(skip);
                    let (row_p, p2) = p1.split_at_mut(nx);
                    pot_rest = p2;
                    let (_, e1) = e2_rest.split_at_mut(skip);
                    let (row_e, e2_tail) = e1.split_at_mut(nx);
                    e2_rest = e2_tail;
                    let (_, g1) = grad_rest.split_at_mut(skip);
                    let (row_g, g2) = g1.split_at_mut(nx);
                    grad_rest = g2;
                    offset = row_start + nx;
                    if keep {
                        rows.push(Row {
                            zi,
                            yi,
                            pot: &mut row_p[x0..x1],
                            e2: &mut row_e[x0..x1],
                            grad: &mut row_g[x0..x1],
                        });
                    }
                }
            }
        }
        rows.par_iter_mut().for_each(|row| {
            let y = row.yi as f64 * sxy;
            let z = row.zi as f64 * sz;
            for (i, xi) in (x0..x1).enumerate() {
                let p = Vec3::new(xi as f64 * sxy, y, z);
                let (e2, grad) = field.e_squared_with_gradient(p);
                row.pot[i] = field.potential(p);
                row.e2[i] = e2;
                row.grad[i] = grad;
            }
        });
    }

    #[inline]
    fn node_index(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// Trilinear interpolation weights: corner indices plus fractions.
    #[inline]
    fn cell_of(&self, p: Vec3) -> ([usize; 3], [usize; 3], [f64; 3]) {
        let fx = (p.x / self.spacing_xy).clamp(0.0, (self.nx - 1) as f64);
        let fy = (p.y / self.spacing_xy).clamp(0.0, (self.ny - 1) as f64);
        let fz = (p.z / self.spacing_z).clamp(0.0, (self.nz - 1) as f64);
        let x0 = fx as usize;
        let y0 = fy as usize;
        let z0 = fz as usize;
        let x1 = (x0 + 1).min(self.nx - 1);
        let y1 = (y0 + 1).min(self.ny - 1);
        let z1 = (z0 + 1).min(self.nz - 1);
        (
            [x0, y0, z0],
            [x1, y1, z1],
            [fx - x0 as f64, fy - y0 as f64, fz - z0 as f64],
        )
    }

    #[inline]
    fn trilerp_scalar(&self, values: &[f64], p: Vec3) -> f64 {
        let ([x0, y0, z0], [x1, y1, z1], [tx, ty, tz]) = self.cell_of(p);
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(
            values[self.node_index(x0, y0, z0)],
            values[self.node_index(x1, y0, z0)],
            tx,
        );
        let c10 = lerp(
            values[self.node_index(x0, y1, z0)],
            values[self.node_index(x1, y1, z0)],
            tx,
        );
        let c01 = lerp(
            values[self.node_index(x0, y0, z1)],
            values[self.node_index(x1, y0, z1)],
            tx,
        );
        let c11 = lerp(
            values[self.node_index(x0, y1, z1)],
            values[self.node_index(x1, y1, z1)],
            tx,
        );
        lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz)
    }

    #[inline]
    fn trilerp_vec(&self, values: &[Vec3], p: Vec3) -> Vec3 {
        let ([x0, y0, z0], [x1, y1, z1], [tx, ty, tz]) = self.cell_of(p);
        let lerp = |a: Vec3, b: Vec3, t: f64| a + (b - a) * t;
        let c00 = lerp(
            values[self.node_index(x0, y0, z0)],
            values[self.node_index(x1, y0, z0)],
            tx,
        );
        let c10 = lerp(
            values[self.node_index(x0, y1, z0)],
            values[self.node_index(x1, y1, z0)],
            tx,
        );
        let c01 = lerp(
            values[self.node_index(x0, y0, z1)],
            values[self.node_index(x1, y0, z1)],
            tx,
        );
        let c11 = lerp(
            values[self.node_index(x0, y1, z1)],
            values[self.node_index(x1, y1, z1)],
            tx,
        );
        lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz)
    }
}

impl FieldModel for FieldCache {
    fn potential(&self, p: Vec3) -> f64 {
        self.trilerp_scalar(&self.pot, p)
    }

    fn differentiation_step(&self) -> f64 {
        self.spacing_xy * 0.5
    }

    fn e_squared(&self, p: Vec3) -> f64 {
        self.trilerp_scalar(&self.e2, p)
    }

    fn grad_e_squared(&self, p: Vec3) -> Vec3 {
        self.trilerp_vec(&self.grad, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{ElectrodePhase, ElectrodePlane};
    use labchip_units::{GridCoord, GridDims, Meters, Volts};

    fn cage_field(n: u32, cage: GridCoord) -> SuperpositionField {
        let mut plane = ElectrodePlane::new(
            GridDims::square(n),
            Meters::from_micrometers(20.0),
            Volts::new(3.3),
            Meters::from_micrometers(80.0),
        );
        plane.set_phase(cage, ElectrodePhase::CounterPhase);
        SuperpositionField::new(plane)
    }

    #[test]
    fn cache_matches_direct_evaluation_on_nodes() {
        let field = cage_field(9, GridCoord::new(4, 4));
        let cache = FieldCache::build_with(&field, 2, 5);
        // Lattice nodes are exact by construction.
        let p = Vec3::new(40e-6, 60e-6, 40e-6);
        assert!((cache.e_squared(p) - field.e_squared(p)).abs() <= 1e-6 * field.e_squared(p));
        assert!((cache.potential(p) - field.potential(p)).abs() < 1e-9);
    }

    #[test]
    fn cache_interpolates_between_nodes_reasonably() {
        let field = cage_field(9, GridCoord::new(4, 4));
        // |E|² decays steeply with z near the cage, so the z resolution
        // dominates the interpolation error; 17 levels = 5 µm spacing.
        let cache = FieldCache::build_with(&field, 4, 17);
        let c = field.plane().electrode_center(GridCoord::new(4, 4));
        for &(dx, dz) in &[(3.1e-6, 27e-6), (-6.7e-6, 41e-6), (11.3e-6, 59e-6)] {
            let p = Vec3::new(c.x + dx, c.y + 2.3e-6, dz);
            let exact = field.e_squared(p);
            let approx = cache.e_squared(p);
            assert!(
                (approx - exact).abs() <= 0.1 * exact.abs().max(1e3),
                "cache {approx:.4e} vs exact {exact:.4e} at {p:?}"
            );
        }
    }

    #[test]
    fn cached_gradient_preserves_trap_restoring_direction() {
        let field = cage_field(9, GridCoord::new(4, 4));
        let cache = FieldCache::build_with(&field, 4, 9);
        let c = field.plane().electrode_center(GridCoord::new(4, 4));
        let p = Vec3::new(c.x + 6e-6, c.y, 30e-6);
        assert!(cache.grad_e_squared(p).x > 0.0);
    }

    #[test]
    fn dirty_refresh_matches_full_rebuild() {
        let mut field = cage_field(9, GridCoord::new(2, 2));
        let mut cache = FieldCache::build_with(&field, 2, 5);
        // Move the cage from (2,2) to (6,6).
        {
            let mut plane = field.plane_mut();
            plane.set_phase(GridCoord::new(2, 2), ElectrodePhase::InPhase);
            plane.set_phase(GridCoord::new(6, 6), ElectrodePhase::CounterPhase);
        }
        cache.mark_dirty(GridRect::new(GridCoord::new(2, 2), GridCoord::new(2, 2)));
        cache.mark_dirty(GridRect::new(GridCoord::new(6, 6), GridCoord::new(6, 6)));
        let recomputed = cache.refresh(&field);
        assert!(recomputed > 0);
        assert!(!cache.is_dirty());

        let fresh = FieldCache::build_with(&field, 2, 5);
        for zi in 0..5usize {
            for yi in (0..cache.ny).step_by(3) {
                for xi in (0..cache.nx).step_by(3) {
                    let i = cache.node_index(xi, yi, zi);
                    assert!(
                        (cache.e2[i] - fresh.e2[i]).abs() <= 1e-9 * fresh.e2[i].abs().max(1.0),
                        "stale node at ({xi},{yi},{zi})"
                    );
                }
            }
        }
    }

    #[test]
    fn refresh_without_dirty_region_is_a_no_op() {
        let field = cage_field(7, GridCoord::new(3, 3));
        let mut cache = FieldCache::build_with(&field, 2, 4);
        assert_eq!(cache.refresh(&field), 0);
    }

    #[test]
    fn build_rejects_degenerate_resolutions() {
        let field = cage_field(5, GridCoord::new(2, 2));
        assert!(std::panic::catch_unwind(|| FieldCache::build_with(&field, 0, 5)).is_err());
        assert!(std::panic::catch_unwind(|| FieldCache::build_with(&field, 2, 1)).is_err());
    }
}
