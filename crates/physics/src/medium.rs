//! Suspension-medium models.
//!
//! Cells are manipulated while suspended in an aqueous buffer inside the
//! ~4 µl microchamber. For DEP the relevant medium properties are its
//! permittivity and conductivity (which set the Clausius–Mossotti factor and
//! the Joule heating), plus viscosity, density and temperature for drag,
//! sedimentation and Brownian motion.

use crate::dielectric::ComplexPermittivity;
use labchip_units::{
    Kelvin, KilogramsPerCubicMeter, PascalSeconds, SiemensPerMeter, VACUUM_PERMITTIVITY,
    WATER_DENSITY, WATER_RELATIVE_PERMITTIVITY, WATER_VISCOSITY,
};
use serde::{Deserialize, Serialize};

/// An aqueous suspension medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Medium {
    /// Relative permittivity (dimensionless).
    pub relative_permittivity: f64,
    /// Electrical conductivity.
    pub conductivity: SiemensPerMeter,
    /// Dynamic viscosity.
    pub viscosity: PascalSeconds,
    /// Mass density.
    pub density: KilogramsPerCubicMeter,
    /// Temperature.
    pub temperature: Kelvin,
}

impl Medium {
    /// Creates a custom medium.
    pub fn new(
        relative_permittivity: f64,
        conductivity: SiemensPerMeter,
        viscosity: PascalSeconds,
        density: KilogramsPerCubicMeter,
        temperature: Kelvin,
    ) -> Self {
        Self {
            relative_permittivity,
            conductivity,
            viscosity,
            density,
            temperature,
        }
    }

    /// A low-conductivity isotonic buffer (~280 mOsm mannitol/sucrose based),
    /// the standard choice for negative-DEP cell manipulation as used by the
    /// paper's chip. Conductivity ≈ 30 mS/m.
    pub fn physiological_low_conductivity() -> Self {
        Self {
            relative_permittivity: WATER_RELATIVE_PERMITTIVITY,
            conductivity: SiemensPerMeter::new(0.03),
            viscosity: PascalSeconds::new(WATER_VISCOSITY),
            density: KilogramsPerCubicMeter::new(WATER_DENSITY),
            temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// Standard phosphate-buffered saline (PBS), conductivity ≈ 1.5 S/m.
    /// DEP in PBS is almost always negative and heating is severe; useful as
    /// a contrast case.
    pub fn phosphate_buffered_saline() -> Self {
        Self {
            relative_permittivity: WATER_RELATIVE_PERMITTIVITY,
            conductivity: SiemensPerMeter::new(1.5),
            viscosity: PascalSeconds::new(WATER_VISCOSITY),
            density: KilogramsPerCubicMeter::new(1_005.0),
            temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// Deionised water, conductivity ≈ 0.1 mS/m.
    pub fn deionized_water() -> Self {
        Self {
            relative_permittivity: WATER_RELATIVE_PERMITTIVITY,
            conductivity: SiemensPerMeter::new(1e-4),
            viscosity: PascalSeconds::new(WATER_VISCOSITY),
            density: KilogramsPerCubicMeter::new(WATER_DENSITY),
            temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// Absolute permittivity ε = ε₀·εᵣ, in F/m.
    #[inline]
    pub fn absolute_permittivity(&self) -> f64 {
        VACUUM_PERMITTIVITY * self.relative_permittivity
    }

    /// Complex permittivity at angular frequency `omega` (rad/s).
    #[inline]
    pub fn complex_permittivity(&self, omega: f64) -> ComplexPermittivity {
        ComplexPermittivity::new(self.relative_permittivity, self.conductivity.get(), omega)
    }

    /// Returns a copy with a different conductivity.
    pub fn with_conductivity(mut self, conductivity: SiemensPerMeter) -> Self {
        self.conductivity = conductivity;
        self
    }

    /// Returns a copy with a different temperature.
    pub fn with_temperature(mut self, temperature: Kelvin) -> Self {
        self.temperature = temperature;
        self
    }
}

impl Default for Medium {
    fn default() -> Self {
        Self::physiological_low_conductivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_conductivity() {
        let di = Medium::deionized_water();
        let low = Medium::physiological_low_conductivity();
        let pbs = Medium::phosphate_buffered_saline();
        assert!(di.conductivity < low.conductivity);
        assert!(low.conductivity < pbs.conductivity);
    }

    #[test]
    fn absolute_permittivity_is_eps0_times_relative() {
        let m = Medium::default();
        let expected = VACUUM_PERMITTIVITY * m.relative_permittivity;
        assert!((m.absolute_permittivity() - expected).abs() < 1e-20);
    }

    #[test]
    fn builders_override_fields() {
        let m = Medium::default()
            .with_conductivity(SiemensPerMeter::new(0.5))
            .with_temperature(Kelvin::from_celsius(37.0));
        assert_eq!(m.conductivity, SiemensPerMeter::new(0.5));
        assert!((m.temperature.as_celsius() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn complex_permittivity_has_negative_imaginary_part() {
        let m = Medium::default();
        let eps = m.complex_permittivity(2.0 * std::f64::consts::PI * 1e6);
        assert!(eps.value().re > 0.0);
        assert!(eps.value().im < 0.0);
    }
}
