//! Joule heating, electro-thermal flow and evaporation.
//!
//! The paper's §3 lists "heating and evaporation, electro-thermal flow, AC
//! electro-osmosis" among the effects that make fluidic simulation hard.
//! These reduced-order models capture their magnitude so that the full-chip
//! simulator and the design-flow study can reason about them without CFD.

use crate::medium::Medium;
use labchip_units::{
    CubicMeters, Kelvin, Meters, Seconds, Volts, Watts, WATER_LATENT_HEAT,
    WATER_THERMAL_CONDUCTIVITY,
};
use serde::{Deserialize, Serialize};

/// Joule heating of the chamber liquid by the AC drive field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JouleHeating {
    conductivity: f64,
    thermal_conductivity: f64,
}

impl JouleHeating {
    /// Builds the model from the medium conductivity, using water's thermal
    /// conductivity for the heat path.
    pub fn new(medium: &Medium) -> Self {
        Self {
            conductivity: medium.conductivity.get(),
            thermal_conductivity: WATER_THERMAL_CONDUCTIVITY,
        }
    }

    /// Volumetric power density `σ |E_rms|²` (W/m³) at a point with the given
    /// squared RMS field.
    #[inline]
    pub fn power_density(&self, e_squared: f64) -> f64 {
        self.conductivity * e_squared
    }

    /// Classical order-of-magnitude estimate of the steady-state temperature
    /// rise in a microelectrode chamber driven with RMS voltage `v_rms`:
    /// `ΔT ≈ σ V_rms² / (8 k)`.
    pub fn temperature_rise(&self, v_rms: Volts) -> Kelvin {
        Kelvin::new(self.conductivity * v_rms.squared() / (8.0 * self.thermal_conductivity))
    }

    /// Total power dissipated in a chamber of volume `volume` with average
    /// squared field `e_squared_avg`.
    pub fn total_power(&self, e_squared_avg: f64, volume: CubicMeters) -> Watts {
        Watts::new(self.power_density(e_squared_avg) * volume.get())
    }

    /// Characteristic electro-thermal slip velocity scale (m/s) for a chamber
    /// of height `h`, temperature rise `delta_t` and drive `v_rms`. A
    /// reduced-order scaling of the Ramos/Castellanos expressions: the point
    /// is to know when it competes with the 10–100 µm/s DEP transport.
    pub fn electrothermal_velocity_scale(
        &self,
        medium: &Medium,
        v_rms: Volts,
        delta_t: Kelvin,
        chamber_height: Meters,
    ) -> f64 {
        // Fractional changes of conductivity and permittivity with
        // temperature (≈2 %/K and -0.4 %/K for water).
        let beta = 0.02 * delta_t.get();
        let eps = medium.absolute_permittivity();
        // U ~ (ε β E² h) / η with E ~ V/h.
        let e = v_rms.get() / chamber_height.get();
        eps * beta * e * e * chamber_height.get() / medium.viscosity.get() * 0.1
    }
}

/// Evaporation of the open sample drop / chamber.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaporationModel {
    /// Relative humidity of the ambient air (0–1).
    pub relative_humidity: f64,
    /// Exposed liquid surface area (m²).
    pub exposed_area: f64,
    /// Empirical mass-transfer coefficient (kg/(m²·s) at zero humidity,
    /// room temperature).
    pub transfer_coefficient: f64,
}

impl EvaporationModel {
    /// A 4 µl sessile drop exposed to lab air at 45 % relative humidity —
    /// the uncovered-chip situation the paper's packaging solves.
    pub fn open_drop_4ul() -> Self {
        Self {
            relative_humidity: 0.45,
            // A 4 µl hemispherical drop has a radius of ~1.24 mm and an
            // exposed cap area of ~9.7 mm².
            exposed_area: 9.7e-6,
            transfer_coefficient: 1.2e-4,
        }
    }

    /// A packaged microchamber with only small vent openings.
    pub fn packaged_chamber() -> Self {
        Self {
            relative_humidity: 0.9,
            exposed_area: 0.1e-6,
            transfer_coefficient: 1.2e-4,
        }
    }

    /// Evaporated volume after `duration` at ambient temperature `temp`.
    ///
    /// The rate grows roughly exponentially with temperature (≈7 %/K above
    /// 25 °C, a Clausius–Clapeyron linearisation).
    pub fn evaporated_volume(&self, duration: Seconds, temp: Kelvin) -> CubicMeters {
        let t_factor = (0.07 * (temp.as_celsius() - 25.0)).exp();
        let mass_rate = self.transfer_coefficient
            * (1.0 - self.relative_humidity)
            * self.exposed_area
            * t_factor;
        let volume_rate = mass_rate / 997.0;
        CubicMeters::new(volume_rate * duration.get())
    }

    /// Time for the given volume to evaporate completely at temperature
    /// `temp`.
    pub fn time_to_dry(&self, volume: CubicMeters, temp: Kelvin) -> Seconds {
        let per_second = self.evaporated_volume(Seconds::new(1.0), temp).get();
        if per_second <= 0.0 {
            Seconds::new(f64::INFINITY)
        } else {
            Seconds::new(volume.get() / per_second)
        }
    }

    /// Cooling power carried away by evaporation at temperature `temp`.
    pub fn evaporative_cooling(&self, temp: Kelvin) -> Watts {
        let volume_rate = self.evaporated_volume(Seconds::new(1.0), temp).get();
        Watts::new(volume_rate * 997.0 * WATER_LATENT_HEAT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heating_scales_with_conductivity_and_voltage_squared() {
        let low = JouleHeating::new(&Medium::physiological_low_conductivity());
        let pbs = JouleHeating::new(&Medium::phosphate_buffered_saline());
        let v = Volts::new(3.3);
        assert!(pbs.temperature_rise(v).get() > low.temperature_rise(v).get() * 10.0);
        let r1 = low.temperature_rise(Volts::new(2.0)).get();
        let r2 = low.temperature_rise(Volts::new(4.0)).get();
        assert!((r2 / r1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn low_conductivity_buffer_keeps_heating_mild() {
        // One reason the paper's chip uses a low-conductivity buffer: at a
        // 3.3 V drive the temperature rise stays well under 1 K.
        let h = JouleHeating::new(&Medium::physiological_low_conductivity());
        assert!(h.temperature_rise(Volts::new(3.3)).get() < 1.0);
        // In PBS the same drive would heat noticeably.
        let pbs = JouleHeating::new(&Medium::phosphate_buffered_saline());
        assert!(pbs.temperature_rise(Volts::new(3.3)).get() > 1.0);
    }

    #[test]
    fn power_density_and_total_power_consistent() {
        let h = JouleHeating::new(&Medium::physiological_low_conductivity());
        let e2 = (3.3f64 / 80e-6).powi(2);
        let vol = CubicMeters::from_microliters(4.0);
        let total = h.total_power(e2, vol);
        assert!((total.get() - h.power_density(e2) * vol.get()).abs() < 1e-15);
        assert!(total.get() > 0.0);
    }

    #[test]
    fn electrothermal_velocity_small_in_low_conductivity_buffer() {
        let medium = Medium::physiological_low_conductivity();
        let h = JouleHeating::new(&medium);
        let dt = h.temperature_rise(Volts::new(3.3));
        let u = h.electrothermal_velocity_scale(
            &medium,
            Volts::new(3.3),
            dt,
            Meters::from_micrometers(80.0),
        );
        // Should not overwhelm the 10-100 µm/s DEP transport.
        assert!(u < 100e-6, "u = {u} m/s");
    }

    #[test]
    fn open_drop_evaporates_in_tens_of_minutes() {
        // The 4 µl drop of the paper dries out on the tens-of-minutes scale
        // when uncovered — a key packaging constraint.
        let e = EvaporationModel::open_drop_4ul();
        let t = e.time_to_dry(
            CubicMeters::from_microliters(4.0),
            Kelvin::from_celsius(25.0),
        );
        assert!(
            t.as_minutes() > 2.0 && t.as_minutes() < 600.0,
            "time to dry = {} min",
            t.as_minutes()
        );
    }

    #[test]
    fn packaging_slows_evaporation_dramatically() {
        let open = EvaporationModel::open_drop_4ul();
        let packaged = EvaporationModel::packaged_chamber();
        let vol = CubicMeters::from_microliters(4.0);
        let temp = Kelvin::from_celsius(25.0);
        assert!(packaged.time_to_dry(vol, temp).get() > 20.0 * open.time_to_dry(vol, temp).get());
    }

    #[test]
    fn warmer_samples_evaporate_faster() {
        let e = EvaporationModel::open_drop_4ul();
        let cold = e.evaporated_volume(Seconds::from_minutes(10.0), Kelvin::from_celsius(20.0));
        let warm = e.evaporated_volume(Seconds::from_minutes(10.0), Kelvin::from_celsius(37.0));
        assert!(warm.get() > cold.get());
    }

    #[test]
    fn evaporative_cooling_is_positive_but_small() {
        let e = EvaporationModel::open_drop_4ul();
        let p = e.evaporative_cooling(Kelvin::from_celsius(25.0));
        assert!(p.get() > 0.0);
        assert!(p.get() < 1.0, "cooling power {p}");
    }
}
