//! A minimal complex-number type.
//!
//! The only complex arithmetic needed by the workspace is the evaluation of
//! complex permittivities and the Clausius–Mossotti factor, so a small local
//! type is preferred over pulling in an external dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i*im`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Argument (phase) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_squared();
        Self::new(self.re / d, -self.im / d)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(0.3, 0.7);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < 1e-12);
        assert!((c.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_squared(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn recip_and_identity() {
        let z = Complex::new(2.0, -3.0);
        let w = z * z.recip();
        assert!((w.re - 1.0).abs() < 1e-12);
        assert!(w.im.abs() < 1e-12);
        assert_eq!(Complex::ONE * z, z);
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex::new(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2i");
    }
}
