//! Property-based tests for the actuation-array crate.

use labchip_array::addressing::ProgrammingInterface;
use labchip_array::chip::ActuatorArray;
use labchip_array::pattern::{CagePattern, PatternKind};
use labchip_array::power::PowerModel;
use labchip_array::technology::TechnologyNode;
use labchip_physics::field::ElectrodePhase;
use labchip_units::{GridCoord, GridDims, Hertz, Meters};
use proptest::prelude::*;

fn node_strategy() -> impl Strategy<Value = TechnologyNode> {
    prop_oneof![
        Just(TechnologyNode::cmos_1000nm()),
        Just(TechnologyNode::cmos_350nm()),
        Just(TechnologyNode::cmos_180nm()),
        Just(TechnologyNode::cmos_130nm()),
        Just(TechnologyNode::cmos_90nm()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Programming then reading back any electrode returns the written phase,
    /// and resetting clears every counter-phase electrode.
    #[test]
    fn program_read_back_round_trip(side in 4u32..40, x in 0u32..40, y in 0u32..40) {
        let side = side.max(4);
        let mut chip = ActuatorArray::new(GridDims::square(side), TechnologyNode::cmos_350nm());
        let coord = GridCoord::new(x % side, y % side);
        chip.set_phase(coord, ElectrodePhase::CounterPhase).unwrap();
        prop_assert_eq!(chip.phase(coord).unwrap(), ElectrodePhase::CounterPhase);
        prop_assert_eq!(chip.counter_phase_count(), 1);
        chip.reset();
        prop_assert_eq!(chip.counter_phase_count(), 0);
    }

    /// The exported electrode plane always mirrors the programmed state.
    #[test]
    fn exported_plane_matches_array(side in 4u32..24, seed in 0u64..1000) {
        let dims = GridDims::square(side.max(4));
        let mut chip = ActuatorArray::new(dims, TechnologyNode::cmos_350nm());
        // Pseudo-random but deterministic pattern from the seed.
        for c in dims.iter() {
            if (c.x as u64 * 31 + c.y as u64 * 17 + seed).is_multiple_of(7) {
                chip.set_phase(c, ElectrodePhase::CounterPhase).unwrap();
            }
        }
        let plane = chip.to_electrode_plane();
        for c in dims.iter() {
            prop_assert_eq!(plane.phase(c), chip.phase(c).unwrap());
        }
        prop_assert_eq!(plane.amplitude(), chip.drive_voltage());
    }

    /// Lattice cage counts are within one row/column of the analytic estimate
    /// and never violate the minimum separation implied by the period.
    #[test]
    fn lattice_counts_and_separation(side in 8u32..64, period in 2u32..6) {
        let dims = GridDims::square(side);
        let pattern = CagePattern::new(
            dims,
            PatternKind::Lattice { period, offset: GridCoord::new(1, 1) },
        ).unwrap();
        let per_axis = (side - 1).div_ceil(period) as usize;
        prop_assert!(pattern.cage_count() <= per_axis * per_axis);
        prop_assert!(pattern.cage_count() >= (per_axis.saturating_sub(1)) * (per_axis.saturating_sub(1)));
        if pattern.cage_count() >= 2 {
            prop_assert_eq!(pattern.min_cage_separation(), Some(period));
        }
    }

    /// Shifting a pattern never increases the cage count and keeps every cage
    /// on the array.
    #[test]
    fn shifted_patterns_stay_on_the_array(side in 8u32..48, dx in -5i32..5, dy in -5i32..5) {
        let dims = GridDims::square(side);
        let pattern = CagePattern::standard_lattice(dims).unwrap();
        let shifted = pattern.shifted(dx, dy);
        prop_assert!(shifted.cage_count() <= pattern.cage_count());
        for site in shifted.cage_sites() {
            prop_assert!(dims.contains(*site));
        }
    }

    /// Full-frame programming time scales linearly with the number of rows
    /// and is always positive.
    #[test]
    fn programming_time_scales_with_rows(cols in 8u32..400, rows in 8u32..400) {
        let iface = ProgrammingInterface::date05_reference();
        let one = iface.full_frame_time(GridDims::new(cols, rows));
        let double = iface.full_frame_time(GridDims::new(cols, rows * 2));
        prop_assert!(one.get() > 0.0);
        prop_assert!((double.get() / one.get() - 2.0).abs() < 1e-9);
    }

    /// Dynamic power scales linearly with frequency and quadratically with
    /// drive voltage for every node.
    #[test]
    fn power_scaling_laws(node in node_strategy(), f_mhz in 0.1f64..10.0) {
        let chip = ActuatorArray::new(GridDims::square(64), node);
        let p1 = PowerModel::new(Hertz::from_megahertz(f_mhz)).dynamic_power(&chip);
        let p2 = PowerModel::new(Hertz::from_megahertz(2.0 * f_mhz)).dynamic_power(&chip);
        prop_assert!((p2.get() / p1.get() - 2.0).abs() < 1e-9);
    }

    /// The electrode pitch chosen for a cell never goes below the node's
    /// lithographic floor nor below the cell diameter.
    #[test]
    fn pitch_respects_cell_and_node(node in node_strategy(), cell_um in 5.0f64..40.0) {
        let cell = Meters::from_micrometers(cell_um);
        let pitch = node.electrode_pitch_for_cells(cell);
        prop_assert!(pitch >= cell);
        prop_assert!(pitch >= node.min_electrode_pitch);
    }
}
