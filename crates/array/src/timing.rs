//! Electronics-versus-mechanics timing budget.
//!
//! The paper's second consideration (§2): "typical speeds related to transfer
//! of mass (or heat) are quite slow compared to electronic timescale. There
//! is room to exploit this creatively." This module quantifies the slack: how
//! much electronic work (array programming, sensor scanning, averaging) fits
//! inside one mechanical cage step.

use crate::addressing::ProgrammingInterface;
use labchip_units::{GridDims, Meters, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// Timing budget of one cage-step cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBudget {
    /// Duration of one mechanical cage step (the time the cell needs to
    /// follow the cage to the next electrode).
    pub cage_step_period: Seconds,
    /// Time to reprogram the array for the next step.
    pub programming_time: Seconds,
    /// Time to scan the sensor array once.
    pub sensor_scan_time: Seconds,
    /// Number of sensor frames that fit in the remaining slack (available
    /// for averaging).
    pub frames_available_for_averaging: u32,
}

impl TimingBudget {
    /// Computes the budget for moving cells at `cell_speed` across an array
    /// of pitch `pitch`, reprogramming through `iface` and scanning sensors
    /// in `sensor_scan_time` per frame.
    pub fn compute(
        dims: GridDims,
        pitch: Meters,
        cell_speed: MetersPerSecond,
        iface: &ProgrammingInterface,
        sensor_scan_time: Seconds,
    ) -> Self {
        let cage_step_period = pitch / cell_speed;
        let programming_time = iface.full_frame_time(dims);
        let slack = (cage_step_period - programming_time).max(Seconds::ZERO);
        let frames = if sensor_scan_time.get() > 0.0 {
            (slack.get() / sensor_scan_time.get()).floor() as u32
        } else {
            u32::MAX
        };
        Self {
            cage_step_period,
            programming_time,
            sensor_scan_time,
            frames_available_for_averaging: frames,
        }
    }

    /// Ratio of the mechanical step period to the electronics busy time
    /// (programming + one sensor scan). Values ≫ 1 are the paper's "plenty of
    /// time" observation.
    pub fn slack_ratio(&self) -> f64 {
        let busy = self.programming_time.get() + self.sensor_scan_time.get();
        if busy <= 0.0 {
            f64::INFINITY
        } else {
            self.cage_step_period.get() / busy
        }
    }

    /// Returns `true` when the electronics keeps up with the requested cell
    /// speed (the array can be reprogrammed and scanned at least once per
    /// step).
    pub fn is_feasible(&self) -> bool {
        self.programming_time + self.sensor_scan_time <= self.cage_step_period
    }

    /// The maximum cell speed the electronics could sustain (one programming
    /// pass plus one sensor scan per step) at the given pitch.
    pub fn max_sustainable_speed(&self, pitch: Meters) -> MetersPerSecond {
        let busy = self.programming_time + self.sensor_scan_time;
        if busy.get() <= 0.0 {
            MetersPerSecond::new(f64::INFINITY)
        } else {
            pitch / busy
        }
    }
}

/// Programming-clock budget of a window of cage steps, as planned by the
/// sharded router: per step, only the rows containing changed electrodes are
/// rewritten (see [`ProgrammingInterface::plan_update`]); the budget
/// aggregates those partial updates over the window and compares them with
/// the mechanical step period.
///
/// This is the "shard clock budget" of the full-array pipeline: with the
/// array partitioned into shards, each cage step touches the union of rows
/// the shards moved, and the electronics must fit every rewrite inside one
/// cage step — the window is infeasible otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowBudget {
    /// Cage steps accumulated.
    pub steps: usize,
    /// Total rows rewritten across the window.
    pub rows_written: u64,
    /// Total electrodes whose phase changed.
    pub electrodes_changed: u64,
    /// Total programming time across the window.
    pub programming_time: Seconds,
    /// The busiest single step's programming time.
    pub worst_step_time: Seconds,
}

impl WindowBudget {
    /// Folds one cage step's update plan into the budget.
    pub fn record(&mut self, plan: &crate::addressing::UpdatePlan) {
        self.steps += 1;
        self.rows_written += u64::from(plan.rows_written);
        self.electrodes_changed += plan.electrodes_changed as u64;
        self.programming_time += plan.duration;
        if plan.duration > self.worst_step_time {
            self.worst_step_time = plan.duration;
        }
    }

    /// Merges another budget (e.g. per-shard budgets into an array budget
    /// when the shards share the programming interface sequentially).
    pub fn merge(&mut self, other: &WindowBudget) {
        self.steps += other.steps;
        self.rows_written += other.rows_written;
        self.electrodes_changed += other.electrodes_changed;
        self.programming_time += other.programming_time;
        if other.worst_step_time > self.worst_step_time {
            self.worst_step_time = other.worst_step_time;
        }
    }

    /// Mean programming time per cage step.
    pub fn mean_step_time(&self) -> Seconds {
        if self.steps == 0 {
            Seconds::ZERO
        } else {
            self.programming_time * (1.0 / self.steps as f64)
        }
    }

    /// Whether every step's rewrite fits inside the mechanical step period.
    pub fn fits_within(&self, step_period: Seconds) -> bool {
        self.worst_step_time <= step_period
    }

    /// Fraction of the mechanical step period the busiest rewrite occupies
    /// (the paper's slack argument, per window: values ≪ 1 are the norm).
    pub fn utilization(&self, step_period: Seconds) -> f64 {
        if step_period.get() <= 0.0 {
            f64::INFINITY
        } else {
            self.worst_step_time.get() / step_period.get()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_budget(speed_um_s: f64) -> TimingBudget {
        TimingBudget::compute(
            GridDims::new(320, 320),
            Meters::from_micrometers(20.0),
            MetersPerSecond::from_micrometers_per_second(speed_um_s),
            &ProgrammingInterface::date05_reference(),
            Seconds::from_millis(5.0),
        )
    }

    #[test]
    fn cells_are_slow_compared_to_electronics() {
        // C4: at 50 µm/s a cage step takes 0.4 s, while reprogramming the
        // whole array takes well under 1 ms — a slack ratio of ~70×.
        let b = reference_budget(50.0);
        assert!(b.cage_step_period.as_millis() > 100.0);
        assert!(b.programming_time.as_millis() < 1.5);
        assert!(b.slack_ratio() > 10.0, "slack = {}", b.slack_ratio());
        assert!(b.is_feasible());
    }

    #[test]
    fn slack_buys_sensor_averaging_frames() {
        // The slack can be spent on averaging sensor frames (E4): at 10 µm/s
        // there is room for hundreds of 5 ms frames per step.
        let slow = reference_budget(10.0);
        let fast = reference_budget(100.0);
        assert!(slow.frames_available_for_averaging > fast.frames_available_for_averaging);
        assert!(slow.frames_available_for_averaging > 100);
        assert!(fast.frames_available_for_averaging >= 1);
    }

    #[test]
    fn electronics_limited_speed_is_far_above_biology() {
        let b = reference_budget(50.0);
        let vmax = b.max_sustainable_speed(Meters::from_micrometers(20.0));
        // The electronics alone could sustain millimetres per second; the
        // 10-100 µm/s of the paper is set by the physics, not the chip.
        assert!(vmax.as_micrometers_per_second() > 1_000.0);
    }

    #[test]
    fn window_budget_accumulates_partial_updates() {
        use labchip_units::GridCoord;
        let iface = ProgrammingInterface::date05_reference();
        let dims = GridDims::new(320, 320);
        let mut budget = WindowBudget::default();
        for step in 0..8u32 {
            let changed = vec![GridCoord::new(10 + step, 5), GridCoord::new(10 + step, 200)];
            budget.record(&iface.plan_update(dims, &changed));
        }
        assert_eq!(budget.steps, 8);
        assert_eq!(budget.rows_written, 16);
        assert_eq!(budget.electrodes_changed, 16);
        assert!(budget.worst_step_time <= budget.programming_time);
        assert!(
            (budget.mean_step_time().get() - budget.programming_time.get() / 8.0).abs() < 1e-15
        );
        // Two rows per step is far below one 0.4 s cage step.
        let step_period = Seconds::new(0.4);
        assert!(budget.fits_within(step_period));
        assert!(budget.utilization(step_period) < 1e-3);

        let mut merged = WindowBudget::default();
        merged.merge(&budget);
        merged.merge(&budget);
        assert_eq!(merged.steps, 16);
        assert_eq!(merged.worst_step_time, budget.worst_step_time);
    }

    #[test]
    fn infeasible_when_speed_is_absurd() {
        let b = TimingBudget::compute(
            GridDims::new(320, 320),
            Meters::from_micrometers(20.0),
            MetersPerSecond::new(1.0),
            &ProgrammingInterface::date05_reference(),
            Seconds::from_millis(5.0),
        );
        assert!(!b.is_feasible());
        assert_eq!(b.frames_available_for_averaging, 0);
    }
}
