//! Electronics-versus-mechanics timing budget.
//!
//! The paper's second consideration (§2): "typical speeds related to transfer
//! of mass (or heat) are quite slow compared to electronic timescale. There
//! is room to exploit this creatively." This module quantifies the slack: how
//! much electronic work (array programming, sensor scanning, averaging) fits
//! inside one mechanical cage step.

use crate::addressing::ProgrammingInterface;
use labchip_units::{GridDims, Meters, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// Timing budget of one cage-step cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBudget {
    /// Duration of one mechanical cage step (the time the cell needs to
    /// follow the cage to the next electrode).
    pub cage_step_period: Seconds,
    /// Time to reprogram the array for the next step.
    pub programming_time: Seconds,
    /// Time to scan the sensor array once.
    pub sensor_scan_time: Seconds,
    /// Number of sensor frames that fit in the remaining slack (available
    /// for averaging).
    pub frames_available_for_averaging: u32,
}

impl TimingBudget {
    /// Computes the budget for moving cells at `cell_speed` across an array
    /// of pitch `pitch`, reprogramming through `iface` and scanning sensors
    /// in `sensor_scan_time` per frame.
    pub fn compute(
        dims: GridDims,
        pitch: Meters,
        cell_speed: MetersPerSecond,
        iface: &ProgrammingInterface,
        sensor_scan_time: Seconds,
    ) -> Self {
        let cage_step_period = pitch / cell_speed;
        let programming_time = iface.full_frame_time(dims);
        let slack = (cage_step_period - programming_time).max(Seconds::ZERO);
        let frames = if sensor_scan_time.get() > 0.0 {
            (slack.get() / sensor_scan_time.get()).floor() as u32
        } else {
            u32::MAX
        };
        Self {
            cage_step_period,
            programming_time,
            sensor_scan_time,
            frames_available_for_averaging: frames,
        }
    }

    /// Ratio of the mechanical step period to the electronics busy time
    /// (programming + one sensor scan). Values ≫ 1 are the paper's "plenty of
    /// time" observation.
    pub fn slack_ratio(&self) -> f64 {
        let busy = self.programming_time.get() + self.sensor_scan_time.get();
        if busy <= 0.0 {
            f64::INFINITY
        } else {
            self.cage_step_period.get() / busy
        }
    }

    /// Returns `true` when the electronics keeps up with the requested cell
    /// speed (the array can be reprogrammed and scanned at least once per
    /// step).
    pub fn is_feasible(&self) -> bool {
        self.programming_time + self.sensor_scan_time <= self.cage_step_period
    }

    /// The maximum cell speed the electronics could sustain (one programming
    /// pass plus one sensor scan per step) at the given pitch.
    pub fn max_sustainable_speed(&self, pitch: Meters) -> MetersPerSecond {
        let busy = self.programming_time + self.sensor_scan_time;
        if busy.get() <= 0.0 {
            MetersPerSecond::new(f64::INFINITY)
        } else {
            pitch / busy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_budget(speed_um_s: f64) -> TimingBudget {
        TimingBudget::compute(
            GridDims::new(320, 320),
            Meters::from_micrometers(20.0),
            MetersPerSecond::from_micrometers_per_second(speed_um_s),
            &ProgrammingInterface::date05_reference(),
            Seconds::from_millis(5.0),
        )
    }

    #[test]
    fn cells_are_slow_compared_to_electronics() {
        // C4: at 50 µm/s a cage step takes 0.4 s, while reprogramming the
        // whole array takes well under 1 ms — a slack ratio of ~70×.
        let b = reference_budget(50.0);
        assert!(b.cage_step_period.as_millis() > 100.0);
        assert!(b.programming_time.as_millis() < 1.5);
        assert!(b.slack_ratio() > 10.0, "slack = {}", b.slack_ratio());
        assert!(b.is_feasible());
    }

    #[test]
    fn slack_buys_sensor_averaging_frames() {
        // The slack can be spent on averaging sensor frames (E4): at 10 µm/s
        // there is room for hundreds of 5 ms frames per step.
        let slow = reference_budget(10.0);
        let fast = reference_budget(100.0);
        assert!(slow.frames_available_for_averaging > fast.frames_available_for_averaging);
        assert!(slow.frames_available_for_averaging > 100);
        assert!(fast.frames_available_for_averaging >= 1);
    }

    #[test]
    fn electronics_limited_speed_is_far_above_biology() {
        let b = reference_budget(50.0);
        let vmax = b.max_sustainable_speed(Meters::from_micrometers(20.0));
        // The electronics alone could sustain millimetres per second; the
        // 10-100 µm/s of the paper is set by the physics, not the chip.
        assert!(vmax.as_micrometers_per_second() > 1_000.0);
    }

    #[test]
    fn infeasible_when_speed_is_absurd() {
        let b = TimingBudget::compute(
            GridDims::new(320, 320),
            Meters::from_micrometers(20.0),
            MetersPerSecond::new(1.0),
            &ProgrammingInterface::date05_reference(),
            Seconds::from_millis(5.0),
        );
        assert!(!b.is_feasible());
        assert_eq!(b.frames_available_for_averaging, 0);
    }
}
