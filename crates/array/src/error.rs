//! Error type for the array crate.

use labchip_units::GridCoord;
use std::fmt;

/// Errors produced by the actuation-array models.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayError {
    /// A coordinate fell outside the electrode array.
    OutOfBounds {
        /// The offending coordinate.
        coord: GridCoord,
        /// Array columns.
        cols: u32,
        /// Array rows.
        rows: u32,
    },
    /// The requested pattern cannot be placed on the array.
    PatternDoesNotFit {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A configuration value was outside its valid range.
    InvalidConfiguration {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint.
        reason: String,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::OutOfBounds { coord, cols, rows } => {
                write!(f, "coordinate {coord} outside {cols}x{rows} array")
            }
            ArrayError::PatternDoesNotFit { reason } => {
                write!(f, "pattern does not fit the array: {reason}")
            }
            ArrayError::InvalidConfiguration { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArrayError::OutOfBounds {
            coord: GridCoord::new(400, 2),
            cols: 320,
            rows: 320,
        };
        assert!(e.to_string().contains("320x320"));
        let e = ArrayError::PatternDoesNotFit {
            reason: "spacing larger than array".into(),
        };
        assert!(e.to_string().contains("spacing"));
        let e = ArrayError::InvalidConfiguration {
            name: "clock",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("clock"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArrayError>();
    }
}
