//! Row/column programming interface and update planning.
//!
//! The per-pixel memory is written through a conventional row/column
//! interface: a row is selected, the column data bus presents the new phase
//! bits for (part of) that row, and the row is latched. The paper's §2
//! observes that even a full-frame reprogramming of >100,000 electrodes takes
//! well under a millisecond at modest clock rates — negligible compared with
//! the tens-of-milliseconds it takes a cell to follow a moving cage.

use crate::error::ArrayError;
use crate::pixel::PixelCell;
use labchip_units::{GridCoord, GridDims, Hertz, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Order in which rows are visited during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScanOrder {
    /// Rows visited top to bottom.
    #[default]
    RowMajor,
    /// Even rows first, then odd rows (reduces transient pattern skew for
    /// moving cages).
    Interlaced,
}

/// The digital programming interface of the array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgrammingInterface {
    /// Interface clock frequency.
    pub clock: Hertz,
    /// Width of the column data bus in bits (bits written per clock).
    pub bus_width_bits: u32,
    /// Extra clock cycles of row-select / latch overhead per row.
    pub row_overhead_cycles: u32,
    /// Scan order.
    pub scan_order: ScanOrder,
}

impl ProgrammingInterface {
    /// The DATE'05-era interface: 10 MHz clock, 32-bit bus, 4 cycles of row
    /// overhead.
    pub fn date05_reference() -> Self {
        Self {
            clock: Hertz::from_megahertz(10.0),
            bus_width_bits: 32,
            row_overhead_cycles: 4,
            scan_order: ScanOrder::RowMajor,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the clock or the bus
    /// width is zero.
    pub fn validate(&self) -> Result<(), ArrayError> {
        if self.clock.get() <= 0.0 {
            return Err(ArrayError::InvalidConfiguration {
                name: "clock",
                reason: "clock frequency must be positive".into(),
            });
        }
        if self.bus_width_bits == 0 {
            return Err(ArrayError::InvalidConfiguration {
                name: "bus_width_bits",
                reason: "bus width must be at least one bit".into(),
            });
        }
        Ok(())
    }

    /// Clock cycles needed to write one full row of an array with `cols`
    /// columns.
    pub fn cycles_per_row(&self, cols: u32) -> u64 {
        let bits = cols as u64 * PixelCell::MEMORY_BITS as u64;
        let data_cycles = bits.div_ceil(self.bus_width_bits as u64);
        data_cycles + self.row_overhead_cycles as u64
    }

    /// Time to reprogram every electrode of a `dims`-sized array.
    pub fn full_frame_time(&self, dims: GridDims) -> Seconds {
        let cycles = self.cycles_per_row(dims.cols) * dims.rows as u64;
        Seconds::new(cycles as f64 / self.clock.get())
    }

    /// Sustainable full-frame reprogramming rate (frames per second).
    pub fn frame_rate(&self, dims: GridDims) -> f64 {
        1.0 / self.full_frame_time(dims).get()
    }

    /// Plans a partial update touching only the rows that contain changed
    /// electrodes.
    pub fn plan_update(&self, dims: GridDims, changed: &[GridCoord]) -> UpdatePlan {
        let rows: BTreeSet<u32> = changed
            .iter()
            .filter(|c| dims.contains(**c))
            .map(|c| c.y)
            .collect();
        let cycles = self.cycles_per_row(dims.cols) * rows.len() as u64;
        UpdatePlan {
            rows_written: rows.len() as u32,
            electrodes_changed: changed.len(),
            duration: Seconds::new(cycles as f64 / self.clock.get()),
        }
    }
}

impl Default for ProgrammingInterface {
    fn default() -> Self {
        Self::date05_reference()
    }
}

/// Result of planning a (partial) array update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdatePlan {
    /// Number of rows that must be rewritten.
    pub rows_written: u32,
    /// Number of electrodes whose phase changes.
    pub electrodes_changed: usize,
    /// Time the update occupies on the programming interface.
    pub duration: Seconds,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_interface_validates() {
        assert!(ProgrammingInterface::date05_reference().validate().is_ok());
        let bad_clock = ProgrammingInterface {
            clock: Hertz::new(0.0),
            ..ProgrammingInterface::date05_reference()
        };
        assert!(bad_clock.validate().is_err());
        let bad_bus = ProgrammingInterface {
            bus_width_bits: 0,
            ..ProgrammingInterface::date05_reference()
        };
        assert!(bad_bus.validate().is_err());
    }

    #[test]
    fn full_frame_programming_is_sub_millisecond_at_paper_scale() {
        // C4/E3: reprogramming all 102,400 electrodes takes ~0.7 ms at
        // 10 MHz — two orders of magnitude faster than a cage step.
        let iface = ProgrammingInterface::date05_reference();
        let t = iface.full_frame_time(GridDims::new(320, 320));
        assert!(t.as_millis() < 1.5, "frame time = {} ms", t.as_millis());
        assert!(t.as_millis() > 0.1);
        assert!(iface.frame_rate(GridDims::new(320, 320)) > 500.0);
    }

    #[test]
    fn cycles_per_row_accounts_for_bus_width_and_overhead() {
        let iface = ProgrammingInterface::date05_reference();
        // 320 columns × 2 bits = 640 bits / 32-bit bus = 20 cycles + 4 = 24.
        assert_eq!(iface.cycles_per_row(320), 24);
        // Non-multiple widths round up.
        assert_eq!(
            iface.cycles_per_row(17),
            (17.0f64 * 2.0 / 32.0).ceil() as u64 + 4
        );
    }

    #[test]
    fn partial_update_touches_only_affected_rows() {
        let iface = ProgrammingInterface::date05_reference();
        let dims = GridDims::new(320, 320);
        let changed = vec![
            GridCoord::new(10, 5),
            GridCoord::new(200, 5),
            GridCoord::new(17, 200),
        ];
        let plan = iface.plan_update(dims, &changed);
        assert_eq!(plan.rows_written, 2);
        assert_eq!(plan.electrodes_changed, 3);
        assert!(plan.duration < iface.full_frame_time(dims));
        // Out-of-range coordinates are ignored.
        let plan2 = iface.plan_update(dims, &[GridCoord::new(400, 400)]);
        assert_eq!(plan2.rows_written, 0);
        assert_eq!(plan2.duration, Seconds::new(0.0));
    }

    #[test]
    fn faster_clock_programs_faster() {
        let slow = ProgrammingInterface::date05_reference();
        let fast = ProgrammingInterface {
            clock: Hertz::from_megahertz(50.0),
            ..slow
        };
        let dims = GridDims::new(320, 320);
        assert!(fast.full_frame_time(dims) < slow.full_frame_time(dims));
    }
}
