//! The actuation array: electrodes, per-pixel memory and its mapping to the
//! electric-field boundary conditions.

use crate::error::ArrayError;
use crate::pixel::{PixelCell, SensorSite};
use crate::technology::TechnologyNode;
use labchip_physics::field::{ElectrodePhase, ElectrodePlane};
use labchip_units::{Euros, GridCoord, GridDims, Meters, Volts};
use serde::{Deserialize, Serialize};

/// A programmable CMOS actuation array.
///
/// The array owns one [`PixelCell`] per electrode; programming the array
/// means writing the per-pixel phase memory. [`ActuatorArray::to_electrode_plane`]
/// exports the programmed state as the boundary conditions consumed by the
/// field models of `labchip-physics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuatorArray {
    dims: GridDims,
    technology: TechnologyNode,
    pitch: Meters,
    chamber_height: Meters,
    use_io_drivers: bool,
    pixels: Vec<PixelCell>,
}

impl ActuatorArray {
    /// Default chamber (liquid gap) height between the electrode plane and
    /// the lid, in micrometres.
    pub const DEFAULT_CHAMBER_HEIGHT_UM: f64 = 80.0;

    /// Creates an array with the node's cell-sized default pitch (for 25 µm
    /// cells) and the default chamber height.
    pub fn new(dims: GridDims, technology: TechnologyNode) -> Self {
        let pitch = technology.electrode_pitch_for_cells(Meters::from_micrometers(25.0));
        Self::with_geometry(
            dims,
            technology,
            pitch,
            Meters::from_micrometers(Self::DEFAULT_CHAMBER_HEIGHT_UM),
        )
    }

    /// Creates an array with explicit pitch and chamber height.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the geometry is non-positive.
    pub fn with_geometry(
        dims: GridDims,
        technology: TechnologyNode,
        pitch: Meters,
        chamber_height: Meters,
    ) -> Self {
        assert!(dims.count() > 0, "array must have at least one electrode");
        assert!(pitch.get() > 0.0 && chamber_height.get() > 0.0);
        Self {
            dims,
            technology,
            pitch,
            chamber_height,
            use_io_drivers: false,
            pixels: vec![PixelCell::new(); dims.count() as usize],
        }
    }

    /// The paper's chip: a 320×320 array (102,400 electrodes) at 20 µm pitch
    /// in 0.35 µm CMOS with embedded capacitive sensors.
    pub fn date05_reference() -> Self {
        let mut array = Self::with_geometry(
            GridDims::new(320, 320),
            TechnologyNode::cmos_350nm(),
            Meters::from_micrometers(20.0),
            Meters::from_micrometers(Self::DEFAULT_CHAMBER_HEIGHT_UM),
        );
        array.install_sensors(SensorSite::Capacitive);
        array
    }

    /// Array dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Number of electrodes.
    #[inline]
    pub fn electrode_count(&self) -> u64 {
        self.dims.count()
    }

    /// Electrode pitch.
    #[inline]
    pub fn pitch(&self) -> Meters {
        self.pitch
    }

    /// Chamber height.
    #[inline]
    pub fn chamber_height(&self) -> Meters {
        self.chamber_height
    }

    /// The technology node the array is built in.
    #[inline]
    pub fn technology(&self) -> &TechnologyNode {
        &self.technology
    }

    /// Whether the electrode drivers use the thick-oxide I/O devices (higher
    /// drive voltage at the cost of area).
    #[inline]
    pub fn uses_io_drivers(&self) -> bool {
        self.use_io_drivers
    }

    /// Enables or disables thick-oxide I/O drivers.
    pub fn set_io_drivers(&mut self, enabled: bool) {
        self.use_io_drivers = enabled;
    }

    /// Drive amplitude available to the electrodes.
    pub fn drive_voltage(&self) -> Volts {
        self.technology.max_drive_voltage(self.use_io_drivers)
    }

    /// Installs the same sensor type under every electrode.
    pub fn install_sensors(&mut self, sensor: SensorSite) {
        for p in &mut self.pixels {
            p.sensor = sensor;
        }
    }

    /// Access to one pixel.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::OutOfBounds`] if the coordinate is outside the
    /// array.
    pub fn pixel(&self, at: GridCoord) -> Result<&PixelCell, ArrayError> {
        if !self.dims.contains(at) {
            return Err(self.out_of_bounds(at));
        }
        Ok(&self.pixels[self.dims.index_of(at)])
    }

    /// Programmed phase of one electrode.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::OutOfBounds`] if the coordinate is outside the
    /// array.
    pub fn phase(&self, at: GridCoord) -> Result<ElectrodePhase, ArrayError> {
        self.pixel(at).map(|p| p.phase)
    }

    /// Programs the phase of one electrode.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::OutOfBounds`] if the coordinate is outside the
    /// array.
    pub fn set_phase(&mut self, at: GridCoord, phase: ElectrodePhase) -> Result<(), ArrayError> {
        if !self.dims.contains(at) {
            return Err(self.out_of_bounds(at));
        }
        let idx = self.dims.index_of(at);
        self.pixels[idx].phase = phase;
        Ok(())
    }

    /// Resets every electrode to the in-phase state.
    pub fn reset(&mut self) {
        for p in &mut self.pixels {
            p.phase = ElectrodePhase::InPhase;
        }
    }

    /// Number of electrodes currently programmed to counter-phase.
    pub fn counter_phase_count(&self) -> usize {
        self.pixels
            .iter()
            .filter(|p| p.phase == ElectrodePhase::CounterPhase)
            .count()
    }

    /// Coordinates of all counter-phase electrodes (cage sites when using
    /// single-electrode cages).
    pub fn counter_phase_sites(&self) -> Vec<GridCoord> {
        self.dims
            .iter()
            .filter(|c| self.pixels[self.dims.index_of(*c)].phase == ElectrodePhase::CounterPhase)
            .collect()
    }

    /// Total configuration memory of the array in bits.
    pub fn memory_bits(&self) -> u64 {
        self.electrode_count() * PixelCell::MEMORY_BITS as u64
    }

    /// Active-area silicon cost of this array (excluding mask NRE).
    pub fn die_cost(&self) -> Euros {
        self.technology.die_cost(self.electrode_count(), self.pitch)
    }

    /// Exports the programmed state as field-model boundary conditions.
    pub fn to_electrode_plane(&self) -> ElectrodePlane {
        let mut plane = ElectrodePlane::new(
            self.dims,
            self.pitch,
            self.drive_voltage(),
            self.chamber_height,
        );
        for (i, pixel) in self.pixels.iter().enumerate() {
            if pixel.phase != ElectrodePhase::InPhase {
                plane.set_phase(self.dims.coord_of(i), pixel.phase);
            }
        }
        plane
    }

    /// Counts the differences (electrodes whose phase changed) between this
    /// array state and another of identical dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PatternDoesNotFit`] if the dimensions differ.
    pub fn diff_count(&self, other: &ActuatorArray) -> Result<usize, ArrayError> {
        if self.dims != other.dims {
            return Err(ArrayError::PatternDoesNotFit {
                reason: format!("dimensions differ: {} vs {}", self.dims, other.dims),
            });
        }
        Ok(self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .filter(|(a, b)| a.phase != b.phase)
            .count())
    }

    fn out_of_bounds(&self, coord: GridCoord) -> ArrayError {
        ArrayError::OutOfBounds {
            coord,
            cols: self.dims.cols,
            rows: self.dims.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ActuatorArray {
        ActuatorArray::with_geometry(
            GridDims::square(16),
            TechnologyNode::cmos_350nm(),
            Meters::from_micrometers(20.0),
            Meters::from_micrometers(80.0),
        )
    }

    #[test]
    fn reference_chip_matches_paper_scale() {
        let chip = ActuatorArray::date05_reference();
        assert!(chip.electrode_count() > 100_000);
        assert_eq!(chip.pitch(), Meters::from_micrometers(20.0));
        assert_eq!(chip.drive_voltage(), Volts::new(3.3));
        assert_eq!(chip.memory_bits(), 102_400 * 2);
        assert_eq!(
            chip.pixel(GridCoord::new(0, 0)).unwrap().sensor,
            SensorSite::Capacitive
        );
    }

    #[test]
    fn programming_and_reset_round_trip() {
        let mut chip = small();
        let site = GridCoord::new(5, 7);
        chip.set_phase(site, ElectrodePhase::CounterPhase).unwrap();
        assert_eq!(chip.phase(site).unwrap(), ElectrodePhase::CounterPhase);
        assert_eq!(chip.counter_phase_count(), 1);
        assert_eq!(chip.counter_phase_sites(), vec![site]);
        chip.reset();
        assert_eq!(chip.counter_phase_count(), 0);
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let mut chip = small();
        let outside = GridCoord::new(16, 0);
        assert!(matches!(
            chip.phase(outside),
            Err(ArrayError::OutOfBounds { .. })
        ));
        assert!(matches!(
            chip.set_phase(outside, ElectrodePhase::CounterPhase),
            Err(ArrayError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn exported_plane_reflects_programmed_phases() {
        let mut chip = small();
        chip.set_phase(GridCoord::new(3, 3), ElectrodePhase::CounterPhase)
            .unwrap();
        chip.set_phase(GridCoord::new(8, 8), ElectrodePhase::Floating)
            .unwrap();
        let plane = chip.to_electrode_plane();
        assert_eq!(
            plane.phase(GridCoord::new(3, 3)),
            ElectrodePhase::CounterPhase
        );
        assert_eq!(plane.phase(GridCoord::new(8, 8)), ElectrodePhase::Floating);
        assert_eq!(plane.phase(GridCoord::new(0, 0)), ElectrodePhase::InPhase);
        assert_eq!(plane.amplitude(), Volts::new(3.3));
        assert_eq!(plane.pitch(), chip.pitch());
    }

    #[test]
    fn io_drivers_raise_drive_voltage() {
        let mut chip = ActuatorArray::with_geometry(
            GridDims::square(8),
            TechnologyNode::cmos_180nm(),
            Meters::from_micrometers(20.0),
            Meters::from_micrometers(80.0),
        );
        assert_eq!(chip.drive_voltage(), Volts::new(1.8));
        chip.set_io_drivers(true);
        assert!(chip.uses_io_drivers());
        assert_eq!(chip.drive_voltage(), Volts::new(3.3));
        assert_eq!(chip.to_electrode_plane().amplitude(), Volts::new(3.3));
    }

    #[test]
    fn diff_count_counts_changed_pixels() {
        let a = small();
        let mut b = small();
        b.set_phase(GridCoord::new(1, 1), ElectrodePhase::CounterPhase)
            .unwrap();
        b.set_phase(GridCoord::new(2, 2), ElectrodePhase::Floating)
            .unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 2);
        assert_eq!(a.diff_count(&a).unwrap(), 0);
        let other = ActuatorArray::new(GridDims::square(8), TechnologyNode::cmos_350nm());
        assert!(a.diff_count(&other).is_err());
    }

    #[test]
    fn die_cost_positive_and_scales_with_size() {
        let small_chip = small();
        let big = ActuatorArray::date05_reference();
        assert!(small_chip.die_cost().get() > 0.0);
        assert!(big.die_cost().get() > small_chip.die_cost().get());
    }
}
