//! # labchip-array
//!
//! Model of the CMOS sensor/actuator array at the heart of the DATE'05
//! paper's biochip: a regular grid of more than 100,000 electrodes, each with
//! a small amount of local memory that selects whether the electrode is
//! driven in phase or in counter-phase with the lid, plus the row/column
//! programming interface, timing and power models, and the technology-node
//! trade-offs that drive the paper's "older generation technologies may best
//! fit your purpose" argument.
//!
//! ## Example
//!
//! ```
//! use labchip_array::prelude::*;
//! use labchip_units::GridDims;
//!
//! // The paper's chip: >100,000 electrodes in a mature 0.35 µm technology.
//! let chip = ActuatorArray::new(GridDims::new(320, 320), TechnologyNode::cmos_350nm());
//! assert!(chip.electrode_count() > 100_000);
//! assert!(chip.technology().supply_voltage.get() > 3.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addressing;
pub mod chip;
pub mod error;
pub mod pattern;
pub mod pixel;
pub mod power;
pub mod technology;
pub mod timing;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::addressing::{ProgrammingInterface, ScanOrder, UpdatePlan};
    pub use crate::chip::ActuatorArray;
    pub use crate::error::ArrayError;
    pub use crate::pattern::{CagePattern, PatternKind};
    pub use crate::pixel::PixelCell;
    pub use crate::power::PowerModel;
    pub use crate::technology::TechnologyNode;
    pub use crate::timing::{TimingBudget, WindowBudget};
}

pub use error::ArrayError;
