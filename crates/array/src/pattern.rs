//! Voltage-pattern generation.
//!
//! A "pattern" decides which electrodes are driven in counter-phase — i.e.
//! where DEP cages form. The paper's headline claim (§1) is that programming
//! the array creates *tens of thousands* of cages simultaneously and that
//! changing the pattern *shifts* the cages, dragging the trapped cells along.

use crate::chip::ActuatorArray;
use crate::error::ArrayError;
use labchip_physics::field::ElectrodePhase;
use labchip_units::{GridCoord, GridDims};
use serde::{Deserialize, Serialize};

/// The supported families of cage patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// No cages: every electrode in phase.
    Uniform,
    /// One cage at the given electrode.
    SingleCage(GridCoord),
    /// A regular lattice of cages with the given period (in electrodes) in
    /// both directions, starting at the given offset. A period of `p` yields
    /// roughly `cols*rows/p²` cages.
    Lattice {
        /// Lattice period in electrodes (≥ 2 so that each cage keeps in-phase
        /// neighbours).
        period: u32,
        /// Offset of the first cage from the array origin.
        offset: GridCoord,
    },
    /// An explicit list of cage sites.
    Custom(Vec<GridCoord>),
}

/// A cage pattern bound to an array size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CagePattern {
    dims: GridDims,
    kind: PatternKind,
    sites: Vec<GridCoord>,
}

impl CagePattern {
    /// Builds a pattern of the given kind for an array of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PatternDoesNotFit`] when the pattern refers to
    /// electrodes outside the array or uses an invalid period, and
    /// [`ArrayError::InvalidConfiguration`] for a lattice period below 2.
    pub fn new(dims: GridDims, kind: PatternKind) -> Result<Self, ArrayError> {
        let sites = match &kind {
            PatternKind::Uniform => Vec::new(),
            PatternKind::SingleCage(at) => {
                if !dims.contains(*at) {
                    return Err(ArrayError::PatternDoesNotFit {
                        reason: format!("cage site {at} outside {dims}"),
                    });
                }
                vec![*at]
            }
            PatternKind::Lattice { period, offset } => {
                if *period < 2 {
                    return Err(ArrayError::InvalidConfiguration {
                        name: "period",
                        reason: "lattice period must be at least 2 electrodes".into(),
                    });
                }
                if !dims.contains(*offset) {
                    return Err(ArrayError::PatternDoesNotFit {
                        reason: format!("lattice offset {offset} outside {dims}"),
                    });
                }
                let mut sites = Vec::new();
                let mut y = offset.y;
                while y < dims.rows {
                    let mut x = offset.x;
                    while x < dims.cols {
                        sites.push(GridCoord::new(x, y));
                        x += period;
                    }
                    y += period;
                }
                sites
            }
            PatternKind::Custom(list) => {
                for c in list {
                    if !dims.contains(*c) {
                        return Err(ArrayError::PatternDoesNotFit {
                            reason: format!("cage site {c} outside {dims}"),
                        });
                    }
                }
                let mut sites = list.clone();
                sites.sort_unstable();
                sites.dedup();
                sites
            }
        };
        Ok(Self { dims, kind, sites })
    }

    /// Convenience constructor for the standard cage lattice used in the
    /// scale experiment (E1): period 3, offset (1,1).
    ///
    /// # Errors
    ///
    /// Returns an error if the array is smaller than the offset.
    pub fn standard_lattice(dims: GridDims) -> Result<Self, ArrayError> {
        Self::new(
            dims,
            PatternKind::Lattice {
                period: 3,
                offset: GridCoord::new(1, 1),
            },
        )
    }

    /// The array size this pattern was built for.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The pattern kind.
    pub fn kind(&self) -> &PatternKind {
        &self.kind
    }

    /// The cage sites (counter-phase electrodes), sorted row-major for
    /// lattices and custom patterns.
    pub fn cage_sites(&self) -> &[GridCoord] {
        &self.sites
    }

    /// Number of cages in the pattern.
    pub fn cage_count(&self) -> usize {
        self.sites.len()
    }

    /// Returns a copy of the pattern translated by `(dx, dy)` electrodes.
    /// Cage sites that would leave the array are dropped — this mirrors the
    /// hardware, where a cage shifted past the array edge releases its cell.
    pub fn shifted(&self, dx: i32, dy: i32) -> Self {
        let sites: Vec<GridCoord> = self
            .sites
            .iter()
            .filter_map(|c| c.offset(dx, dy))
            .filter(|c| self.dims.contains(*c))
            .collect();
        Self {
            dims: self.dims,
            kind: PatternKind::Custom(sites.clone()),
            sites,
        }
    }

    /// Writes the pattern into an actuator array: cage sites become
    /// counter-phase, every other electrode in-phase.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PatternDoesNotFit`] if the array dimensions do
    /// not match the pattern.
    pub fn apply_to(&self, array: &mut ActuatorArray) -> Result<(), ArrayError> {
        if array.dims() != self.dims {
            return Err(ArrayError::PatternDoesNotFit {
                reason: format!(
                    "pattern built for {} but array is {}",
                    self.dims,
                    array.dims()
                ),
            });
        }
        array.reset();
        for &site in &self.sites {
            array.set_phase(site, ElectrodePhase::CounterPhase)?;
        }
        Ok(())
    }

    /// Minimum Chebyshev distance between any two cage sites, or `None` for
    /// patterns with fewer than two cages. Cages closer than 2 electrodes
    /// merge into a single trap, so this is a pattern-quality check.
    pub fn min_cage_separation(&self) -> Option<u32> {
        if self.sites.len() < 2 {
            return None;
        }
        let mut min = u32::MAX;
        // Patterns are at most tens of thousands of sites; an O(n²) check is
        // only used in tests and validation, not in the simulation loop.
        for (i, a) in self.sites.iter().enumerate() {
            for b in &self.sites[i + 1..] {
                min = min.min(a.chebyshev(*b));
            }
        }
        Some(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::TechnologyNode;

    #[test]
    fn uniform_pattern_has_no_cages() {
        let p = CagePattern::new(GridDims::square(16), PatternKind::Uniform).unwrap();
        assert_eq!(p.cage_count(), 0);
        assert!(p.min_cage_separation().is_none());
    }

    #[test]
    fn single_cage_pattern() {
        let dims = GridDims::square(16);
        let p = CagePattern::new(dims, PatternKind::SingleCage(GridCoord::new(8, 8))).unwrap();
        assert_eq!(p.cage_count(), 1);
        assert!(CagePattern::new(dims, PatternKind::SingleCage(GridCoord::new(16, 0))).is_err());
    }

    #[test]
    fn lattice_pattern_counts() {
        let dims = GridDims::square(9);
        let p = CagePattern::new(
            dims,
            PatternKind::Lattice {
                period: 3,
                offset: GridCoord::new(1, 1),
            },
        )
        .unwrap();
        // Cages at x,y in {1,4,7} → 9 cages.
        assert_eq!(p.cage_count(), 9);
        assert_eq!(p.min_cage_separation(), Some(3));
    }

    #[test]
    fn paper_scale_lattice_creates_tens_of_thousands_of_cages() {
        // E1/C1: a 320×320 array programmed with the standard lattice hosts
        // more than 10,000 simultaneous cages.
        let p = CagePattern::standard_lattice(GridDims::new(320, 320)).unwrap();
        assert!(p.cage_count() > 10_000, "got {}", p.cage_count());
        assert!(p.cage_count() < 102_400);
    }

    #[test]
    fn lattice_period_below_two_is_invalid() {
        let err = CagePattern::new(
            GridDims::square(8),
            PatternKind::Lattice {
                period: 1,
                offset: GridCoord::new(0, 0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, ArrayError::InvalidConfiguration { .. }));
    }

    #[test]
    fn custom_pattern_deduplicates_and_validates() {
        let dims = GridDims::square(8);
        let p = CagePattern::new(
            dims,
            PatternKind::Custom(vec![
                GridCoord::new(2, 2),
                GridCoord::new(2, 2),
                GridCoord::new(5, 5),
            ]),
        )
        .unwrap();
        assert_eq!(p.cage_count(), 2);
        assert!(CagePattern::new(dims, PatternKind::Custom(vec![GridCoord::new(9, 0)])).is_err());
    }

    #[test]
    fn shift_moves_cages_and_drops_at_edges() {
        let dims = GridDims::square(8);
        let p = CagePattern::new(
            dims,
            PatternKind::Custom(vec![GridCoord::new(1, 1), GridCoord::new(7, 7)]),
        )
        .unwrap();
        let shifted = p.shifted(1, 0);
        assert_eq!(shifted.cage_count(), 1);
        assert_eq!(shifted.cage_sites(), &[GridCoord::new(2, 1)]);
        let back = p.shifted(-2, 0);
        // (1,1) → underflow dropped; (7,7) → (5,7).
        assert_eq!(back.cage_sites(), &[GridCoord::new(5, 7)]);
    }

    #[test]
    fn apply_writes_phases_into_array() {
        let dims = GridDims::square(9);
        let mut array = ActuatorArray::with_geometry(
            dims,
            TechnologyNode::cmos_350nm(),
            labchip_units::Meters::from_micrometers(20.0),
            labchip_units::Meters::from_micrometers(80.0),
        );
        let p = CagePattern::standard_lattice(dims).unwrap();
        p.apply_to(&mut array).unwrap();
        assert_eq!(array.counter_phase_count(), p.cage_count());
        // Re-applying a shifted pattern reprograms cleanly.
        let shifted = p.shifted(1, 0);
        shifted.apply_to(&mut array).unwrap();
        assert_eq!(array.counter_phase_count(), shifted.cage_count());
        // Mismatched dimensions are rejected.
        let wrong = CagePattern::standard_lattice(GridDims::square(8)).unwrap();
        assert!(wrong.apply_to(&mut array).is_err());
    }
}
