//! Per-pixel circuitry model.
//!
//! Each electrode site of the paper's chip contains a small static memory
//! that selects the drive phase, the analogue switches routing one of the two
//! drive phases (or nothing) to the electrode plate, and optionally an
//! embedded sensor front-end (photodiode or capacitance-sensing amplifier).

use crate::technology::TechnologyNode;
use labchip_physics::field::ElectrodePhase;
use labchip_units::Meters;
use serde::{Deserialize, Serialize};

/// Which embedded sensor (if any) a pixel carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SensorSite {
    /// No sensor under this electrode.
    #[default]
    None,
    /// Optical sensor (photodiode + readout).
    Optical,
    /// Capacitive sensor (electrode doubles as sense plate).
    Capacitive,
}

/// State and structure of one actuation pixel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelCell {
    /// Programmed drive phase.
    pub phase: ElectrodePhase,
    /// Embedded sensor.
    pub sensor: SensorSite,
}

impl PixelCell {
    /// A freshly reset pixel: in-phase drive, no sensor.
    pub fn new() -> Self {
        Self {
            phase: ElectrodePhase::InPhase,
            sensor: SensorSite::None,
        }
    }

    /// A pixel with a capacitive sensor, as in the ISSCC'04 readout chip.
    pub fn with_capacitive_sensor() -> Self {
        Self {
            phase: ElectrodePhase::InPhase,
            sensor: SensorSite::Capacitive,
        }
    }

    /// A pixel with an optical sensor.
    pub fn with_optical_sensor() -> Self {
        Self {
            phase: ElectrodePhase::InPhase,
            sensor: SensorSite::Optical,
        }
    }

    /// Memory bits stored in the pixel: 2 bits encode the three phase states
    /// (in-phase / counter-phase / floating).
    pub const MEMORY_BITS: u32 = 2;

    /// Approximate transistor count of the pixel for area estimation:
    /// 2 SRAM bits (12 T), phase multiplexer (6 T), plus the sensor
    /// front-end when present.
    pub fn transistor_count(&self) -> u32 {
        let base = 12 + 6;
        match self.sensor {
            SensorSite::None => base,
            SensorSite::Optical => base + 4,
            SensorSite::Capacitive => base + 10,
        }
    }

    /// Estimated silicon area of the pixel logic in the given technology,
    /// using 50 F² per transistor (F = feature size), typical of dense
    /// custom layout. The point of this estimate is to confirm the logic
    /// fits under a cell-sized electrode even on old nodes.
    pub fn logic_area(&self, node: &TechnologyNode) -> f64 {
        let f = node.feature_size.get();
        self.transistor_count() as f64 * 50.0 * f * f
    }

    /// Returns `true` when the pixel logic fits under an electrode of the
    /// given pitch in the given technology.
    pub fn fits_under_electrode(&self, node: &TechnologyNode, pitch: Meters) -> bool {
        self.logic_area(node) <= pitch.get() * pitch.get()
    }
}

impl Default for PixelCell {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_pixel_is_in_phase_without_sensor() {
        let p = PixelCell::new();
        assert_eq!(p.phase, ElectrodePhase::InPhase);
        assert_eq!(p.sensor, SensorSite::None);
        assert_eq!(p, PixelCell::default());
    }

    #[test]
    fn sensor_variants_increase_transistor_count() {
        let bare = PixelCell::new();
        let optical = PixelCell::with_optical_sensor();
        let capacitive = PixelCell::with_capacitive_sensor();
        assert!(optical.transistor_count() > bare.transistor_count());
        assert!(capacitive.transistor_count() > optical.transistor_count());
    }

    #[test]
    fn pixel_fits_under_cell_sized_electrode_even_on_old_nodes() {
        // The paper's point: at a 20-35 µm pitch even 1.0 µm CMOS has plenty
        // of room for the pixel logic.
        let pixel = PixelCell::with_capacitive_sensor();
        for node in TechnologyNode::ladder() {
            let pitch = node.electrode_pitch_for_cells(Meters::from_micrometers(25.0));
            assert!(
                pixel.fits_under_electrode(&node, pitch),
                "pixel does not fit on {}",
                node.name
            );
        }
    }

    #[test]
    fn pixel_does_not_fit_under_tiny_electrode_on_old_node() {
        let pixel = PixelCell::with_capacitive_sensor();
        let node = TechnologyNode::cmos_1000nm();
        assert!(!pixel.fits_under_electrode(&node, Meters::from_micrometers(1.5)));
    }

    #[test]
    fn logic_area_shrinks_with_feature_size() {
        let pixel = PixelCell::new();
        let old = pixel.logic_area(&TechnologyNode::cmos_1000nm());
        let new = pixel.logic_area(&TechnologyNode::cmos_130nm());
        assert!(new < old);
    }
}
