//! Power estimation of the actuation array.
//!
//! The dominant term is the dynamic power of driving every electrode plate
//! (plus its driver) at the DEP excitation frequency; the per-pixel leakage
//! of the chosen technology node adds a static floor.

use crate::chip::ActuatorArray;
use labchip_units::{Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Power model of a programmed actuation array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// DEP drive (excitation) frequency.
    pub drive_frequency: Hertz,
    /// Fraction of electrodes actively toggling (floating electrodes do not
    /// switch).
    pub active_fraction: f64,
}

impl PowerModel {
    /// Creates a power model at the given drive frequency with every
    /// electrode active.
    pub fn new(drive_frequency: Hertz) -> Self {
        Self {
            drive_frequency,
            active_fraction: 1.0,
        }
    }

    /// Dynamic (switching) power of the array: `N_active · C · V² · f`.
    pub fn dynamic_power(&self, array: &ActuatorArray) -> Watts {
        let n = array.electrode_count() as f64 * self.active_fraction.clamp(0.0, 1.0);
        let c = array.technology().electrode_capacitance;
        let v = array.drive_voltage().get();
        Watts::new(n * c * v * v * self.drive_frequency.get())
    }

    /// Static leakage power of the pixel array.
    pub fn leakage_power(&self, array: &ActuatorArray) -> Watts {
        Watts::new(array.electrode_count() as f64 * array.technology().pixel_leakage)
    }

    /// Total power (dynamic + leakage).
    pub fn total_power(&self, array: &ActuatorArray) -> Watts {
        self.dynamic_power(array) + self.leakage_power(array)
    }

    /// Power density over the active array area, in W/m² — relevant because
    /// dissipated power heats the sample liquid sitting directly on the die.
    pub fn power_density(&self, array: &ActuatorArray) -> f64 {
        let area = array.electrode_count() as f64 * array.pitch().get() * array.pitch().get();
        self.total_power(array).get() / area
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::TechnologyNode;
    use labchip_units::GridDims;

    #[test]
    fn paper_chip_dissipates_tens_of_milliwatts() {
        // 102,400 electrodes × 80 fF × (3.3 V)² × 1 MHz ≈ 90 mW: consistent
        // with a chip that must not cook the cells sitting on it.
        let chip = ActuatorArray::date05_reference();
        let model = PowerModel::new(Hertz::from_megahertz(1.0));
        let p = model.total_power(&chip);
        assert!(
            p.as_milliwatts() > 10.0 && p.as_milliwatts() < 500.0,
            "P = {p}"
        );
    }

    #[test]
    fn dynamic_power_scales_with_frequency_and_voltage_squared() {
        let chip = ActuatorArray::date05_reference();
        let slow = PowerModel::new(Hertz::from_kilohertz(100.0));
        let fast = PowerModel::new(Hertz::from_megahertz(1.0));
        let ratio = fast.dynamic_power(&chip).get() / slow.dynamic_power(&chip).get();
        assert!((ratio - 10.0).abs() < 1e-9);

        let mut lv = ActuatorArray::new(GridDims::new(320, 320), TechnologyNode::cmos_130nm());
        lv.install_sensors(crate::pixel::SensorSite::Capacitive);
        let hv = ActuatorArray::date05_reference();
        let m = PowerModel::new(Hertz::from_megahertz(1.0));
        // Same electrode count: the 1.2 V chip burns far less drive power —
        // the flip side of its weaker DEP force.
        assert!(m.dynamic_power(&lv).get() < m.dynamic_power(&hv).get());
    }

    #[test]
    fn floating_electrodes_reduce_dynamic_power() {
        let chip = ActuatorArray::date05_reference();
        let full = PowerModel::new(Hertz::from_megahertz(1.0));
        let half = PowerModel {
            active_fraction: 0.5,
            ..full
        };
        assert!(
            (half.dynamic_power(&chip).get() / full.dynamic_power(&chip).get() - 0.5).abs() < 1e-9
        );
    }

    #[test]
    fn leakage_grows_on_newer_nodes() {
        let old = ActuatorArray::new(GridDims::new(320, 320), TechnologyNode::cmos_350nm());
        let new = ActuatorArray::new(GridDims::new(320, 320), TechnologyNode::cmos_90nm());
        let m = PowerModel::new(Hertz::from_megahertz(1.0));
        assert!(m.leakage_power(&new).get() > m.leakage_power(&old).get());
    }

    #[test]
    fn power_density_is_modest() {
        let chip = ActuatorArray::date05_reference();
        let m = PowerModel::new(Hertz::from_megahertz(1.0));
        // Well below 1 W/cm² = 1e4 W/m².
        assert!(m.power_density(&chip) < 1e4);
    }
}
