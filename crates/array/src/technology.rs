//! CMOS technology-node models.
//!
//! The paper's §2 makes a point that is unusual for microelectronics: for a
//! DEP biochip the **older** technology node is often the better choice,
//! because the actuation force scales with the supply voltage squared and the
//! electrode pitch is fixed by cell size (20–30 µm), so the area advantage of
//! a deep-submicron node buys nothing. This module encodes the supply
//! voltage, geometry and cost figures needed to quantify that argument.

use labchip_units::{Euros, Meters, Volts};
use serde::{Deserialize, Serialize};

/// A CMOS technology node and the parameters relevant to a biochip design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Human-readable name, e.g. `"0.35 um CMOS"`.
    pub name: String,
    /// Drawn minimum feature size.
    pub feature_size: Meters,
    /// Nominal core supply voltage — the maximum electrode drive amplitude.
    pub supply_voltage: Volts,
    /// Maximum tolerated I/O voltage (thick-oxide devices), if higher than
    /// the core supply; the electrode drivers can use it.
    pub io_voltage: Volts,
    /// Minimum achievable electrode pitch given the per-pixel logic
    /// (memory + drivers + optional sensor front-end).
    pub min_electrode_pitch: Meters,
    /// Wafer-amortised silicon cost per square millimetre of die.
    pub cost_per_mm2: Euros,
    /// Mask-set (NRE) cost for a full prototype run.
    pub mask_set_cost: Euros,
    /// Typical fabrication turnaround in days.
    pub fabrication_days: f64,
    /// Per-pixel leakage power in watts.
    pub pixel_leakage: f64,
    /// Capacitance switched per electrode per transition (driver + electrode
    /// plate), in farads.
    pub electrode_capacitance: f64,
}

impl TechnologyNode {
    /// 1.0 µm CMOS: 5 V supply, very cheap masks, long obsolete for digital
    /// logic but attractive for high-voltage actuation.
    pub fn cmos_1000nm() -> Self {
        Self {
            name: "1.0 um CMOS".into(),
            feature_size: Meters::from_nanometers(1_000.0),
            supply_voltage: Volts::new(5.0),
            io_voltage: Volts::new(5.0),
            min_electrode_pitch: Meters::from_micrometers(40.0),
            cost_per_mm2: Euros::new(0.05),
            mask_set_cost: Euros::from_kilo_euros(15.0),
            fabrication_days: 45.0,
            pixel_leakage: 5e-12,
            electrode_capacitance: 120e-15,
        }
    }

    /// 0.35 µm CMOS: 3.3 V supply — the node of the paper's chip (JSSC'03).
    pub fn cmos_350nm() -> Self {
        Self {
            name: "0.35 um CMOS".into(),
            feature_size: Meters::from_nanometers(350.0),
            supply_voltage: Volts::new(3.3),
            io_voltage: Volts::new(5.0),
            min_electrode_pitch: Meters::from_micrometers(20.0),
            cost_per_mm2: Euros::new(0.12),
            mask_set_cost: Euros::from_kilo_euros(60.0),
            fabrication_days: 60.0,
            pixel_leakage: 20e-12,
            electrode_capacitance: 80e-15,
        }
    }

    /// 0.18 µm CMOS: 1.8 V core supply, 3.3 V I/O devices.
    pub fn cmos_180nm() -> Self {
        Self {
            name: "0.18 um CMOS".into(),
            feature_size: Meters::from_nanometers(180.0),
            supply_voltage: Volts::new(1.8),
            io_voltage: Volts::new(3.3),
            min_electrode_pitch: Meters::from_micrometers(12.0),
            cost_per_mm2: Euros::new(0.25),
            mask_set_cost: Euros::from_kilo_euros(150.0),
            fabrication_days: 70.0,
            pixel_leakage: 60e-12,
            electrode_capacitance: 60e-15,
        }
    }

    /// 0.13 µm CMOS: 1.2 V core supply, 2.5 V I/O devices.
    pub fn cmos_130nm() -> Self {
        Self {
            name: "0.13 um CMOS".into(),
            feature_size: Meters::from_nanometers(130.0),
            supply_voltage: Volts::new(1.2),
            io_voltage: Volts::new(2.5),
            min_electrode_pitch: Meters::from_micrometers(10.0),
            cost_per_mm2: Euros::new(0.45),
            mask_set_cost: Euros::from_kilo_euros(350.0),
            fabrication_days: 80.0,
            pixel_leakage: 150e-12,
            electrode_capacitance: 45e-15,
        }
    }

    /// 90 nm CMOS: 1.0 V core supply, 2.5 V I/O devices.
    pub fn cmos_90nm() -> Self {
        Self {
            name: "90 nm CMOS".into(),
            feature_size: Meters::from_nanometers(90.0),
            supply_voltage: Volts::new(1.0),
            io_voltage: Volts::new(2.5),
            min_electrode_pitch: Meters::from_micrometers(8.0),
            cost_per_mm2: Euros::new(0.80),
            mask_set_cost: Euros::from_kilo_euros(800.0),
            fabrication_days: 90.0,
            pixel_leakage: 400e-12,
            electrode_capacitance: 35e-15,
        }
    }

    /// The standard ladder of nodes used in the technology-sweep experiment
    /// (E2), from the oldest/highest-voltage to the newest/lowest-voltage.
    pub fn ladder() -> Vec<Self> {
        vec![
            Self::cmos_1000nm(),
            Self::cmos_350nm(),
            Self::cmos_180nm(),
            Self::cmos_130nm(),
            Self::cmos_90nm(),
        ]
    }

    /// Maximum electrode drive amplitude: core supply, or the I/O voltage if
    /// thick-oxide drivers are used.
    pub fn max_drive_voltage(&self, use_io_devices: bool) -> Volts {
        if use_io_devices {
            self.io_voltage.max(self.supply_voltage)
        } else {
            self.supply_voltage
        }
    }

    /// Relative DEP force figure of merit: `V²` at the chosen drive voltage,
    /// normalised to the 0.35 µm node at its core supply. The paper's claim
    /// is that this figure *falls* as the technology advances.
    pub fn dep_figure_of_merit(&self, use_io_devices: bool) -> f64 {
        let reference = Self::cmos_350nm().supply_voltage.squared();
        self.max_drive_voltage(use_io_devices).squared() / reference
    }

    /// Effective electrode pitch for a chip that must host cells of the given
    /// diameter: the pitch is set by biology (cell size), never below the
    /// node's minimum pitch. This is the paper's point that there is "no need
    /// to make an array with electrode pitch much smaller" than the cell.
    pub fn electrode_pitch_for_cells(&self, cell_diameter: Meters) -> Meters {
        self.min_electrode_pitch.max(cell_diameter)
    }

    /// Die cost of an array of `electrodes` electrodes at `pitch`, excluding
    /// mask NRE.
    pub fn die_cost(&self, electrodes: u64, pitch: Meters) -> Euros {
        let area_mm2 = electrodes as f64 * pitch.get() * pitch.get() * 1e6;
        // 30 % periphery overhead (pads, row/column drivers, readout).
        self.cost_per_mm2 * (area_mm2 * 1.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_by_feature_size_and_voltage() {
        let ladder = TechnologyNode::ladder();
        assert_eq!(ladder.len(), 5);
        for pair in ladder.windows(2) {
            assert!(pair[0].feature_size > pair[1].feature_size);
            assert!(pair[0].supply_voltage >= pair[1].supply_voltage);
            assert!(pair[0].mask_set_cost < pair[1].mask_set_cost);
        }
    }

    #[test]
    fn older_nodes_have_higher_dep_figure_of_merit() {
        // The paper's §2 claim: actuation (∝ V²) favours older technology.
        let old = TechnologyNode::cmos_1000nm();
        let reference = TechnologyNode::cmos_350nm();
        let new = TechnologyNode::cmos_130nm();
        assert!(old.dep_figure_of_merit(false) > reference.dep_figure_of_merit(false));
        assert!(reference.dep_figure_of_merit(false) > new.dep_figure_of_merit(false));
        // At core voltages the 1.0 µm node is (5/3.3)² ≈ 2.3× the reference.
        assert!((old.dep_figure_of_merit(false) - (5.0f64 / 3.3).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn io_devices_recover_some_drive_voltage() {
        let node = TechnologyNode::cmos_180nm();
        assert!(node.max_drive_voltage(true) > node.max_drive_voltage(false));
        assert_eq!(node.max_drive_voltage(true), Volts::new(3.3));
    }

    #[test]
    fn electrode_pitch_is_set_by_cell_size_not_lithography() {
        // A 25 µm cell needs a ≥25 µm pitch on every node: the finer
        // lithography of newer nodes buys nothing.
        let cell = Meters::from_micrometers(25.0);
        for node in TechnologyNode::ladder() {
            let pitch = node.electrode_pitch_for_cells(cell);
            assert!(pitch >= cell);
        }
        // Only the 1.0 µm node is actually limited by its own pitch floor.
        let coarse = TechnologyNode::cmos_1000nm();
        assert_eq!(
            coarse.electrode_pitch_for_cells(cell),
            coarse.min_electrode_pitch
        );
    }

    #[test]
    fn die_cost_grows_with_electrode_count_and_node_cost() {
        let node = TechnologyNode::cmos_350nm();
        let small = node.die_cost(10_000, Meters::from_micrometers(20.0));
        let large = node.die_cost(100_000, Meters::from_micrometers(20.0));
        assert!(large.get() > small.get() * 9.0);
        let newer = TechnologyNode::cmos_90nm().die_cost(100_000, Meters::from_micrometers(20.0));
        assert!(newer.get() > large.get());
    }

    #[test]
    fn paper_chip_area_is_plausible() {
        // 320x320 electrodes at 20 µm pitch is a 6.4 mm x 6.4 mm active area,
        // i.e. a ~50 mm² die including periphery — a realistic chip.
        let node = TechnologyNode::cmos_350nm();
        let cost = node.die_cost(320 * 320, Meters::from_micrometers(20.0));
        let area_mm2 = 320.0f64 * 320.0 * 20e-6 * 20e-6 * 1e6 * 1.3;
        assert!(area_mm2 > 40.0 && area_mm2 < 70.0);
        assert!(cost.get() > 1.0 && cost.get() < 20.0);
    }
}
