//! Error type for the design-flow crate.

use std::fmt;

/// Errors produced by the design-flow models.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignFlowError {
    /// A configuration value was outside its valid range.
    InvalidConfiguration {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint.
        reason: String,
    },
    /// A project failed to converge within the allowed number of iterations.
    NoConvergence {
        /// Iterations attempted.
        iterations: u32,
    },
}

impl fmt::Display for DesignFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignFlowError::InvalidConfiguration { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            DesignFlowError::NoConvergence { iterations } => {
                write!(f, "project did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for DesignFlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DesignFlowError::InvalidConfiguration {
            name: "margin",
            reason: "must be positive".into()
        }
        .to_string()
        .contains("margin"));
        assert!(DesignFlowError::NoConvergence { iterations: 40 }
            .to_string()
            .contains("40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesignFlowError>();
    }
}
