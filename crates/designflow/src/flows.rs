//! The two design flows, as executable models.
//!
//! A "project" is the task of converging one fluidic/packaging design (e.g.
//! the chamber and channel geometry of Fig. 3) to a working prototype. Under
//! the **simulate-first** flow each attempt spends a long simulation campaign
//! before committing to fabrication; whether the fabricated device actually
//! works is then a draw against the simulation fidelity, which is limited by
//! parameter uncertainty. Under the **prototype-in-the-loop** flow each
//! iteration is a quick design revision plus a cheap, fast fabrication and a
//! test; every tested prototype improves the team's knowledge of the
//! unknown parameters, so the per-iteration success probability ramps up.

use crate::error::DesignFlowError;
use labchip_fluidics::fabrication::FabricationProcess;
use labchip_fluidics::uncertainty::{FluidicParameters, SimulationFidelity};
use labchip_units::{Euros, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which flow a project follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// Fig. 1: simulate until spec, then fabricate and test.
    SimulateFirst,
    /// Fig. 2: fabricate and test inside the loop, simulation assists.
    PrototypeInLoop,
}

/// Parameters of a design project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowParameters {
    /// Fabrication process used for prototypes.
    pub process: FabricationProcess,
    /// Number of devices built per fabrication run.
    pub devices_per_run: u32,
    /// Parameter knowledge at project start.
    pub initial_parameters: FluidicParameters,
    /// Design margin budgeted by the designer (relative).
    pub design_margin: f64,
    /// Calendar time of one full simulation campaign (simulate-first flow).
    pub simulation_campaign: Seconds,
    /// Calendar time of a quick design revision (prototype flow), including
    /// the light simulation used to interpret the previous test.
    pub revision_time: Seconds,
    /// Calendar time to test one batch of prototypes.
    pub test_time: Seconds,
    /// Engineering cost per calendar day of design/simulation/test work.
    pub engineer_cost_per_day: Euros,
    /// Fractional reduction of every parameter uncertainty per tested
    /// prototype batch (what testing real devices teaches you).
    pub learning_rate: f64,
    /// Maximum iterations before a project is abandoned.
    pub max_iterations: u32,
}

impl FlowParameters {
    /// The DATE'05 scenario: dry-film-resist prototypes, 2005-level parameter
    /// uncertainty, a 15-working-day simulation campaign versus 1-day
    /// revisions, and a 20 % learning effect per tested batch.
    pub fn date05_reference() -> Self {
        Self {
            process: FabricationProcess::preset(
                labchip_fluidics::fabrication::ProcessKind::DryFilmResist,
            ),
            devices_per_run: 5,
            initial_parameters: FluidicParameters::literature_2005(),
            design_margin: 0.3,
            simulation_campaign: Seconds::from_days(15.0),
            revision_time: Seconds::from_days(1.0),
            test_time: Seconds::from_days(1.0),
            engineer_cost_per_day: Euros::new(600.0),
            learning_rate: 0.2,
            max_iterations: 40,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DesignFlowError::InvalidConfiguration`] for out-of-range
    /// values.
    pub fn validate(&self) -> Result<(), DesignFlowError> {
        if !(0.0..1.0).contains(&self.learning_rate) {
            return Err(DesignFlowError::InvalidConfiguration {
                name: "learning_rate",
                reason: "must be in [0, 1)".into(),
            });
        }
        if self.design_margin <= 0.0 {
            return Err(DesignFlowError::InvalidConfiguration {
                name: "design_margin",
                reason: "must be positive".into(),
            });
        }
        if self.max_iterations == 0 {
            return Err(DesignFlowError::InvalidConfiguration {
                name: "max_iterations",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Outcome of running one project.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectOutcome {
    /// Flow that was followed.
    pub flow: FlowKind,
    /// Whether a working prototype was reached within the iteration budget.
    pub converged: bool,
    /// Iterations (fabrication runs) used.
    pub iterations: u32,
    /// Total calendar time.
    pub duration: Seconds,
    /// Total cost (engineering + fabrication).
    pub cost: Euros,
}

/// Executable model of a design flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignFlow {
    kind: FlowKind,
    params: FlowParameters,
}

impl DesignFlow {
    /// Creates a flow model.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation error, if any.
    pub fn new(kind: FlowKind, params: FlowParameters) -> Result<Self, DesignFlowError> {
        params.validate()?;
        Ok(Self { kind, params })
    }

    /// The flow kind.
    pub fn kind(&self) -> FlowKind {
        self.kind
    }

    /// The parameters.
    pub fn params(&self) -> &FlowParameters {
        &self.params
    }

    /// Scales every parameter uncertainty down by the learning accumulated
    /// after `tested_batches` prototype batches.
    fn parameters_after_learning(&self, tested_batches: u32) -> FluidicParameters {
        let factor = (1.0 - self.params.learning_rate).powi(tested_batches as i32);
        let scale = |u: labchip_units::Uncertain| {
            labchip_units::Uncertain::new(u.nominal(), u.relative_sigma() * factor)
        };
        let p = self.params.initial_parameters;
        FluidicParameters {
            contact_angle: scale(p.contact_angle),
            evaporation_coefficient: scale(p.evaporation_coefficient),
            electrothermal_coupling: scale(p.electrothermal_coupling),
            ac_electroosmosis: scale(p.ac_electroosmosis),
            cell_dielectric: scale(p.cell_dielectric),
            surface_fouling: scale(p.surface_fouling),
        }
    }

    /// Probability that the design of iteration `iteration` (0-based) works
    /// when prototyped.
    fn success_probability(&self, iteration: u32) -> f64 {
        match self.kind {
            FlowKind::SimulateFirst => {
                // The campaign squeezes everything the current parameter
                // knowledge allows; residual risk is the simulation's
                // false-pass probability. Learning only comes from the
                // (expensive) prototypes already tested.
                let params = self.parameters_after_learning(iteration);
                let fidelity = SimulationFidelity::new(&params, self.params.design_margin);
                1.0 - fidelity.false_pass_probability()
            }
            FlowKind::PrototypeInLoop => {
                // A quick revision starts from weaker analysis (half the
                // margin effectively verified), but every tested batch feeds
                // measured parameters back into the next revision.
                let params = self.parameters_after_learning(iteration);
                let fidelity = SimulationFidelity::new(&params, self.params.design_margin * 0.5);
                1.0 - fidelity.false_pass_probability()
            }
        }
    }

    /// Calendar time of one iteration (everything up to and including the
    /// test of the fabricated batch).
    fn iteration_time(&self) -> Seconds {
        let design_phase = match self.kind {
            FlowKind::SimulateFirst => self.params.simulation_campaign,
            FlowKind::PrototypeInLoop => self.params.revision_time,
        };
        design_phase + self.params.process.turnaround + self.params.test_time
    }

    /// Cost of one iteration.
    fn iteration_cost(&self) -> Euros {
        let design_phase_days = match self.kind {
            FlowKind::SimulateFirst => self.params.simulation_campaign.as_days(),
            FlowKind::PrototypeInLoop => self.params.revision_time.as_days(),
        };
        let engineering_days = design_phase_days + self.params.test_time.as_days();
        let engineering = self.params.engineer_cost_per_day * engineering_days;
        let fabrication = self
            .params
            .process
            .quote(self.params.devices_per_run, false)
            .total_cost();
        engineering + fabrication
    }

    /// Runs one project to convergence (or abandonment), drawing prototype
    /// outcomes from the caller's RNG.
    pub fn run_project<R: Rng + ?Sized>(&self, rng: &mut R) -> ProjectOutcome {
        let mut duration = Seconds::ZERO;
        let mut cost = Euros::ZERO;
        for iteration in 0..self.params.max_iterations {
            duration += self.iteration_time();
            cost += self.iteration_cost();
            let p = self.success_probability(iteration);
            if rng.gen::<f64>() < p {
                return ProjectOutcome {
                    flow: self.kind,
                    converged: true,
                    iterations: iteration + 1,
                    duration,
                    cost,
                };
            }
        }
        ProjectOutcome {
            flow: self.kind,
            converged: false,
            iterations: self.params.max_iterations,
            duration,
            cost,
        }
    }

    /// Expected (mean-field) number of iterations to converge, ignoring the
    /// iteration cap — a quick analytic cross-check of the Monte Carlo.
    pub fn expected_iterations(&self) -> f64 {
        let mut expectation = 0.0;
        let mut survival = 1.0;
        for iteration in 0..200u32 {
            let p = self.success_probability(iteration);
            expectation += survival * p * (iteration + 1) as f64;
            survival *= 1.0 - p;
        }
        expectation + survival * 200.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn flows() -> (DesignFlow, DesignFlow) {
        let params = FlowParameters::date05_reference();
        (
            DesignFlow::new(FlowKind::SimulateFirst, params.clone()).unwrap(),
            DesignFlow::new(FlowKind::PrototypeInLoop, params).unwrap(),
        )
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut p = FlowParameters::date05_reference();
        p.learning_rate = 1.5;
        assert!(DesignFlow::new(FlowKind::SimulateFirst, p).is_err());
        let mut p = FlowParameters::date05_reference();
        p.design_margin = 0.0;
        assert!(DesignFlow::new(FlowKind::SimulateFirst, p).is_err());
        let mut p = FlowParameters::date05_reference();
        p.max_iterations = 0;
        assert!(DesignFlow::new(FlowKind::SimulateFirst, p).is_err());
    }

    #[test]
    fn prototype_iterations_are_much_shorter() {
        let (sim, proto) = flows();
        // Simulate-first: 15 d campaign + 2.5 d fab + 1 d test ≈ 18.5 days.
        // Prototype-in-loop: 1 d revision + 2.5 d fab + 1 d test = 4.5 days.
        assert!(sim.iteration_time().as_days() > 3.0 * proto.iteration_time().as_days());
    }

    #[test]
    fn learning_improves_success_probability() {
        let (_, proto) = flows();
        let first = proto.success_probability(0);
        let fifth = proto.success_probability(5);
        assert!(fifth > first);
        assert!(first > 0.0 && first < 1.0);
    }

    #[test]
    fn simulate_first_has_higher_per_attempt_success() {
        // The campaign does buy confidence per attempt...
        let (sim, proto) = flows();
        assert!(sim.success_probability(0) > proto.success_probability(0));
    }

    #[test]
    fn but_prototype_flow_converges_faster_in_calendar_time() {
        // ...yet the paper's claim holds: cheap fast iterations win overall.
        let (sim, proto) = flows();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 300;
        let mean_days = |flow: &DesignFlow, rng: &mut ChaCha8Rng| {
            (0..trials)
                .map(|_| flow.run_project(rng).duration.as_days())
                .sum::<f64>()
                / trials as f64
        };
        let sim_days = mean_days(&sim, &mut rng);
        let proto_days = mean_days(&proto, &mut rng);
        assert!(
            proto_days < sim_days,
            "prototype flow {proto_days:.1} d should beat simulate-first {sim_days:.1} d"
        );
    }

    #[test]
    fn projects_converge_and_account_cost() {
        let (sim, proto) = flows();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for flow in [&sim, &proto] {
            let outcome = flow.run_project(&mut rng);
            assert!(outcome.iterations >= 1);
            assert!(outcome.duration.get() > 0.0);
            assert!(outcome.cost.get() > 0.0);
        }
    }

    #[test]
    fn expected_iterations_is_finite_and_at_least_one() {
        let (sim, proto) = flows();
        assert!(sim.expected_iterations() >= 1.0);
        assert!(proto.expected_iterations() >= 1.0);
        assert!(proto.expected_iterations() < 50.0);
    }
}
