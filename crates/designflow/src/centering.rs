//! Design centering (the dashed "design centering" loop of Fig. 1).
//!
//! In the electronic flow, simulation is not only used for verification but
//! also to *centre* the design: nominal parameters are moved so that the
//! acceptable-performance window sits symmetrically around them, maximising
//! yield under process spread. This module implements that loop for a scalar
//! performance figure (e.g. the sensor front-end offset or the DEP holding
//! margin) and reports the yield trajectory over iterations (experiment E8).

use crate::error::DesignFlowError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal deviate with the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// The acceptance window of a scalar performance figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceSpec {
    /// Lowest acceptable performance.
    pub lower: f64,
    /// Highest acceptable performance.
    pub upper: f64,
}

impl PerformanceSpec {
    /// Creates a spec window.
    ///
    /// # Errors
    ///
    /// Returns [`DesignFlowError::InvalidConfiguration`] when the window is
    /// empty.
    pub fn new(lower: f64, upper: f64) -> Result<Self, DesignFlowError> {
        if upper <= lower {
            return Err(DesignFlowError::InvalidConfiguration {
                name: "spec",
                reason: "upper bound must exceed lower bound".into(),
            });
        }
        Ok(Self { lower, upper })
    }

    /// Centre of the window.
    pub fn center(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Returns `true` when a performance value is inside the window.
    pub fn accepts(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// One iteration of the centering loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CenteringIteration {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Nominal design value used this iteration.
    pub nominal: f64,
    /// Monte-Carlo yield estimate at that nominal.
    pub yield_estimate: f64,
}

/// Result of running the centering loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CenteringOutcome {
    /// Per-iteration trajectory.
    pub iterations: Vec<CenteringIteration>,
    /// Final nominal design value.
    pub final_nominal: f64,
    /// Final yield estimate.
    pub final_yield: f64,
}

impl CenteringOutcome {
    /// Yield of the first iteration (the un-centred design).
    pub fn initial_yield(&self) -> f64 {
        self.iterations
            .first()
            .map(|i| i.yield_estimate)
            .unwrap_or(0.0)
    }

    /// Absolute yield improvement from first to last iteration.
    pub fn yield_gain(&self) -> f64 {
        self.final_yield - self.initial_yield()
    }
}

/// The design-centering optimisation loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignCentering {
    /// Acceptance window.
    pub spec: PerformanceSpec,
    /// One-sigma process spread of the performance around its nominal.
    pub process_sigma: f64,
    /// Monte-Carlo samples per yield estimate.
    pub samples_per_iteration: u32,
    /// Fraction of the estimated centring error corrected per iteration.
    pub step_fraction: f64,
    /// Number of centering iterations.
    pub iterations: u32,
}

impl DesignCentering {
    /// A representative sensor-offset centering task: spec window of ±3 (in
    /// sigma-normalised units), unit process spread.
    pub fn reference(spec_halfwidth_sigmas: f64) -> Result<Self, DesignFlowError> {
        Ok(Self {
            spec: PerformanceSpec::new(-spec_halfwidth_sigmas, spec_halfwidth_sigmas)?,
            process_sigma: 1.0,
            samples_per_iteration: 2_000,
            step_fraction: 0.7,
            iterations: 8,
        })
    }

    /// Estimates the yield at a nominal design value.
    pub fn yield_at<R: Rng + ?Sized>(&self, nominal: f64, rng: &mut R) -> f64 {
        let hits = (0..self.samples_per_iteration)
            .filter(|_| {
                let performance = nominal + self.process_sigma * standard_normal(rng);
                self.spec.accepts(performance)
            })
            .count();
        hits as f64 / self.samples_per_iteration as f64
    }

    /// Runs the centering loop starting from an (off-centre) initial nominal.
    pub fn run<R: Rng + ?Sized>(&self, initial_nominal: f64, rng: &mut R) -> CenteringOutcome {
        let mut nominal = initial_nominal;
        let mut iterations = Vec::with_capacity(self.iterations as usize);
        for i in 0..self.iterations {
            let yield_estimate = self.yield_at(nominal, rng);
            iterations.push(CenteringIteration {
                iteration: i,
                nominal,
                yield_estimate,
            });
            // Move the nominal a fraction of the way towards the window
            // centre — in a real flow the direction comes from the simulated
            // sensitivity, here the window centre is known analytically.
            nominal += self.step_fraction * (self.spec.center() - nominal);
        }
        let final_nominal = nominal;
        let final_yield = self.yield_at(final_nominal, rng);
        CenteringOutcome {
            iterations,
            final_nominal,
            final_yield,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn spec_window_validation() {
        assert!(PerformanceSpec::new(1.0, 1.0).is_err());
        assert!(PerformanceSpec::new(2.0, 1.0).is_err());
        let spec = PerformanceSpec::new(-1.0, 3.0).unwrap();
        assert_eq!(spec.center(), 1.0);
        assert!(spec.accepts(0.0));
        assert!(!spec.accepts(4.0));
    }

    #[test]
    fn centering_recovers_yield_of_an_off_center_design() {
        // E8: a design sitting 2.5 sigma off-centre starts with poor yield;
        // a handful of centering iterations brings it close to the ceiling.
        let centering = DesignCentering::reference(3.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcome = centering.run(2.5, &mut rng);
        assert!(outcome.initial_yield() < 0.75);
        assert!(outcome.final_yield > 0.95);
        assert!(outcome.yield_gain() > 0.2);
        // The nominal converges towards the window centre (0).
        assert!(outcome.final_nominal.abs() < 0.1);
        assert_eq!(outcome.iterations.len(), 8);
    }

    #[test]
    fn yield_is_monotone_in_distance_from_center() {
        let centering = DesignCentering::reference(3.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let centred = centering.yield_at(0.0, &mut rng);
        let off = centering.yield_at(2.0, &mut rng);
        let far = centering.yield_at(4.0, &mut rng);
        assert!(centred > off);
        assert!(off > far);
    }

    #[test]
    fn tighter_specs_yield_less() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let loose = DesignCentering::reference(3.0)
            .unwrap()
            .yield_at(0.0, &mut rng);
        let tight = DesignCentering::reference(1.0)
            .unwrap()
            .yield_at(0.0, &mut rng);
        assert!(loose > tight);
    }

    #[test]
    fn centering_on_an_already_centered_design_changes_little() {
        let centering = DesignCentering::reference(3.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let outcome = centering.run(0.0, &mut rng);
        assert!(outcome.yield_gain().abs() < 0.05);
    }
}
