//! # labchip-designflow
//!
//! Quantitative models of the two design flows contrasted by the DATE'05
//! paper:
//!
//! * **Fig. 1 — the electronic flow**: simulate until the specification is
//!   met, then fabricate and test, treating a fabrication re-spin as the
//!   expensive exception;
//! * **Fig. 2 — the fluidic/packaging flow**: fabrication and testing sit
//!   *inside* the design loop, because a prototype takes days and a few
//!   euros, while trustworthy simulation would require parameters nobody
//!   knows.
//!
//! The [`flows`] module models a design project under either flow, the
//! [`montecarlo`] module compares their convergence time and cost
//! distributions (experiment E5), and [`centering`] implements the
//! design-centering loop that the electronic flow uses to buy yield
//! (experiment E8).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod centering;
pub mod error;
pub mod flows;
pub mod montecarlo;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::centering::{CenteringOutcome, DesignCentering, PerformanceSpec};
    pub use crate::error::DesignFlowError;
    pub use crate::flows::{DesignFlow, FlowKind, FlowParameters, ProjectOutcome};
    pub use crate::montecarlo::{FlowComparison, MonteCarloComparison};
}

pub use error::DesignFlowError;
