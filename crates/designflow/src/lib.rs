//! # labchip-designflow
//!
//! Quantitative models of the two design flows contrasted by the DATE'05
//! paper:
//!
//! * **Fig. 1 — the electronic flow**: simulate until the specification is
//!   met, then fabricate and test, treating a fabrication re-spin as the
//!   expensive exception;
//! * **Fig. 2 — the fluidic/packaging flow**: fabrication and testing sit
//!   *inside* the design loop, because a prototype takes days and a few
//!   euros, while trustworthy simulation would require parameters nobody
//!   knows.
//!
//! The [`flows`] module models a design project under either flow, the
//! [`montecarlo`] module compares their convergence time and cost
//! distributions (experiment E5), and [`centering`] implements the
//! design-centering loop that the electronic flow uses to buy yield
//! (experiment E8).
//!
//! ## Example: a prototype-in-the-loop project converges
//!
//! ```
//! use labchip_designflow::prelude::*;
//! use rand::SeedableRng;
//!
//! let params = FlowParameters::date05_reference();
//! let flow = DesignFlow::new(FlowKind::PrototypeInLoop, params)?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let outcome = flow.run_project(&mut rng);
//! // Fabrication sits inside the loop, and a dry-film prototype takes
//! // days — so even several iterations stay well under an electronic
//! // mask-spin timescale.
//! assert!(outcome.converged);
//! assert!(outcome.iterations >= 1);
//! # Ok::<(), labchip_designflow::DesignFlowError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod centering;
pub mod error;
pub mod flows;
pub mod montecarlo;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::centering::{CenteringOutcome, DesignCentering, PerformanceSpec};
    pub use crate::error::DesignFlowError;
    pub use crate::flows::{DesignFlow, FlowKind, FlowParameters, ProjectOutcome};
    pub use crate::montecarlo::{FlowComparison, MonteCarloComparison};
}

pub use error::DesignFlowError;
