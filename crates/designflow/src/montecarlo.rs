//! Monte-Carlo comparison of the two design flows (experiment E5).

use crate::error::DesignFlowError;
use crate::flows::{DesignFlow, FlowKind, FlowParameters, ProjectOutcome};
use labchip_units::{Euros, Seconds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Summary statistics of one flow over many simulated projects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStatistics {
    /// The flow these statistics describe.
    pub flow: FlowKind,
    /// Number of simulated projects.
    pub trials: u32,
    /// Fraction of projects that converged within the iteration budget.
    pub convergence_rate: f64,
    /// Mean number of fabrication iterations.
    pub mean_iterations: f64,
    /// Mean calendar time.
    pub mean_duration: Seconds,
    /// 90th-percentile calendar time.
    pub p90_duration: Seconds,
    /// Mean total cost.
    pub mean_cost: Euros,
}

impl FlowStatistics {
    fn from_outcomes(flow: FlowKind, outcomes: &[ProjectOutcome]) -> Self {
        let trials = outcomes.len() as u32;
        let converged = outcomes.iter().filter(|o| o.converged).count();
        let mean_iterations =
            outcomes.iter().map(|o| o.iterations as f64).sum::<f64>() / trials as f64;
        let mean_duration = outcomes.iter().map(|o| o.duration).sum::<Seconds>() / trials as f64;
        let mean_cost = outcomes.iter().map(|o| o.cost).sum::<Euros>() / trials as f64;
        let mut durations: Vec<f64> = outcomes.iter().map(|o| o.duration.get()).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let p90_index = ((durations.len() as f64 * 0.9).ceil() as usize).saturating_sub(1);
        Self {
            flow,
            trials,
            convergence_rate: converged as f64 / trials as f64,
            mean_iterations,
            mean_duration,
            p90_duration: Seconds::new(durations[p90_index]),
            mean_cost,
        }
    }
}

/// The result of comparing both flows on the same project parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowComparison {
    /// Statistics of the simulate-first (Fig. 1) flow.
    pub simulate_first: FlowStatistics,
    /// Statistics of the prototype-in-the-loop (Fig. 2) flow.
    pub prototype_in_loop: FlowStatistics,
}

impl FlowComparison {
    /// Calendar-time speed-up of the prototype flow over the simulate-first
    /// flow (mean durations).
    pub fn speedup(&self) -> f64 {
        self.simulate_first.mean_duration.get() / self.prototype_in_loop.mean_duration.get()
    }

    /// Cost ratio (simulate-first over prototype flow).
    pub fn cost_ratio(&self) -> f64 {
        self.simulate_first.mean_cost.get() / self.prototype_in_loop.mean_cost.get()
    }
}

/// Runs the Monte-Carlo comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloComparison {
    /// Project parameters shared by both flows.
    pub parameters: FlowParameters,
    /// Number of simulated projects per flow.
    pub trials: u32,
    /// RNG seed (the comparison is deterministic for a given seed).
    pub seed: u64,
}

impl MonteCarloComparison {
    /// Creates a comparison with the reference parameters.
    pub fn date05_reference(trials: u32, seed: u64) -> Self {
        Self {
            parameters: FlowParameters::date05_reference(),
            trials,
            seed,
        }
    }

    /// Runs both flows and summarises the outcomes.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation error, if any.
    pub fn run(&self) -> Result<FlowComparison, DesignFlowError> {
        let sim_flow = DesignFlow::new(FlowKind::SimulateFirst, self.parameters.clone())?;
        let proto_flow = DesignFlow::new(FlowKind::PrototypeInLoop, self.parameters.clone())?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        let sim_outcomes: Vec<ProjectOutcome> = (0..self.trials)
            .map(|_| sim_flow.run_project(&mut rng))
            .collect();
        let proto_outcomes: Vec<ProjectOutcome> = (0..self.trials)
            .map(|_| proto_flow.run_project(&mut rng))
            .collect();

        Ok(FlowComparison {
            simulate_first: FlowStatistics::from_outcomes(FlowKind::SimulateFirst, &sim_outcomes),
            prototype_in_loop: FlowStatistics::from_outcomes(
                FlowKind::PrototypeInLoop,
                &proto_outcomes,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_reproduces_the_papers_claim() {
        // E5: under 2005-level parameter uncertainty and dry-film-resist
        // prototyping, the prototype-in-the-loop flow converges in less
        // calendar time than the simulate-first flow.
        let comparison = MonteCarloComparison::date05_reference(400, 1)
            .run()
            .unwrap();
        assert!(
            comparison.speedup() > 1.5,
            "speedup = {:.2}",
            comparison.speedup()
        );
        // Both flows almost always converge eventually.
        assert!(comparison.simulate_first.convergence_rate > 0.95);
        assert!(comparison.prototype_in_loop.convergence_rate > 0.95);
        // The prototype flow uses more fabrication iterations — it wins on
        // time despite more spins, because each spin is cheap and fast.
        assert!(
            comparison.prototype_in_loop.mean_iterations
                >= comparison.simulate_first.mean_iterations
        );
    }

    #[test]
    fn comparison_is_deterministic_for_a_seed() {
        let a = MonteCarloComparison::date05_reference(100, 7)
            .run()
            .unwrap();
        let b = MonteCarloComparison::date05_reference(100, 7)
            .run()
            .unwrap();
        assert_eq!(a, b);
        let c = MonteCarloComparison::date05_reference(100, 8)
            .run()
            .unwrap();
        assert!(a != c);
    }

    #[test]
    fn statistics_are_internally_consistent() {
        let comparison = MonteCarloComparison::date05_reference(200, 3)
            .run()
            .unwrap();
        for stats in [comparison.simulate_first, comparison.prototype_in_loop] {
            assert_eq!(stats.trials, 200);
            assert!(stats.mean_iterations >= 1.0);
            assert!(stats.p90_duration >= stats.mean_duration * 0.5);
            assert!(stats.mean_cost.get() > 0.0);
            assert!((0.0..=1.0).contains(&stats.convergence_rate));
        }
        assert!(comparison.cost_ratio() > 0.0);
    }

    #[test]
    fn better_parameter_knowledge_reduces_iterations_for_both_flows() {
        // If the parameters were already well characterised, both flows need
        // fewer spins and finish sooner — the paper's argument is about the
        // poor state of parameter knowledge, not about prototyping being
        // intrinsically superior.
        let mut well_known = MonteCarloComparison::date05_reference(300, 5);
        well_known.parameters.initial_parameters =
            labchip_fluidics::uncertainty::FluidicParameters::after_prototype_characterization();
        let informed = well_known.run().unwrap();
        let baseline = MonteCarloComparison::date05_reference(300, 5)
            .run()
            .unwrap();
        assert!(informed.simulate_first.mean_iterations <= baseline.simulate_first.mean_iterations);
        assert!(
            informed.prototype_in_loop.mean_iterations
                <= baseline.prototype_in_loop.mean_iterations
        );
        assert!(informed.simulate_first.mean_duration <= baseline.simulate_first.mean_duration);
    }
}
