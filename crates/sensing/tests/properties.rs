//! Property-based tests for the sensing crate.

use labchip_sensing::adc::Adc;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::capacitive::CapacitiveSensor;
use labchip_sensing::detect::{gaussian_tail, Detector, Occupancy};
use labchip_sensing::noise::NoiseModel;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridDims, Meters, Volts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Gaussian tail is a valid, monotonically decreasing probability.
    #[test]
    fn gaussian_tail_is_monotone_probability(x in -6.0f64..6.0, dx in 0.01f64..3.0) {
        let p1 = gaussian_tail(x);
        let p2 = gaussian_tail(x + dx);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1 + 1e-12);
    }

    /// Averaging N frames never increases the effective noise, and the
    /// calibrated noise never exceeds the uncalibrated one.
    #[test]
    fn averaging_is_monotone(thermal in 0.1f64..5.0, flicker in 0.0f64..1.0, offset in 0.0f64..3.0, n in 1u32..256) {
        let noise = NoiseModel {
            thermal_rms: thermal,
            shot_rms: 0.0,
            flicker_rms: flicker,
            offset_sigma: offset,
        };
        prop_assert!(noise.averaged_rms(n + 1) <= noise.averaged_rms(n) + 1e-12);
        prop_assert!(noise.averaged_rms_calibrated(n) <= noise.averaged_rms(n) + 1e-12);
        prop_assert!(noise.averaged_rms_calibrated(n) >= flicker - 1e-12);
    }

    /// ADC quantisation round-trips within one LSB inside the full-scale
    /// range and saturates outside it.
    #[test]
    fn adc_round_trip_within_one_lsb(bits in 4u8..16, input_mv in -200.0f64..200.0) {
        let adc = Adc::new(bits, Volts::from_millivolts(100.0)).unwrap();
        let input = Volts::from_millivolts(input_mv);
        let reconstructed = adc.to_voltage(adc.quantize(input));
        if input_mv.abs() <= 99.0 {
            prop_assert!((reconstructed - input).abs() <= adc.lsb());
        } else {
            prop_assert!(reconstructed.abs() <= Volts::from_millivolts(100.0).abs());
        }
    }

    /// Detection error probability decreases when the separation grows or the
    /// noise shrinks, and the detector classifies noise-free levels
    /// correctly for either polarity.
    #[test]
    fn detector_is_consistent(empty in -1.0f64..1.0, delta in 0.05f64..2.0, noise in 0.01f64..1.0, polarity in proptest::bool::ANY) {
        let occupied = if polarity { empty + delta } else { empty - delta };
        let d = Detector::new(empty, occupied).unwrap();
        prop_assert_eq!(d.classify(occupied), Occupancy::Occupied);
        prop_assert_eq!(d.classify(empty), Occupancy::Empty);
        let p_err = d.error_probability(noise);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&p_err));
        prop_assert!(d.error_probability(noise * 0.5) <= p_err + 1e-12);
    }

    /// SNR gain of the averager is exactly sqrt(N) and the scan time is
    /// proportional to N.
    #[test]
    fn averager_scaling(n in 1u32..512) {
        let avg = FrameAverager::new(n);
        prop_assert!((avg.snr_gain() - (n as f64).sqrt()).abs() < 1e-12);
        let timing = ScanTiming::date05_reference();
        let dims = GridDims::new(64, 64);
        let total = timing.averaged_scan_time(dims, &avg);
        let single = timing.frame_time(dims);
        prop_assert!((total.get() / single.get() - n as f64).abs() < 1e-9);
    }

    /// Bigger particles always give at least as much capacitive signal, and
    /// the signal separation is finite and positive.
    #[test]
    fn capacitive_signal_monotone_in_radius(r1_um in 2.0f64..9.0, extra_um in 0.5f64..6.0) {
        let small = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(r1_um),
            ..CapacitiveSensor::date05_reference()
        };
        let large = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(r1_um + extra_um),
            ..CapacitiveSensor::date05_reference()
        };
        prop_assert!(large.signal_separation() >= small.signal_separation());
        prop_assert!(small.signal_separation().get() > 0.0);
        prop_assert!(small.signal_separation().get().is_finite());
    }
}
