//! Property-based tests for the sensing crate.

use labchip_sensing::adc::Adc;
use labchip_sensing::array_scan::ArrayScanner;
use labchip_sensing::averaging::FrameAverager;
use labchip_sensing::capacitive::CapacitiveSensor;
use labchip_sensing::detect::{gaussian_tail, DetectionStats, Detector, Occupancy, OccupancyMap};
use labchip_sensing::noise::NoiseModel;
use labchip_sensing::scan::ScanTiming;
use labchip_units::{GridCoord, GridDims, Meters, Volts};
use proptest::prelude::*;

/// A strategy for arbitrary (truth, decision) trial sequences.
fn trials() -> impl Strategy<Value = Vec<(bool, bool)>> {
    proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 0..64)
}

fn occupancy(v: bool) -> Occupancy {
    if v {
        Occupancy::Occupied
    } else {
        Occupancy::Empty
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Gaussian tail is a valid, monotonically decreasing probability.
    #[test]
    fn gaussian_tail_is_monotone_probability(x in -6.0f64..6.0, dx in 0.01f64..3.0) {
        let p1 = gaussian_tail(x);
        let p2 = gaussian_tail(x + dx);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1 + 1e-12);
    }

    /// Averaging N frames never increases the effective noise, and the
    /// calibrated noise never exceeds the uncalibrated one.
    #[test]
    fn averaging_is_monotone(thermal in 0.1f64..5.0, flicker in 0.0f64..1.0, offset in 0.0f64..3.0, n in 1u32..256) {
        let noise = NoiseModel {
            thermal_rms: thermal,
            shot_rms: 0.0,
            flicker_rms: flicker,
            offset_sigma: offset,
        };
        prop_assert!(noise.averaged_rms(n + 1) <= noise.averaged_rms(n) + 1e-12);
        prop_assert!(noise.averaged_rms_calibrated(n) <= noise.averaged_rms(n) + 1e-12);
        prop_assert!(noise.averaged_rms_calibrated(n) >= flicker - 1e-12);
    }

    /// ADC quantisation round-trips within one LSB inside the full-scale
    /// range and saturates outside it.
    #[test]
    fn adc_round_trip_within_one_lsb(bits in 4u8..16, input_mv in -200.0f64..200.0) {
        let adc = Adc::new(bits, Volts::from_millivolts(100.0)).unwrap();
        let input = Volts::from_millivolts(input_mv);
        let reconstructed = adc.to_voltage(adc.quantize(input));
        if input_mv.abs() <= 99.0 {
            prop_assert!((reconstructed - input).abs() <= adc.lsb());
        } else {
            prop_assert!(reconstructed.abs() <= Volts::from_millivolts(100.0).abs());
        }
    }

    /// Detection error probability decreases when the separation grows or the
    /// noise shrinks, and the detector classifies noise-free levels
    /// correctly for either polarity.
    #[test]
    fn detector_is_consistent(empty in -1.0f64..1.0, delta in 0.05f64..2.0, noise in 0.01f64..1.0, polarity in proptest::bool::ANY) {
        let occupied = if polarity { empty + delta } else { empty - delta };
        let d = Detector::new(empty, occupied).unwrap();
        prop_assert_eq!(d.classify(occupied), Occupancy::Occupied);
        prop_assert_eq!(d.classify(empty), Occupancy::Empty);
        let p_err = d.error_probability(noise);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&p_err));
        prop_assert!(d.error_probability(noise * 0.5) <= p_err + 1e-12);
    }

    /// SNR gain of the averager is exactly sqrt(N) and the scan time is
    /// proportional to N.
    #[test]
    fn averager_scaling(n in 1u32..512) {
        let avg = FrameAverager::new(n);
        prop_assert!((avg.snr_gain() - (n as f64).sqrt()).abs() < 1e-12);
        let timing = ScanTiming::date05_reference();
        let dims = GridDims::new(64, 64);
        let total = timing.averaged_scan_time(dims, &avg);
        let single = timing.frame_time(dims);
        prop_assert!((total.get() / single.get() - n as f64).abs() < 1e-9);
    }

    /// Merging per-site [`DetectionStats`] is order-independent and agrees
    /// with recording every trial into one accumulator: the property the
    /// parallel full-array scan relies on.
    #[test]
    fn detection_stats_merge_is_order_independent(a in trials(), b in trials(), c in trials()) {
        let record_all = |sets: &[&Vec<(bool, bool)>]| {
            let mut stats = DetectionStats::default();
            for set in sets {
                for &(truth, decision) in set.iter() {
                    stats.record(occupancy(truth), occupancy(decision));
                }
            }
            stats
        };
        let stats_of = |set: &Vec<(bool, bool)>| record_all(&[set]);

        // Per-partition stats merged in any order equal the single-pass
        // accumulation over the concatenation.
        let (sa, sb, sc) = (stats_of(&a), stats_of(&b), stats_of(&c));
        let mut abc = sa;
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc;
        cba.merge(&sb);
        cba.merge(&sa);
        prop_assert_eq!(abc, cba);
        prop_assert_eq!(abc, record_all(&[&a, &b, &c]));
        prop_assert_eq!(abc.total() as usize, a.len() + b.len() + c.len());
    }

    /// A seeded noisy full-array scan is deterministic: the same seed and
    /// pass reproduce the identical map and stats whatever the thread
    /// count (per-site streams), and the stats agree with a per-site
    /// re-read of the same pass.
    #[test]
    fn seeded_full_array_scan_is_deterministic(seed in 0u64..u64::MAX, pass in 0u64..1024, side in 4u32..24, noise_scale in 0.0f64..8.0) {
        let dims = GridDims::square(side);
        let mut truth = OccupancyMap::new(dims);
        for site in dims.iter() {
            if (site.x * 7 + site.y * 13 + (seed % 5) as u32).is_multiple_of(4) {
                truth.set(site, Occupancy::Occupied);
            }
        }
        let scanner = ArrayScanner::date05_reference(dims, noise_scale, seed);
        let serial = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let parallel = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let one = serial.install(|| scanner.scan(&truth, 3, pass));
        let many = parallel.install(|| scanner.scan(&truth, 3, pass));
        prop_assert_eq!(&one, &many);

        // The stats are consistent with recording each site's decision.
        let mut recounted = DetectionStats::default();
        for site in dims.iter() {
            recounted.record(truth.get(site), one.map.get(site));
            prop_assert_eq!(
                scanner.sense_site(truth.get(site), site, 3, pass),
                one.map.get(site)
            );
        }
        prop_assert_eq!(recounted, one.stats);
        prop_assert_eq!(one.stats.total(), dims.count());
    }

    /// Zero noise makes any scan an exact read of the truth.
    #[test]
    fn zero_noise_scan_is_exact(seed in 0u64..u64::MAX, side in 4u32..24, frames in 1u32..8) {
        let dims = GridDims::square(side);
        let mut truth = OccupancyMap::new(dims);
        truth.set(GridCoord::new(side / 2, side / 3), Occupancy::Occupied);
        truth.set(GridCoord::new(side - 1, side - 1), Occupancy::Occupied);
        let scanner = ArrayScanner::date05_reference(dims, 0.0, seed);
        let result = scanner.scan(&truth, frames, 0);
        prop_assert_eq!(&result.map, &truth);
        prop_assert_eq!(result.stats.error_rate(), 0.0);
    }

    /// Bigger particles always give at least as much capacitive signal, and
    /// the signal separation is finite and positive.
    #[test]
    fn capacitive_signal_monotone_in_radius(r1_um in 2.0f64..9.0, extra_um in 0.5f64..6.0) {
        let small = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(r1_um),
            ..CapacitiveSensor::date05_reference()
        };
        let large = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(r1_um + extra_um),
            ..CapacitiveSensor::date05_reference()
        };
        prop_assert!(large.signal_separation() >= small.signal_separation());
        prop_assert!(small.signal_separation().get() > 0.0);
        prop_assert!(small.signal_separation().get().is_finite());
    }
}
