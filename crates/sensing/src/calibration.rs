//! Fixed-pattern-noise calibration.
//!
//! Pixel-to-pixel offset spread (fixed-pattern noise, FPN) does not average
//! away with repeated frames of the *same* scene; it is removed by
//! subtracting a reference frame acquired with an empty chamber — a step the
//! real chips perform at the start of every assay.

use crate::error::SensingError;
use crate::noise::NoiseModel;
use labchip_units::{GridCoord, GridDims};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-pixel offset map and the operations to build and apply it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffsetCalibration {
    dims: GridDims,
    offsets: Vec<f64>,
}

impl OffsetCalibration {
    /// Creates an identity (all-zero) calibration.
    pub fn identity(dims: GridDims) -> Self {
        Self {
            dims,
            offsets: vec![0.0; dims.count() as usize],
        }
    }

    /// Samples a static offset per pixel from the noise model — this plays
    /// the role of the chip's as-fabricated mismatch.
    pub fn sample_fixed_pattern<R: Rng + ?Sized>(
        dims: GridDims,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Self {
        Self {
            dims,
            offsets: (0..dims.count())
                .map(|_| noise.sample_offset(rng))
                .collect(),
        }
    }

    /// Builds a calibration by averaging `frames` reference frames of an
    /// empty chamber whose true per-pixel offsets are `fixed_pattern`.
    /// More reference frames give a cleaner estimate.
    pub fn from_reference_frames<R: Rng + ?Sized>(
        fixed_pattern: &OffsetCalibration,
        noise: &NoiseModel,
        frames: u32,
        rng: &mut R,
    ) -> Self {
        let n = frames.max(1);
        let offsets = fixed_pattern
            .offsets
            .iter()
            .map(|&true_offset| {
                let mut acc = 0.0;
                for _ in 0..n {
                    acc += true_offset + noise.sample_random(rng);
                }
                acc / n as f64
            })
            .collect();
        Self {
            dims: fixed_pattern.dims,
            offsets,
        }
    }

    /// Map dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The stored offset for one pixel.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the map.
    pub fn offset(&self, at: GridCoord) -> f64 {
        self.offsets[self.dims.index_of(at)]
    }

    /// Applies the calibration to a raw per-pixel reading.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the map.
    pub fn correct(&self, at: GridCoord, raw: f64) -> f64 {
        raw - self.offset(at)
    }

    /// RMS of the residual offsets after subtracting `self` from the true
    /// `fixed_pattern` — the figure of merit of a calibration.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::ShapeMismatch`] if the dimensions differ.
    pub fn residual_rms(&self, fixed_pattern: &OffsetCalibration) -> Result<f64, SensingError> {
        if self.dims != fixed_pattern.dims {
            return Err(SensingError::ShapeMismatch {
                what: format!(
                    "calibration {} vs pattern {}",
                    self.dims, fixed_pattern.dims
                ),
            });
        }
        let n = self.offsets.len() as f64;
        let sum_sq: f64 = self
            .offsets
            .iter()
            .zip(fixed_pattern.offsets.iter())
            .map(|(est, truth)| (truth - est).powi(2))
            .sum();
        Ok((sum_sq / n).sqrt())
    }

    /// RMS of the raw fixed-pattern offsets (what an uncalibrated readout
    /// suffers).
    pub fn rms(&self) -> f64 {
        let n = self.offsets.len() as f64;
        (self.offsets.iter().map(|o| o * o).sum::<f64>() / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn noise() -> NoiseModel {
        NoiseModel {
            thermal_rms: 1.0e-3,
            shot_rms: 0.0,
            flicker_rms: 0.0,
            offset_sigma: 5.0e-3,
        }
    }

    #[test]
    fn identity_calibration_changes_nothing() {
        let cal = OffsetCalibration::identity(GridDims::square(8));
        assert_eq!(cal.offset(GridCoord::new(3, 3)), 0.0);
        assert_eq!(cal.correct(GridCoord::new(3, 3), 0.42), 0.42);
        assert_eq!(cal.rms(), 0.0);
    }

    #[test]
    fn sampled_fixed_pattern_has_declared_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fp = OffsetCalibration::sample_fixed_pattern(GridDims::square(64), &noise(), &mut rng);
        assert!((fp.rms() / 5.0e-3 - 1.0).abs() < 0.1, "rms = {}", fp.rms());
    }

    #[test]
    fn reference_frame_calibration_reduces_fixed_pattern_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let dims = GridDims::square(32);
        let fp = OffsetCalibration::sample_fixed_pattern(dims, &noise(), &mut rng);
        let cal = OffsetCalibration::from_reference_frames(&fp, &noise(), 64, &mut rng);
        let residual = cal.residual_rms(&fp).unwrap();
        // The residual must be far below the raw FPN and close to the
        // reference-frame noise floor (1 mV / √64 ≈ 0.125 mV).
        assert!(
            residual < fp.rms() / 5.0,
            "residual {residual} vs raw {}",
            fp.rms()
        );
        assert!(residual < 0.5e-3);
    }

    #[test]
    fn more_reference_frames_give_better_calibration() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let dims = GridDims::square(32);
        let fp = OffsetCalibration::sample_fixed_pattern(dims, &noise(), &mut rng);
        let coarse = OffsetCalibration::from_reference_frames(&fp, &noise(), 2, &mut rng);
        let fine = OffsetCalibration::from_reference_frames(&fp, &noise(), 128, &mut rng);
        assert!(fine.residual_rms(&fp).unwrap() < coarse.residual_rms(&fp).unwrap());
    }

    #[test]
    fn mismatched_dimensions_are_rejected() {
        let a = OffsetCalibration::identity(GridDims::square(8));
        let b = OffsetCalibration::identity(GridDims::square(9));
        assert!(a.residual_rms(&b).is_err());
    }
}
