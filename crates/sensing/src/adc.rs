//! Analogue-to-digital conversion of the sensor outputs.

use crate::error::SensingError;
use labchip_units::Volts;
use serde::{Deserialize, Serialize};

/// A uniform mid-rise quantiser with saturation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u8,
    full_scale: Volts,
}

impl Adc {
    /// Creates an ADC with the given resolution and full-scale input range
    /// `[-full_scale, +full_scale]`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidConfiguration`] for a resolution
    /// outside `1..=24` bits or a non-positive full scale.
    pub fn new(bits: u8, full_scale: Volts) -> Result<Self, SensingError> {
        if !(1..=24).contains(&bits) {
            return Err(SensingError::InvalidConfiguration {
                name: "bits",
                reason: format!("resolution must be 1..=24 bits, got {bits}"),
            });
        }
        if full_scale.get() <= 0.0 {
            return Err(SensingError::InvalidConfiguration {
                name: "full_scale",
                reason: "full scale must be positive".into(),
            });
        }
        Ok(Self { bits, full_scale })
    }

    /// The 10-bit, ±50 mV converter used by the reference readout chain.
    pub fn date05_reference() -> Self {
        Self {
            bits: 10,
            full_scale: Volts::from_millivolts(50.0),
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale input (half range).
    pub fn full_scale(&self) -> Volts {
        self.full_scale
    }

    /// Number of quantisation levels.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Size of one least-significant bit in volts.
    pub fn lsb(&self) -> Volts {
        self.full_scale * 2.0 / self.levels() as f64
    }

    /// Converts an input voltage to a signed code, saturating at the range
    /// limits.
    pub fn quantize(&self, input: Volts) -> i32 {
        let max_code = (self.levels() / 2) as i32 - 1;
        let min_code = -(self.levels() as i32 / 2);
        let code = (input.get() / self.lsb().get()).round() as i64;
        code.clamp(min_code as i64, max_code as i64) as i32
    }

    /// Reconstructs the voltage corresponding to a code (mid-tread).
    pub fn to_voltage(&self, code: i32) -> Volts {
        self.lsb() * code as f64
    }

    /// RMS quantisation noise, `LSB/√12`.
    pub fn quantization_noise_rms(&self) -> Volts {
        self.lsb() / 12f64.sqrt()
    }
}

impl Default for Adc {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Adc::new(10, Volts::new(1.0)).is_ok());
        assert!(Adc::new(0, Volts::new(1.0)).is_err());
        assert!(Adc::new(30, Volts::new(1.0)).is_err());
        assert!(Adc::new(10, Volts::new(0.0)).is_err());
    }

    #[test]
    fn quantize_round_trips_within_one_lsb() {
        let adc = Adc::date05_reference();
        for mv in [-40.0, -12.3, 0.0, 3.3, 25.0, 49.0] {
            let v = Volts::from_millivolts(mv);
            let reconstructed = adc.to_voltage(adc.quantize(v));
            assert!(
                (reconstructed - v).abs() <= adc.lsb(),
                "input {mv} mV reconstructed {} mV",
                reconstructed.as_millivolts()
            );
        }
    }

    #[test]
    fn saturation_clamps_codes() {
        let adc = Adc::date05_reference();
        let big = adc.quantize(Volts::new(10.0));
        let small = adc.quantize(Volts::new(-10.0));
        assert_eq!(big, (adc.levels() / 2) as i32 - 1);
        assert_eq!(small, -(adc.levels() as i32 / 2));
    }

    #[test]
    fn more_bits_mean_finer_lsb_and_less_noise() {
        let coarse = Adc::new(8, Volts::new(1.0)).unwrap();
        let fine = Adc::new(12, Volts::new(1.0)).unwrap();
        assert!(fine.lsb() < coarse.lsb());
        assert!(fine.quantization_noise_rms() < coarse.quantization_noise_rms());
        assert_eq!(fine.levels(), 4096);
    }

    #[test]
    fn quantization_noise_formula() {
        let adc = Adc::new(10, Volts::new(1.0)).unwrap();
        let expected = adc.lsb().get() / 12f64.sqrt();
        assert!((adc.quantization_noise_rms().get() - expected).abs() < 1e-15);
    }
}
