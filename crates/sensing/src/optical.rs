//! Optical particle sensing.
//!
//! The optical variant of the per-electrode sensor is a photodiode below a
//! transparent electrode: a particle levitating above the pixel shadows part
//! of the illumination and lowers the photocurrent. The model works in
//! photocurrent relative units and converts to an output voltage through the
//! integration time and conversion gain.

use crate::detect::Occupancy;
use crate::noise::NoiseModel;
use labchip_units::{Meters, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// A per-electrode optical sensing channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalSensor {
    /// Photodiode (pixel) side length.
    pub pixel_size: Meters,
    /// Radius of the particle being detected.
    pub particle_radius: Meters,
    /// Fraction of the light blocked by the particle over its shadow area
    /// (cells are semi-transparent; beads are nearly opaque).
    pub particle_opacity: f64,
    /// Full-scale photodiode output voltage with unobstructed illumination
    /// and the nominal integration time.
    pub full_scale: Volts,
    /// Nominal integration time producing `full_scale` output.
    pub nominal_integration: Seconds,
    /// Noise of the channel, referred to the output.
    pub noise: NoiseModel,
}

impl OpticalSensor {
    /// The reference design: 20 µm pixel, 10 µm-radius semi-transparent cell,
    /// 1 V full-scale at 1 ms integration.
    pub fn date05_reference() -> Self {
        Self {
            pixel_size: Meters::from_micrometers(20.0),
            particle_radius: Meters::from_micrometers(10.0),
            particle_opacity: 0.35,
            full_scale: Volts::new(1.0),
            nominal_integration: Seconds::from_millis(1.0),
            noise: NoiseModel::default(),
        }
    }

    /// Fraction of the pixel area shadowed by the particle (0–1).
    pub fn shadow_fraction(&self) -> f64 {
        let pixel_area = self.pixel_size.get() * self.pixel_size.get();
        let shadow = std::f64::consts::PI * self.particle_radius.get().powi(2);
        (shadow / pixel_area).min(1.0)
    }

    /// Noise-free output voltage for the given occupancy at the given
    /// integration time (linear in integration time until full scale).
    pub fn signal_for(&self, occupancy: Occupancy, integration: Seconds) -> Volts {
        let scale = (integration.get() / self.nominal_integration.get()).min(1.5);
        let attenuation = match occupancy {
            Occupancy::Empty => 1.0,
            Occupancy::Occupied => 1.0 - self.shadow_fraction() * self.particle_opacity,
        };
        (self.full_scale * attenuation * scale).min(self.full_scale * 1.5)
    }

    /// Signal separation between empty and occupied states at the nominal
    /// integration time.
    pub fn signal_separation(&self) -> Volts {
        (self.signal_for(Occupancy::Empty, self.nominal_integration)
            - self.signal_for(Occupancy::Occupied, self.nominal_integration))
        .abs()
    }

    /// Single-frame signal-to-noise ratio.
    pub fn single_frame_snr(&self) -> f64 {
        self.signal_separation().get() / self.noise.random_rms()
    }
}

impl Default for OpticalSensor {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_shadow_reduces_signal() {
        let s = OpticalSensor::date05_reference();
        let empty = s.signal_for(Occupancy::Empty, s.nominal_integration);
        let occupied = s.signal_for(Occupancy::Occupied, s.nominal_integration);
        assert!(occupied < empty);
        assert!(s.signal_separation().get() > 0.0);
    }

    #[test]
    fn shadow_fraction_saturates_at_one() {
        let s = OpticalSensor {
            particle_radius: Meters::from_micrometers(30.0),
            ..OpticalSensor::date05_reference()
        };
        assert_eq!(s.shadow_fraction(), 1.0);
        let small = OpticalSensor {
            particle_radius: Meters::from_micrometers(2.0),
            ..OpticalSensor::date05_reference()
        };
        assert!(small.shadow_fraction() < 0.05);
    }

    #[test]
    fn longer_integration_increases_signal_up_to_saturation() {
        let s = OpticalSensor::date05_reference();
        let short = s.signal_for(Occupancy::Empty, Seconds::from_millis(0.5));
        let nominal = s.signal_for(Occupancy::Empty, Seconds::from_millis(1.0));
        let long = s.signal_for(Occupancy::Empty, Seconds::from_millis(10.0));
        assert!(short < nominal);
        assert!(long <= s.full_scale * 1.5);
    }

    #[test]
    fn opaque_beads_are_easier_to_see_than_cells() {
        let cell = OpticalSensor::date05_reference();
        let bead = OpticalSensor {
            particle_opacity: 0.9,
            ..cell
        };
        assert!(bead.signal_separation() > cell.signal_separation());
        assert!(bead.single_frame_snr() > cell.single_frame_snr());
    }

    #[test]
    fn single_frame_snr_is_finite_and_positive() {
        let s = OpticalSensor::date05_reference();
        let snr = s.single_frame_snr();
        assert!(snr.is_finite() && snr > 1.0);
    }
}
