//! Noise sources of the sensor front-end.
//!
//! The dominant contributions at the per-pixel level are the thermal (kTC and
//! amplifier) noise, shot noise of the photodiode current, 1/f (flicker)
//! noise of the MOS front-end, and the static pixel-to-pixel offset spread
//! (fixed-pattern noise). Frame averaging reduces the random terms as `1/√N`
//! but leaves fixed-pattern noise untouched — that is what calibration is
//! for.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal deviate with the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Input-referred noise description of one sensing channel, in units of the
/// sensor output (volts at the front-end output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// RMS thermal (white) noise per frame.
    pub thermal_rms: f64,
    /// RMS shot-noise contribution per frame.
    pub shot_rms: f64,
    /// RMS flicker (1/f) noise per frame; correlated between frames, so it is
    /// *not* reduced by short-term averaging.
    pub flicker_rms: f64,
    /// One-sigma pixel-to-pixel offset spread (fixed-pattern noise).
    pub offset_sigma: f64,
}

impl NoiseModel {
    /// A quiet channel with only thermal noise.
    pub fn thermal_only(thermal_rms: f64) -> Self {
        Self {
            thermal_rms,
            shot_rms: 0.0,
            flicker_rms: 0.0,
            offset_sigma: 0.0,
        }
    }

    /// Scales every noise term (thermal, shot, flicker and offset spread) by
    /// `factor` — the "noise RMS knob" that scenario sweeps turn. A factor of
    /// zero yields a perfectly quiet channel, so a zero-noise scan reproduces
    /// the true occupancy bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "noise scale must be finite and non-negative"
        );
        Self {
            thermal_rms: self.thermal_rms * factor,
            shot_rms: self.shot_rms * factor,
            flicker_rms: self.flicker_rms * factor,
            offset_sigma: self.offset_sigma * factor,
        }
    }

    /// Total RMS of the per-frame random noise (thermal + shot, in
    /// quadrature). Flicker and offset are handled separately because they do
    /// not average down the same way.
    pub fn random_rms(&self) -> f64 {
        (self.thermal_rms.powi(2) + self.shot_rms.powi(2)).sqrt()
    }

    /// Effective RMS noise after averaging `frames` frames: random terms fall
    /// as `1/√N`, flicker stays, offset stays (until calibrated away).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn averaged_rms(&self, frames: u32) -> f64 {
        assert!(frames > 0, "must average at least one frame");
        let random = self.random_rms() / (frames as f64).sqrt();
        (random.powi(2) + self.flicker_rms.powi(2) + self.offset_sigma.powi(2)).sqrt()
    }

    /// Effective RMS noise after averaging `frames` frames *and* removing the
    /// static offset with a calibration frame.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn averaged_rms_calibrated(&self, frames: u32) -> f64 {
        assert!(frames > 0, "must average at least one frame");
        let random = self.random_rms() / (frames as f64).sqrt();
        (random.powi(2) + self.flicker_rms.powi(2)).sqrt()
    }

    /// Samples the random (per-frame) noise for one reading.
    pub fn sample_random<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.random_rms() * standard_normal(rng)
    }

    /// Samples a static per-pixel offset (drawn once per pixel, reused for
    /// every frame).
    pub fn sample_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.offset_sigma * standard_normal(rng)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            thermal_rms: 1.0e-3,
            shot_rms: 0.3e-3,
            flicker_rms: 0.1e-3,
            offset_sigma: 2.0e-3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_rms_adds_in_quadrature() {
        let n = NoiseModel {
            thermal_rms: 3.0,
            shot_rms: 4.0,
            flicker_rms: 0.0,
            offset_sigma: 0.0,
        };
        assert!((n.random_rms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn averaging_reduces_random_noise_as_sqrt_n() {
        let n = NoiseModel::thermal_only(1.0);
        assert!((n.averaged_rms(1) - 1.0).abs() < 1e-12);
        assert!((n.averaged_rms(4) - 0.5).abs() < 1e-12);
        assert!((n.averaged_rms(16) - 0.25).abs() < 1e-12);
        assert!((n.averaged_rms(100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn averaging_does_not_remove_offset_but_calibration_does() {
        let n = NoiseModel {
            thermal_rms: 1.0,
            shot_rms: 0.0,
            flicker_rms: 0.0,
            offset_sigma: 2.0,
        };
        // With heavy averaging the residual is dominated by the offset.
        assert!((n.averaged_rms(10_000) - 2.0).abs() < 0.01);
        // Calibration removes it.
        assert!(n.averaged_rms_calibrated(10_000) < 0.05);
    }

    #[test]
    fn flicker_floor_limits_averaging() {
        let n = NoiseModel {
            thermal_rms: 1.0,
            shot_rms: 0.0,
            flicker_rms: 0.2,
            offset_sigma: 0.0,
        };
        // Averaging cannot push the noise below the flicker floor.
        assert!(n.averaged_rms_calibrated(1_000_000) >= 0.2);
    }

    #[test]
    fn sampled_noise_matches_declared_rms() {
        let n = NoiseModel::thermal_only(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = 5_000;
        let var: f64 = (0..samples)
            .map(|_| n.sample_random(&mut rng).powi(2))
            .sum::<f64>()
            / samples as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = NoiseModel::default().averaged_rms(0);
    }

    #[test]
    fn scaling_multiplies_every_term() {
        let n = NoiseModel::default().scaled(3.0);
        assert!((n.thermal_rms - 3.0e-3).abs() < 1e-12);
        assert!((n.shot_rms - 0.9e-3).abs() < 1e-12);
        assert!((n.flicker_rms - 0.3e-3).abs() < 1e-12);
        assert!((n.offset_sigma - 6.0e-3).abs() < 1e-12);
        let quiet = NoiseModel::default().scaled(0.0);
        assert_eq!(quiet.random_rms(), 0.0);
        assert_eq!(quiet.averaged_rms(4), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scale_rejected() {
        let _ = NoiseModel::default().scaled(-1.0);
    }
}
