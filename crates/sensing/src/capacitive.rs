//! Capacitive particle sensing.
//!
//! In the capacitive readout of the paper's chip family (ISSCC'04) each
//! electrode doubles as a sense plate: the presence of a cell above the
//! electrode displaces conductive medium and changes the electrode-to-lid
//! capacitance by a few femtofarads. A charge amplifier converts the
//! capacitance change into an output voltage.

use crate::detect::Occupancy;
use crate::noise::NoiseModel;
use labchip_units::{Farads, Meters, Volts, VACUUM_PERMITTIVITY, WATER_RELATIVE_PERMITTIVITY};
use serde::{Deserialize, Serialize};

/// A per-electrode capacitive sensing channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacitiveSensor {
    /// Electrode side length (the sense plate is the electrode itself).
    pub electrode_size: Meters,
    /// Distance from electrode to the lid counter-electrode.
    pub chamber_height: Meters,
    /// Relative permittivity of the particle (a cell is mostly water but its
    /// interior is screened by the membrane at the sense frequency; an
    /// effective value of ~50 captures the contrast).
    pub particle_relative_permittivity: f64,
    /// Radius of the particle the channel is sized for.
    pub particle_radius: Meters,
    /// Charge-amplifier conversion gain, volts of output per farad of
    /// capacitance change.
    pub gain_volts_per_farad: f64,
    /// Noise of the channel, referred to the amplifier output.
    pub noise: NoiseModel,
}

impl CapacitiveSensor {
    /// The reference design: 20 µm electrode, 80 µm chamber, 10 µm-radius
    /// cells, 10 mV/fF conversion gain and the default noise budget.
    pub fn date05_reference() -> Self {
        Self {
            electrode_size: Meters::from_micrometers(20.0),
            chamber_height: Meters::from_micrometers(80.0),
            particle_relative_permittivity: 50.0,
            particle_radius: Meters::from_micrometers(10.0),
            gain_volts_per_farad: 10e-3 / 1e-15,
            noise: NoiseModel::default(),
        }
    }

    /// Baseline electrode-to-lid capacitance with only medium above the
    /// electrode (parallel-plate approximation).
    pub fn baseline_capacitance(&self) -> Farads {
        let area = self.electrode_size.get() * self.electrode_size.get();
        Farads::new(
            VACUUM_PERMITTIVITY * WATER_RELATIVE_PERMITTIVITY * area / self.chamber_height.get(),
        )
    }

    /// Capacitance change caused by a particle of the configured radius
    /// centred above the electrode. The particle replaces a slab of medium of
    /// thickness equal to its diameter over the fraction of the electrode
    /// area it shadows, with its own (lower) permittivity — a series-plate
    /// approximation that captures the few-femtofarad magnitude seen on real
    /// chips.
    pub fn delta_capacitance(&self, occupancy: Occupancy) -> Farads {
        match occupancy {
            Occupancy::Empty => Farads::new(0.0),
            Occupancy::Occupied => {
                let electrode_area = self.electrode_size.get() * self.electrode_size.get();
                let shadow =
                    (std::f64::consts::PI * self.particle_radius.get().powi(2)).min(electrode_area);
                let h = self.chamber_height.get();
                let t = (2.0 * self.particle_radius.get()).min(h * 0.9);
                let eps_m = WATER_RELATIVE_PERMITTIVITY;
                let eps_p = self.particle_relative_permittivity;
                // Series combination over the shadowed area: medium of
                // thickness (h - t) in series with particle of thickness t.
                let c_medium_full = VACUUM_PERMITTIVITY * eps_m * shadow / h;
                let c_series = VACUUM_PERMITTIVITY * shadow / ((h - t) / eps_m + t / eps_p);
                Farads::new(c_series - c_medium_full)
            }
        }
    }

    /// Noise-free output voltage of the channel for the given occupancy
    /// (relative to the empty-chamber baseline).
    pub fn signal_for(&self, occupancy: Occupancy) -> Volts {
        Volts::new(self.delta_capacitance(occupancy).get() * self.gain_volts_per_farad)
    }

    /// Signal separation between occupied and empty states — the quantity the
    /// detector thresholds.
    pub fn signal_separation(&self) -> Volts {
        (self.signal_for(Occupancy::Occupied) - self.signal_for(Occupancy::Empty)).abs()
    }

    /// Single-frame signal-to-noise ratio (separation over per-frame random
    /// noise RMS).
    pub fn single_frame_snr(&self) -> f64 {
        self.signal_separation().get() / self.noise.random_rms()
    }
}

impl Default for CapacitiveSensor {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_capacitance_is_femtofarad_scale() {
        let s = CapacitiveSensor::date05_reference();
        let c = s.baseline_capacitance();
        assert!(
            c.as_femtofarads() > 1.0 && c.as_femtofarads() < 20.0,
            "C = {} fF",
            c.as_femtofarads()
        );
    }

    #[test]
    fn cell_presence_changes_capacitance_by_femtofarads() {
        let s = CapacitiveSensor::date05_reference();
        let dc = s.delta_capacitance(Occupancy::Occupied);
        assert!(
            dc.get() < 0.0,
            "a low-permittivity cell reduces capacitance"
        );
        assert!(
            dc.as_femtofarads().abs() > 0.05 && dc.as_femtofarads().abs() < 10.0,
            "dC = {} fF",
            dc.as_femtofarads()
        );
        assert_eq!(s.delta_capacitance(Occupancy::Empty).get(), 0.0);
    }

    #[test]
    fn signal_separation_is_millivolt_scale() {
        let s = CapacitiveSensor::date05_reference();
        let sep = s.signal_separation();
        assert!(
            sep.as_millivolts() > 0.5 && sep.as_millivolts() < 100.0,
            "sep = {sep}"
        );
    }

    #[test]
    fn bigger_cells_give_bigger_signals() {
        let small = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(5.0),
            ..CapacitiveSensor::date05_reference()
        };
        let large = CapacitiveSensor {
            particle_radius: Meters::from_micrometers(12.0),
            ..CapacitiveSensor::date05_reference()
        };
        assert!(large.signal_separation() > small.signal_separation());
    }

    #[test]
    fn single_frame_snr_is_modest() {
        // The whole point of frame averaging (E4): one frame alone gives an
        // SNR in the single digits.
        let s = CapacitiveSensor::date05_reference();
        let snr = s.single_frame_snr();
        assert!(snr > 1.0 && snr < 100.0, "SNR = {snr}");
    }

    #[test]
    fn occupied_signal_differs_from_empty() {
        let s = CapacitiveSensor::date05_reference();
        assert!(s.signal_for(Occupancy::Occupied) != s.signal_for(Occupancy::Empty));
    }
}
