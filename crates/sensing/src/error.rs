//! Error type for the sensing crate.

use std::fmt;

/// Errors produced by the sensing models.
#[derive(Debug, Clone, PartialEq)]
pub enum SensingError {
    /// A configuration value was outside its valid range.
    InvalidConfiguration {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint.
        reason: String,
    },
    /// Two data structures that must have matching shapes did not.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
}

impl fmt::Display for SensingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensingError::InvalidConfiguration { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            SensingError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for SensingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SensingError::InvalidConfiguration {
            name: "bits",
            reason: "must be 1..=24".into(),
        };
        assert!(e.to_string().contains("bits"));
        let e = SensingError::ShapeMismatch {
            what: "map 10x10 vs frame 8x8".into(),
        };
        assert!(e.to_string().contains("10x10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SensingError>();
    }
}
