//! # labchip-sensing
//!
//! Models of the per-electrode particle sensors of the DATE'05 biochip: the
//! optical (photodiode) and capacitive front-ends, their noise sources, the
//! readout ADC, frame averaging, detection thresholds and calibration.
//!
//! The paper's §2 argues that, because cells move slowly, there is time to
//! "trade time of execution for quality of the results, e.g. averaging
//! sensors output for thermal noise reduction". The [`averaging`] and
//! [`detect`] modules quantify exactly that trade: SNR grows as `√N` with the
//! number of averaged frames and the detection error rate falls accordingly,
//! at the price of a proportionally longer scan time.
//!
//! ## Example
//!
//! ```
//! use labchip_sensing::prelude::*;
//!
//! let sensor = CapacitiveSensor::date05_reference();
//! // A 10 µm-radius cell sitting in the cage produces a clearly defined
//! // capacitance change relative to an empty cage.
//! assert!(sensor.signal_separation().as_millivolts() > 0.5);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod adc;
pub mod array_scan;
pub mod averaging;
pub mod calibration;
pub mod capacitive;
pub mod detect;
pub mod error;
pub mod noise;
pub mod optical;
pub mod scan;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::adc::Adc;
    pub use crate::array_scan::{ArrayScanner, ScanResult, TruthSource};
    pub use crate::averaging::FrameAverager;
    pub use crate::calibration::OffsetCalibration;
    pub use crate::capacitive::CapacitiveSensor;
    pub use crate::detect::{DetectionStats, Detector, Occupancy, OccupancyMap};
    pub use crate::error::SensingError;
    pub use crate::noise::NoiseModel;
    pub use crate::optical::OpticalSensor;
    pub use crate::scan::ScanTiming;
}

pub use error::SensingError;
