//! Frame averaging: trading scan time for signal-to-noise ratio.
//!
//! This is the concrete instance of the paper's §2 observation that the slow
//! mechanics leaves the electronics with time to spare: instead of one sensor
//! frame per decision, acquire `N` frames and average them. The random noise
//! falls as `1/√N`, the detection error rate falls with it, and the cost is a
//! scan time proportional to `N` — which is affordable because the cells are
//! barely moving on that timescale.

use crate::detect::{Detector, Occupancy};
use crate::noise::{standard_normal, NoiseModel};
use labchip_units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An averaging readout configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameAverager {
    frames: u32,
}

impl FrameAverager {
    /// Creates an averager over `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: u32) -> Self {
        assert!(frames > 0, "must average at least one frame");
        Self { frames }
    }

    /// Number of frames averaged.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// SNR improvement factor over a single frame (`√N`).
    pub fn snr_gain(&self) -> f64 {
        (self.frames as f64).sqrt()
    }

    /// Total acquisition time for one averaged reading.
    pub fn total_time(&self, frame_time: Seconds) -> Seconds {
        frame_time * self.frames as f64
    }

    /// Effective RMS noise of the averaged reading for the given per-frame
    /// noise model (offset assumed calibrated away).
    pub fn effective_noise(&self, noise: &NoiseModel) -> f64 {
        noise.averaged_rms_calibrated(self.frames)
    }

    /// Produces one averaged measurement of a site whose noise-free level is
    /// `signal`, by simulating the individual frames.
    pub fn measure<R: Rng + ?Sized>(&self, signal: f64, noise: &NoiseModel, rng: &mut R) -> f64 {
        // Flicker noise is correlated across the burst of frames: draw once.
        let flicker = noise.flicker_rms * standard_normal(rng);
        let mut acc = 0.0;
        for _ in 0..self.frames {
            acc += signal + flicker + noise.sample_random(rng);
        }
        acc / self.frames as f64
    }

    /// Runs a detection experiment: `trials` sites per true state, measured
    /// with this averager and classified by `detector`. Returns the observed
    /// error rate.
    pub fn detection_error_rate<R: Rng + ?Sized>(
        &self,
        detector: &Detector,
        noise: &NoiseModel,
        trials: u32,
        rng: &mut R,
    ) -> f64 {
        let mut errors = 0u64;
        for &truth in &[Occupancy::Empty, Occupancy::Occupied] {
            let level = match truth {
                Occupancy::Empty => detector.empty_level,
                Occupancy::Occupied => detector.occupied_level,
            };
            for _ in 0..trials {
                let measured = self.measure(level, noise, rng);
                if detector.classify(measured) != truth {
                    errors += 1;
                }
            }
        }
        errors as f64 / (2 * trials) as f64
    }
}

impl Default for FrameAverager {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn snr_gain_is_sqrt_n() {
        assert_eq!(FrameAverager::new(1).snr_gain(), 1.0);
        assert_eq!(FrameAverager::new(4).snr_gain(), 2.0);
        assert_eq!(FrameAverager::new(64).snr_gain(), 8.0);
    }

    #[test]
    fn total_time_scales_linearly() {
        let frame = Seconds::from_millis(5.0);
        assert_eq!(
            FrameAverager::new(16).total_time(frame),
            Seconds::from_millis(80.0)
        );
    }

    #[test]
    fn averaged_measurement_variance_shrinks() {
        let noise = NoiseModel {
            thermal_rms: 1.0,
            shot_rms: 0.0,
            flicker_rms: 0.0,
            offset_sigma: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let single = FrameAverager::new(1);
        let many = FrameAverager::new(64);
        let var = |avg: &FrameAverager, rng: &mut ChaCha8Rng| {
            let n = 800;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let m = avg.measure(0.0, &noise, rng);
                sum_sq += m * m;
            }
            sum_sq / n as f64
        };
        let v1 = var(&single, &mut rng);
        let v64 = var(&many, &mut rng);
        assert!(
            v64 < v1 / 30.0,
            "expected ~64x variance reduction, got {v1:.3} -> {v64:.3}"
        );
    }

    #[test]
    fn detection_error_rate_improves_with_averaging() {
        // The E4 experiment in miniature: a marginal single-frame SNR becomes
        // a reliable detector after averaging.
        let noise = NoiseModel {
            thermal_rms: 0.8,
            shot_rms: 0.0,
            flicker_rms: 0.0,
            offset_sigma: 0.0,
        };
        let detector = Detector::new(0.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let single = FrameAverager::new(1).detection_error_rate(&detector, &noise, 3_000, &mut rng);
        let averaged =
            FrameAverager::new(32).detection_error_rate(&detector, &noise, 3_000, &mut rng);
        assert!(single > 0.1, "single-frame error {single}");
        assert!(averaged < 0.02, "averaged error {averaged}");
    }

    #[test]
    fn flicker_noise_sets_an_averaging_floor() {
        let noise = NoiseModel {
            thermal_rms: 1.0,
            shot_rms: 0.0,
            flicker_rms: 0.5,
            offset_sigma: 0.0,
        };
        let avg = FrameAverager::new(10_000);
        assert!(avg.effective_noise(&noise) >= 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = FrameAverager::new(0);
    }
}
