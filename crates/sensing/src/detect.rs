//! Occupancy detection: thresholds, error rates and occupancy maps.
//!
//! The readout's job is to answer, for every electrode, "is there a particle
//! in this cage?". The detector thresholds the (averaged) sensor output
//! halfway between the empty and occupied signal levels; its error rate
//! follows the Gaussian tail of the residual noise, which is what improves
//! when frames are averaged (paper §2, experiment E4).

use crate::error::SensingError;
use crate::noise::standard_normal;
use labchip_units::{GridCoord, GridDims};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth or detected occupancy of one cage / electrode site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Occupancy {
    /// No particle present.
    #[default]
    Empty,
    /// A particle is present.
    Occupied,
}

impl Occupancy {
    /// Logical negation.
    pub fn toggled(self) -> Self {
        match self {
            Occupancy::Empty => Occupancy::Occupied,
            Occupancy::Occupied => Occupancy::Empty,
        }
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26 approximation,
/// absolute error < 1.5e-7) — enough for detection-probability estimates.
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let val = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - val
    } else {
        val
    }
}

/// Gaussian upper-tail probability `Q(x) = P(N(0,1) > x)`.
pub fn gaussian_tail(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// A two-level threshold detector for one sensing channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// Output level corresponding to an empty site.
    pub empty_level: f64,
    /// Output level corresponding to an occupied site.
    pub occupied_level: f64,
}

impl Detector {
    /// Creates a detector from the two noise-free signal levels.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidConfiguration`] if the two levels
    /// coincide (no signal separation to threshold).
    pub fn new(empty_level: f64, occupied_level: f64) -> Result<Self, SensingError> {
        if empty_level == occupied_level {
            return Err(SensingError::InvalidConfiguration {
                name: "levels",
                reason: "empty and occupied levels must differ".into(),
            });
        }
        Ok(Self {
            empty_level,
            occupied_level,
        })
    }

    /// The decision threshold (midpoint of the two levels).
    pub fn threshold(&self) -> f64 {
        0.5 * (self.empty_level + self.occupied_level)
    }

    /// Signal separation between the two levels.
    pub fn separation(&self) -> f64 {
        (self.occupied_level - self.empty_level).abs()
    }

    /// Classifies a measured value.
    pub fn classify(&self, measured: f64) -> Occupancy {
        let towards_occupied = if self.occupied_level > self.empty_level {
            measured > self.threshold()
        } else {
            measured < self.threshold()
        };
        if towards_occupied {
            Occupancy::Occupied
        } else {
            Occupancy::Empty
        }
    }

    /// Theoretical per-site error probability given the RMS noise of the
    /// measurement: `Q(separation / (2·noise_rms))`.
    pub fn error_probability(&self, noise_rms: f64) -> f64 {
        if noise_rms <= 0.0 {
            0.0
        } else {
            gaussian_tail(self.separation() / (2.0 * noise_rms))
        }
    }

    /// Simulates `trials` detections of a site with true state `truth`,
    /// measurement noise `noise_rms`, returning the observed statistics.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        truth: Occupancy,
        noise_rms: f64,
        trials: u32,
        rng: &mut R,
    ) -> DetectionStats {
        let level = match truth {
            Occupancy::Empty => self.empty_level,
            Occupancy::Occupied => self.occupied_level,
        };
        let mut stats = DetectionStats::default();
        for _ in 0..trials {
            let measured = level + noise_rms * standard_normal(rng);
            stats.record(truth, self.classify(measured));
        }
        stats
    }
}

/// Confusion-matrix counts accumulated over detection trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Occupied sites correctly detected.
    pub true_positives: u64,
    /// Empty sites incorrectly reported as occupied.
    pub false_positives: u64,
    /// Empty sites correctly reported empty.
    pub true_negatives: u64,
    /// Occupied sites missed.
    pub false_negatives: u64,
}

impl DetectionStats {
    /// Records one (truth, decision) pair.
    pub fn record(&mut self, truth: Occupancy, decision: Occupancy) {
        match (truth, decision) {
            (Occupancy::Occupied, Occupancy::Occupied) => self.true_positives += 1,
            (Occupancy::Occupied, Occupancy::Empty) => self.false_negatives += 1,
            (Occupancy::Empty, Occupancy::Occupied) => self.false_positives += 1,
            (Occupancy::Empty, Occupancy::Empty) => self.true_negatives += 1,
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &DetectionStats) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Total number of recorded trials.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Overall error rate (wrong decisions over total).
    pub fn error_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.false_positives + self.false_negatives) as f64 / total as f64
        }
    }

    /// Sensitivity (true-positive rate).
    pub fn sensitivity(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            1.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// Specificity (true-negative rate).
    pub fn specificity(&self) -> f64 {
        let n = self.true_negatives + self.false_positives;
        if n == 0 {
            1.0
        } else {
            self.true_negatives as f64 / n as f64
        }
    }
}

/// A per-electrode occupancy map, the end product of a sensor scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyMap {
    dims: GridDims,
    cells: Vec<Occupancy>,
}

impl OccupancyMap {
    /// Creates an all-empty map.
    pub fn new(dims: GridDims) -> Self {
        Self {
            dims,
            cells: vec![Occupancy::Empty; dims.count() as usize],
        }
    }

    /// Map dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Occupancy at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the map.
    pub fn get(&self, at: GridCoord) -> Occupancy {
        self.cells[self.dims.index_of(at)]
    }

    /// Sets the occupancy at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the map.
    pub fn set(&mut self, at: GridCoord, value: Occupancy) {
        let idx = self.dims.index_of(at);
        self.cells[idx] = value;
    }

    /// Number of occupied sites.
    pub fn occupied_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| **c == Occupancy::Occupied)
            .count()
    }

    /// Coordinates of all occupied sites, row-major.
    pub fn occupied_sites(&self) -> Vec<GridCoord> {
        self.dims
            .iter()
            .filter(|c| self.get(*c) == Occupancy::Occupied)
            .collect()
    }

    /// Number of sites whose value differs from `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::ShapeMismatch`] when the two maps have
    /// different dimensions.
    pub fn diff_count(&self, other: &OccupancyMap) -> Result<usize, SensingError> {
        if self.dims != other.dims {
            return Err(SensingError::ShapeMismatch {
                what: format!("occupancy maps {} vs {}", self.dims, other.dims),
            });
        }
        Ok(self
            .cells
            .iter()
            .zip(other.cells.iter())
            .filter(|(a, b)| a != b)
            .count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gaussian_tail_reference_values() {
        assert!((gaussian_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((gaussian_tail(1.0) - 0.1587).abs() < 1e-3);
        assert!((gaussian_tail(2.0) - 0.0228).abs() < 1e-3);
        assert!((gaussian_tail(3.0) - 0.00135).abs() < 2e-4);
        assert!((gaussian_tail(-1.0) - 0.8413).abs() < 1e-3);
    }

    #[test]
    fn detector_classifies_on_the_right_side_of_threshold() {
        let d = Detector::new(0.0, 1.0).unwrap();
        assert_eq!(d.threshold(), 0.5);
        assert_eq!(d.classify(0.9), Occupancy::Occupied);
        assert_eq!(d.classify(0.1), Occupancy::Empty);
        // Inverted polarity (occupied level below empty level) also works —
        // this is the capacitive channel, where a cell *reduces* the signal.
        let inv = Detector::new(0.0, -1.0).unwrap();
        assert_eq!(inv.classify(-0.9), Occupancy::Occupied);
        assert_eq!(inv.classify(-0.1), Occupancy::Empty);
        assert!(Detector::new(0.5, 0.5).is_err());
    }

    #[test]
    fn error_probability_falls_with_snr() {
        let d = Detector::new(0.0, 1.0).unwrap();
        let noisy = d.error_probability(0.5);
        let quiet = d.error_probability(0.1);
        assert!(quiet < noisy);
        assert_eq!(d.error_probability(0.0), 0.0);
        // separation/2sigma = 1 → Q(1) ≈ 0.159.
        assert!((d.error_probability(0.5) - 0.1587).abs() < 1e-3);
    }

    #[test]
    fn simulated_error_rate_matches_theory() {
        let d = Detector::new(0.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let noise = 0.4;
        let mut stats = d.simulate(Occupancy::Occupied, noise, 20_000, &mut rng);
        stats.merge(&d.simulate(Occupancy::Empty, noise, 20_000, &mut rng));
        let theory = d.error_probability(noise);
        assert!(
            (stats.error_rate() - theory).abs() < 0.01,
            "simulated {} vs theory {}",
            stats.error_rate(),
            theory
        );
        assert_eq!(stats.total(), 40_000);
        assert!(stats.sensitivity() > 0.8);
        assert!(stats.specificity() > 0.8);
    }

    #[test]
    fn occupancy_map_set_get_and_count() {
        let mut map = OccupancyMap::new(GridDims::square(8));
        assert_eq!(map.occupied_count(), 0);
        map.set(GridCoord::new(2, 3), Occupancy::Occupied);
        map.set(GridCoord::new(5, 5), Occupancy::Occupied);
        assert_eq!(map.get(GridCoord::new(2, 3)), Occupancy::Occupied);
        assert_eq!(map.occupied_count(), 2);
        assert_eq!(map.occupied_sites().len(), 2);
    }

    #[test]
    fn occupancy_map_diff() {
        let mut a = OccupancyMap::new(GridDims::square(4));
        let b = OccupancyMap::new(GridDims::square(4));
        a.set(GridCoord::new(1, 1), Occupancy::Occupied);
        assert_eq!(a.diff_count(&b).unwrap(), 1);
        assert_eq!(a.diff_count(&a).unwrap(), 0);
        let c = OccupancyMap::new(GridDims::square(5));
        assert!(a.diff_count(&c).is_err());
    }

    #[test]
    fn occupancy_toggle() {
        assert_eq!(Occupancy::Empty.toggled(), Occupancy::Occupied);
        assert_eq!(Occupancy::Occupied.toggled(), Occupancy::Empty);
    }
}
