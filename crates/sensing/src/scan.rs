//! Readout scan timing.
//!
//! The sensor array is read out row by row through column-parallel
//! converters. The full-frame scan time, together with the number of frames
//! averaged, is the electronics side of the time budget that the slow cell
//! motion leaves almost entirely free (paper §2).

use crate::averaging::FrameAverager;
use labchip_units::{GridDims, Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// Timing of the sensor readout chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanTiming {
    /// Conversion rate of each column ADC.
    pub adc_rate: Hertz,
    /// Number of column-parallel ADCs (columns are multiplexed onto them).
    pub parallel_adcs: u32,
    /// Per-row settling overhead before conversions start.
    pub row_settle: Seconds,
}

impl ScanTiming {
    /// The reference readout: 1 MS/s column ADCs, 32 in parallel, 2 µs row
    /// settling.
    pub fn date05_reference() -> Self {
        Self {
            adc_rate: Hertz::from_megahertz(1.0),
            parallel_adcs: 32,
            row_settle: Seconds::from_micros(2.0),
        }
    }

    /// Time to read one row of `cols` pixels.
    pub fn row_time(&self, cols: u32) -> Seconds {
        let conversions_per_adc = (cols as f64 / self.parallel_adcs.max(1) as f64).ceil();
        self.row_settle + Seconds::new(conversions_per_adc / self.adc_rate.get())
    }

    /// Time to scan one full frame of a `dims` array.
    pub fn frame_time(&self, dims: GridDims) -> Seconds {
        self.row_time(dims.cols) * dims.rows as f64
    }

    /// Time to acquire an averaged occupancy map with the given averager.
    pub fn averaged_scan_time(&self, dims: GridDims, averager: &FrameAverager) -> Seconds {
        averager.total_time(self.frame_time(dims))
    }

    /// Sustainable frame rate.
    pub fn frame_rate(&self, dims: GridDims) -> f64 {
        1.0 / self.frame_time(dims).get()
    }
}

impl Default for ScanTiming {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_frame_scan_is_milliseconds() {
        // Reading all 102,400 sensors takes a few milliseconds — fast
        // compared with the ~0.4 s cage step at 50 µm/s.
        let t = ScanTiming::date05_reference().frame_time(GridDims::new(320, 320));
        assert!(
            t.as_millis() > 0.5 && t.as_millis() < 20.0,
            "t = {} ms",
            t.as_millis()
        );
    }

    #[test]
    fn row_time_accounts_for_multiplexing() {
        let timing = ScanTiming::date05_reference();
        // 320 columns / 32 ADCs = 10 conversions at 1 µs + 2 µs settle.
        let t = timing.row_time(320);
        assert!((t.as_micros() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn more_parallel_adcs_scan_faster() {
        let slow = ScanTiming {
            parallel_adcs: 8,
            ..ScanTiming::date05_reference()
        };
        let fast = ScanTiming {
            parallel_adcs: 64,
            ..ScanTiming::date05_reference()
        };
        let dims = GridDims::new(320, 320);
        assert!(fast.frame_time(dims) < slow.frame_time(dims));
        assert!(fast.frame_rate(dims) > slow.frame_rate(dims));
    }

    #[test]
    fn averaging_multiplies_scan_time() {
        let timing = ScanTiming::date05_reference();
        let dims = GridDims::new(320, 320);
        let one = timing.averaged_scan_time(dims, &FrameAverager::new(1));
        let sixteen = timing.averaged_scan_time(dims, &FrameAverager::new(16));
        assert!((sixteen.get() / one.get() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn even_heavy_averaging_fits_in_a_cage_step() {
        // 64-frame averaging of the full array still completes in well under
        // the ~0.4 s cage step period at 50 µm/s — the paper's "plenty of
        // time" claim, quantified.
        let timing = ScanTiming::date05_reference();
        let t = timing.averaged_scan_time(GridDims::new(320, 320), &FrameAverager::new(64));
        assert!(t.get() < 0.4, "t = {} s", t.get());
    }
}
