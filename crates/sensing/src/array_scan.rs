//! Full-array scan synthesis: from true occupancy to a *detected* map.
//!
//! Everything else in this crate models one sensing channel at a time; this
//! module assembles those pieces into the thing the chip actually produces
//! each cycle — a whole-array [`OccupancyMap`] read through real, noisy
//! electronics. For every site the synthesizer takes the true occupancy,
//! produces the noise-free [`CapacitiveSensor`] level, adds the site's
//! fixed-pattern offset and a seeded per-site noise burst, averages
//! [`FrameAverager`]-style, subtracts the [`OffsetCalibration`] estimate and
//! thresholds with the level classifier ([`Detector`]). The result is the
//! detected map plus the [`DetectionStats`] confusion counts against truth.
//!
//! ## Determinism contract
//!
//! Each site draws from its own ChaCha8 stream, derived as a pure function
//! of `(scanner seed, site index, scan pass)` with the same SplitMix64
//! mixing discipline as the particle simulator. Sites never share a stream,
//! so a scan is bit-identical however the rows are split across threads —
//! serial and parallel runs agree exactly, and re-scanning one suspect site
//! reproduces what a full scan of the same pass would have read there.

use crate::averaging::FrameAverager;
use crate::calibration::OffsetCalibration;
use crate::capacitive::CapacitiveSensor;
use crate::detect::{DetectionStats, Detector, Occupancy, OccupancyMap};
use crate::noise::NoiseModel;
use labchip_units::{GridCoord, GridDims};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stream-salt separating fixed-pattern sampling from scan noise.
const FIXED_PATTERN_SALT: u64 = 0xF1BE_D0FF_5E75_0001;
/// Stream-salt separating scan passes from one another.
const PASS_STRIDE: u64 = 0x517C_C1B7_2722_0A95;
/// Reference frames averaged to build the offset calibration.
const CALIBRATION_FRAMES: u32 = 64;

/// The outcome of one synthesized scan: what the readout decided, plus the
/// confusion counts against the true occupancy it was synthesized from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanResult {
    /// Per-site decisions of the classifier.
    pub map: OccupancyMap,
    /// Confusion-matrix counts versus the true occupancy.
    pub stats: DetectionStats,
}

/// Anything that can hand the scanner a ground-truth occupancy to read.
///
/// The plain [`OccupancyMap`] implements it trivially; state holders with
/// cached, dirty-tracked derivations (the manipulation layer's `ChipState`)
/// implement it by refreshing their cache on demand — so the scanner reads
/// whatever *owns* the truth instead of callers rebuilding a fresh map for
/// every scan. The accessor takes `&mut self` precisely so such caches can
/// refresh lazily.
pub trait TruthSource {
    /// The current ground-truth occupancy, refreshed if stale.
    fn truth_occupancy(&mut self) -> &OccupancyMap;
}

impl TruthSource for OccupancyMap {
    fn truth_occupancy(&mut self) -> &OccupancyMap {
        self
    }
}

/// Synthesizes whole-array detection scans from true occupancy.
///
/// Construction samples the chip's as-fabricated fixed-pattern offsets and
/// builds the start-of-assay reference-frame calibration, both from the
/// scanner seed; [`ArrayScanner::scan`] then produces one averaged, noisy,
/// calibrated, thresholded read of every site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayScanner {
    dims: GridDims,
    sensor: CapacitiveSensor,
    detector: Detector,
    noise: NoiseModel,
    fixed_pattern: OffsetCalibration,
    calibration: OffsetCalibration,
    seed: u64,
}

impl ArrayScanner {
    /// Creates a scanner for a `dims` array read through `sensor`, with
    /// every noise term scaled by `noise_scale` (0 = ideal electronics) and
    /// all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_scale` is negative or not finite.
    pub fn new(dims: GridDims, sensor: CapacitiveSensor, noise_scale: f64, seed: u64) -> Self {
        let noise = sensor.noise.scaled(noise_scale);
        let detector = Detector::new(0.0, sensor.signal_for(Occupancy::Occupied).get())
            .expect("occupied and empty sensor levels always differ");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ FIXED_PATTERN_SALT);
        let fixed_pattern = OffsetCalibration::sample_fixed_pattern(dims, &noise, &mut rng);
        let calibration = OffsetCalibration::from_reference_frames(
            &fixed_pattern,
            &noise,
            CALIBRATION_FRAMES,
            &mut rng,
        );
        Self {
            dims,
            sensor,
            detector,
            noise,
            fixed_pattern,
            calibration,
            seed,
        }
    }

    /// A scanner over the paper's reference channel.
    pub fn date05_reference(dims: GridDims, noise_scale: f64, seed: u64) -> Self {
        Self::new(
            dims,
            CapacitiveSensor::date05_reference(),
            noise_scale,
            seed,
        )
    }

    /// Array dimensions scanned.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The level classifier thresholding the readings.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The scaled per-frame noise in effect.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Theoretical per-site decision error probability of an `frames`-frame
    /// averaged read (offset assumed calibrated away — the residual
    /// calibration error is neglected).
    pub fn error_probability(&self, frames: u32) -> f64 {
        self.detector
            .error_probability(self.noise.averaged_rms_calibrated(frames))
    }

    /// The per-site ChaCha8 stream: SplitMix64-mix the site index and scan
    /// pass, fold into the seed — the same separation discipline as the
    /// particle simulator, so serial and parallel scans agree bit-for-bit.
    fn site_rng(&self, index: usize, pass: u64) -> ChaCha8Rng {
        let mut z = (index as u64)
            .wrapping_add(1)
            .wrapping_add(pass.wrapping_mul(PASS_STRIDE))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChaCha8Rng::seed_from_u64(self.seed ^ z)
    }

    /// One calibrated, averaged measurement of a site with true state
    /// `truth`.
    fn measure_site(
        &self,
        truth: Occupancy,
        site: GridCoord,
        frames: &FrameAverager,
        pass: u64,
    ) -> f64 {
        let index = self.dims.index_of(site);
        let level = self.sensor.signal_for(truth).get() + self.fixed_pattern.offset(site);
        let mut rng = self.site_rng(index, pass);
        let raw = frames.measure(level, &self.noise, &mut rng);
        self.calibration.correct(site, raw)
    }

    /// Reads and classifies one site — the targeted re-scan primitive the
    /// recovery loop uses on suspect sites, typically with more frames than
    /// the full scan. Deterministic in `(seed, site, pass)`.
    ///
    /// # Panics
    ///
    /// Panics if the site is outside the array or `frames` is zero.
    pub fn sense_site(
        &self,
        truth: Occupancy,
        site: GridCoord,
        frames: u32,
        pass: u64,
    ) -> Occupancy {
        let averager = FrameAverager::new(frames);
        self.detector
            .classify(self.measure_site(truth, site, &averager, pass))
    }

    /// [`ArrayScanner::scan`] against any [`TruthSource`] — the entry point
    /// state holders use so the scanner reads their cached truth directly.
    ///
    /// # Panics
    ///
    /// See [`ArrayScanner::scan`].
    pub fn scan_source(&self, source: &mut impl TruthSource, frames: u32, pass: u64) -> ScanResult {
        self.scan(source.truth_occupancy(), frames, pass)
    }

    /// Synthesizes one full-array scan of `truth`, averaging `frames` frames
    /// per site; `pass` separates repeated scans of the same cycle. Sites
    /// are processed in parallel (rayon) with per-site streams, so the
    /// result is independent of the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `truth` has different dimensions or `frames` is zero.
    pub fn scan(&self, truth: &OccupancyMap, frames: u32, pass: u64) -> ScanResult {
        assert_eq!(
            truth.dims(),
            self.dims,
            "truth map dimensions must match the scanner"
        );
        let averager = FrameAverager::new(frames);
        let mut decisions = vec![Occupancy::Empty; self.dims.count() as usize];
        decisions
            .par_iter_mut()
            .enumerate()
            .for_each(|(index, slot)| {
                let site = self.dims.coord_of(index);
                let truth_here = truth.get(site);
                *slot = self
                    .detector
                    .classify(self.measure_site(truth_here, site, &averager, pass));
            });

        let mut map = OccupancyMap::new(self.dims);
        let mut stats = DetectionStats::default();
        for (index, decision) in decisions.into_iter().enumerate() {
            let site = self.dims.coord_of(index);
            map.set(site, decision);
            stats.record(truth.get(site), decision);
        }
        ScanResult { map, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_with(dims: GridDims, occupied: &[(u32, u32)]) -> OccupancyMap {
        let mut map = OccupancyMap::new(dims);
        for &(x, y) in occupied {
            map.set(GridCoord::new(x, y), Occupancy::Occupied);
        }
        map
    }

    #[test]
    fn zero_noise_scan_reproduces_truth_exactly() {
        let dims = GridDims::square(24);
        let truth = truth_with(dims, &[(3, 4), (10, 10), (20, 1), (0, 23)]);
        let scanner = ArrayScanner::date05_reference(dims, 0.0, 7);
        let result = scanner.scan(&truth, 1, 0);
        assert_eq!(result.map, truth);
        assert_eq!(result.stats.error_rate(), 0.0);
        assert_eq!(result.stats.true_positives, 4);
        assert_eq!(result.stats.total(), dims.count());
    }

    #[test]
    fn scans_are_deterministic_per_seed_and_pass() {
        let dims = GridDims::square(16);
        let truth = truth_with(dims, &[(2, 2), (8, 9)]);
        let scanner = ArrayScanner::date05_reference(dims, 6.0, 42);
        let a = scanner.scan(&truth, 4, 1);
        let b = scanner.scan(&truth, 4, 1);
        assert_eq!(a, b);
        // A different pass re-reads with fresh noise.
        let c = scanner.scan(&truth, 4, 2);
        assert_ne!(
            a.map, c.map,
            "heavy noise should flip some decisions between passes"
        );
        // A different seed gives a different chip.
        let other = ArrayScanner::date05_reference(dims, 6.0, 43);
        assert_ne!(other.scan(&truth, 4, 1).map, a.map);
    }

    #[test]
    fn sense_site_matches_the_full_scan_of_the_same_pass() {
        let dims = GridDims::square(12);
        let truth = truth_with(dims, &[(5, 5), (1, 9)]);
        let scanner = ArrayScanner::date05_reference(dims, 5.0, 11);
        let full = scanner.scan(&truth, 8, 3);
        for site in dims.iter() {
            assert_eq!(
                scanner.sense_site(truth.get(site), site, 8, 3),
                full.map.get(site),
                "site {site} disagrees with the full scan"
            );
        }
    }

    #[test]
    fn error_rate_tracks_theory_and_falls_with_frames() {
        let dims = GridDims::square(64);
        // Half the array occupied so both error kinds are exercised.
        let mut truth = OccupancyMap::new(dims);
        for site in dims.iter() {
            if (site.x + site.y) % 2 == 0 {
                truth.set(site, Occupancy::Occupied);
            }
        }
        let scanner = ArrayScanner::date05_reference(dims, 8.0, 5);
        let noisy = scanner.scan(&truth, 2, 0);
        let averaged = scanner.scan(&truth, 32, 1);
        assert!(
            noisy.stats.error_rate() > averaged.stats.error_rate(),
            "averaging must reduce the observed error rate: {} vs {}",
            noisy.stats.error_rate(),
            averaged.stats.error_rate()
        );
        let theory = scanner.error_probability(2);
        let observed = noisy.stats.error_rate();
        assert!(
            (observed - theory).abs() < 0.05 + 0.5 * theory,
            "observed {observed} vs theory {theory}"
        );
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_truth_dimensions_panic() {
        let scanner = ArrayScanner::date05_reference(GridDims::square(8), 1.0, 1);
        let _ = scanner.scan(&OccupancyMap::new(GridDims::square(9)), 1, 0);
    }
}
