//! The sample microchamber.
//!
//! The paper's chip holds a ~4 µl drop of cell suspension in a chamber formed
//! by the chip surface, a patterned dry-resist spacer and an ITO-coated glass
//! lid (Fig. 3). The chamber geometry sets the liquid volume, the number of
//! cells it can hold at a given concentration, and the electrode-to-lid gap
//! that the field models use.

use crate::error::FluidicsError;
use labchip_units::{CubicMeters, Meters};
use serde::{Deserialize, Serialize};

/// A rectangular microchamber above the active array area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microchamber {
    /// Chamber footprint length (x).
    pub length: Meters,
    /// Chamber footprint width (y).
    pub width: Meters,
    /// Chamber height (electrode plane to lid), set by the resist spacer.
    pub height: Meters,
}

impl Microchamber {
    /// Creates a chamber from its dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::InvalidParameter`] if any dimension is not
    /// strictly positive.
    pub fn new(length: Meters, width: Meters, height: Meters) -> Result<Self, FluidicsError> {
        for (name, v) in [("length", length), ("width", width), ("height", height)] {
            if v.get() <= 0.0 {
                return Err(FluidicsError::InvalidParameter {
                    name,
                    reason: "chamber dimensions must be positive".into(),
                });
            }
        }
        Ok(Self {
            length,
            width,
            height,
        })
    }

    /// The paper's reference chamber: 7 mm × 7 mm footprint over the 6.4 mm
    /// array, 80 µm high — about 4 µl of liquid.
    pub fn date05_reference() -> Self {
        Self {
            length: Meters::from_millimeters(7.0),
            width: Meters::from_millimeters(7.0),
            height: Meters::from_micrometers(80.0),
        }
    }

    /// Chamber volume.
    pub fn volume(&self) -> CubicMeters {
        CubicMeters::new(self.length.get() * self.width.get() * self.height.get())
    }

    /// Footprint area in m².
    pub fn footprint_area(&self) -> f64 {
        self.length.get() * self.width.get()
    }

    /// Expected number of cells in the chamber for a suspension of
    /// `cells_per_microliter`.
    pub fn expected_cell_count(&self, cells_per_microliter: f64) -> f64 {
        cells_per_microliter * self.volume().as_microliters()
    }

    /// Cell concentration (cells/µl) needed to have on average one cell per
    /// `cages` cages.
    pub fn concentration_for_occupancy(&self, cages: u64, cells_per_cage: f64) -> f64 {
        cages as f64 * cells_per_cage / self.volume().as_microliters()
    }

    /// Height-to-minimum-lateral-dimension aspect ratio; a sanity figure for
    /// bonding and filling.
    pub fn aspect_ratio(&self) -> f64 {
        self.height.get() / self.length.get().min(self.width.get())
    }
}

impl Default for Microchamber {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_chamber_holds_about_four_microliters() {
        // C1: "a drop of liquid (~4 µl) on top of the chip".
        let chamber = Microchamber::date05_reference();
        let v = chamber.volume().as_microliters();
        assert!(v > 3.0 && v < 5.0, "volume = {v} ul");
    }

    #[test]
    fn invalid_dimensions_are_rejected() {
        assert!(Microchamber::new(
            Meters::new(0.0),
            Meters::from_millimeters(1.0),
            Meters::from_micrometers(50.0)
        )
        .is_err());
        assert!(Microchamber::new(
            Meters::from_millimeters(1.0),
            Meters::from_millimeters(-1.0),
            Meters::from_micrometers(50.0)
        )
        .is_err());
    }

    #[test]
    fn cell_counts_scale_with_concentration() {
        let chamber = Microchamber::date05_reference();
        let sparse = chamber.expected_cell_count(100.0);
        let dense = chamber.expected_cell_count(10_000.0);
        assert!((dense / sparse - 100.0).abs() < 1e-9);
        // At 10,000 cells/µl a 4 µl chamber holds ~40,000 cells — the
        // "tens of thousands" the cage array is sized for.
        assert!(dense > 10_000.0);
    }

    #[test]
    fn concentration_for_one_cell_per_cage() {
        let chamber = Microchamber::date05_reference();
        let conc = chamber.concentration_for_occupancy(10_000, 1.0);
        let check = chamber.expected_cell_count(conc);
        assert!((check - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn chamber_is_a_thin_slab() {
        let chamber = Microchamber::date05_reference();
        assert!(chamber.aspect_ratio() < 0.05);
        assert!(chamber.footprint_area() > 0.0);
    }
}
