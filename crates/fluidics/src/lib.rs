//! # labchip-fluidics
//!
//! Microfluidic and packaging substrate of the `labchip` workspace.
//!
//! The DATE'05 paper's §3 argues that the fluidic and packaging side of a
//! biochip is where the conventional simulate-first design flow breaks down:
//! the physics is multi-domain, the governing parameters (wettability,
//! evaporation, electro-thermal flow, cell properties) are poorly known, yet
//! the structures themselves are coarse (~100 µm features, one or two mask
//! layers) and can be fabricated in days for a few euros of mask cost. This
//! crate provides the models needed to reason about that argument:
//!
//! * the sample **microchamber** and its geometry ([`chamber`]),
//! * pressure-driven **channel networks** solved with lumped hydraulic
//!   resistances ([`channel`], [`flow`]),
//! * 1–2 layer **mask layouts** and their **design rules** ([`layout`],
//!   [`drc`]),
//! * **fabrication process** models — dry film resist, PDMS soft lithography,
//!   wet-etched glass — with cost and turnaround figures ([`fabrication`]),
//! * the hybrid **packaging stack** of Fig. 3 ([`packaging`]),
//! * the **parameter uncertainty** description that makes fluidic simulation
//!   "a research topic in itself" ([`uncertainty`]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod chamber;
pub mod channel;
pub mod drc;
pub mod error;
pub mod fabrication;
pub mod flow;
pub mod layout;
pub mod packaging;
pub mod uncertainty;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::chamber::Microchamber;
    pub use crate::channel::{ChannelNetwork, ChannelSegment, FlowSolution, NodeId};
    pub use crate::drc::{DesignRules, DrcReport, DrcViolation};
    pub use crate::error::FluidicsError;
    pub use crate::fabrication::{FabricationProcess, FabricationQuote, ProcessKind};
    pub use crate::flow::{peclet_number, reynolds_number, RectangularChannel};
    pub use crate::layout::{MaskFeature, MaskLayer, MaskLayout};
    pub use crate::packaging::{PackagingStack, StackLayer};
    pub use crate::uncertainty::{FluidicParameters, SimulationFidelity};
}

pub use error::FluidicsError;
