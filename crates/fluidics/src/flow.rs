//! Single-channel laminar-flow relations.
//!
//! Microfluidic channels at the ~100 µm scale operate at Reynolds numbers far
//! below 1: flow is laminar, pressure-driven flow follows the Hagen–Poiseuille
//! law, and mixing is diffusion-limited (high Péclet number). These relations
//! are the building blocks of the lumped channel-network solver.

use crate::error::FluidicsError;
use labchip_units::{Meters, MetersPerSecond, PascalSeconds, Pascals};
use serde::{Deserialize, Serialize};

/// A straight channel of rectangular cross-section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RectangularChannel {
    /// Channel width (in the mask plane).
    pub width: Meters,
    /// Channel height (resist thickness).
    pub height: Meters,
    /// Channel length.
    pub length: Meters,
}

impl RectangularChannel {
    /// Creates a channel.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::InvalidParameter`] for non-positive
    /// dimensions.
    pub fn new(width: Meters, height: Meters, length: Meters) -> Result<Self, FluidicsError> {
        for (name, v) in [("width", width), ("height", height), ("length", length)] {
            if v.get() <= 0.0 {
                return Err(FluidicsError::InvalidParameter {
                    name,
                    reason: "channel dimensions must be positive".into(),
                });
            }
        }
        Ok(Self {
            width,
            height,
            length,
        })
    }

    /// Cross-sectional area.
    pub fn cross_section(&self) -> f64 {
        self.width.get() * self.height.get()
    }

    /// Hydraulic diameter `2wh/(w+h)`.
    pub fn hydraulic_diameter(&self) -> Meters {
        Meters::new(
            2.0 * self.width.get() * self.height.get() / (self.width.get() + self.height.get()),
        )
    }

    /// Hydraulic resistance for a rectangular duct (first-order series
    /// approximation, accurate to a few percent for aspect ratios ≤ 1):
    /// `R = 12 η L / (w h³ (1 − 0.63 h/w))`, with `h ≤ w`.
    pub fn hydraulic_resistance(&self, viscosity: PascalSeconds) -> f64 {
        let (w, h) = if self.width.get() >= self.height.get() {
            (self.width.get(), self.height.get())
        } else {
            (self.height.get(), self.width.get())
        };
        let correction = 1.0 - 0.63 * h / w;
        12.0 * viscosity.get() * self.length.get() / (w * h.powi(3) * correction)
    }

    /// Volumetric flow rate (m³/s) under a pressure drop.
    pub fn flow_rate(&self, delta_p: Pascals, viscosity: PascalSeconds) -> f64 {
        delta_p.get() / self.hydraulic_resistance(viscosity)
    }

    /// Mean flow velocity under a pressure drop.
    pub fn mean_velocity(&self, delta_p: Pascals, viscosity: PascalSeconds) -> MetersPerSecond {
        MetersPerSecond::new(self.flow_rate(delta_p, viscosity) / self.cross_section())
    }
}

/// Reynolds number `ρ v D_h / η` of a flow in a channel of hydraulic diameter
/// `hydraulic_diameter`.
pub fn reynolds_number(
    density: f64,
    velocity: MetersPerSecond,
    hydraulic_diameter: Meters,
    viscosity: PascalSeconds,
) -> f64 {
    density * velocity.get() * hydraulic_diameter.get() / viscosity.get()
}

/// Péclet number `v L / D` comparing advection with diffusion over length
/// `characteristic_length` for a species of diffusivity `diffusivity` (m²/s).
pub fn peclet_number(
    velocity: MetersPerSecond,
    characteristic_length: Meters,
    diffusivity: f64,
) -> f64 {
    velocity.get() * characteristic_length.get() / diffusivity
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::{WATER_DENSITY, WATER_VISCOSITY};

    fn reference_channel() -> RectangularChannel {
        // A typical dry-resist channel: 200 µm wide, 50 µm high, 10 mm long.
        RectangularChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(50.0),
            Meters::from_millimeters(10.0),
        )
        .unwrap()
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(RectangularChannel::new(
            Meters::new(0.0),
            Meters::from_micrometers(50.0),
            Meters::from_millimeters(1.0)
        )
        .is_err());
    }

    #[test]
    fn hydraulic_resistance_order_of_magnitude() {
        // R ≈ 12·0.89e-3·0.01 / (200e-6·(50e-6)³·(1-0.63·0.25)) ≈ 5e12 Pa·s/m³.
        let r = reference_channel().hydraulic_resistance(PascalSeconds::new(WATER_VISCOSITY));
        assert!(r > 1e12 && r < 1e13, "R = {r:.3e}");
    }

    #[test]
    fn kilopascal_drives_microliter_per_minute_flows() {
        // The useful operating point of such chips: ~1 kPa drives a fraction
        // of a µl/s through the channel.
        let ch = reference_channel();
        let q = ch.flow_rate(Pascals::new(1_000.0), PascalSeconds::new(WATER_VISCOSITY));
        let ul_per_min = q * 1e9 * 60.0;
        assert!(
            ul_per_min > 1.0 && ul_per_min < 100.0,
            "Q = {ul_per_min} ul/min"
        );
    }

    #[test]
    fn flow_is_deeply_laminar() {
        // C5 context: at mm/s velocities in 100 µm channels Re ≪ 1, so CFD
        // turbulence is never the issue — unknown parameters are.
        let ch = reference_channel();
        let v = ch.mean_velocity(Pascals::new(1_000.0), PascalSeconds::new(WATER_VISCOSITY));
        let re = reynolds_number(
            WATER_DENSITY,
            v,
            ch.hydraulic_diameter(),
            PascalSeconds::new(WATER_VISCOSITY),
        );
        assert!(re < 10.0, "Re = {re}");
    }

    #[test]
    fn transport_is_advection_dominated_for_cells() {
        // Cells diffuse so slowly (D ≈ 2.5e-14 m²/s) that Pe ≫ 1 even at
        // 10 µm/s: they go where the flow and the DEP take them.
        let pe = peclet_number(
            MetersPerSecond::from_micrometers_per_second(10.0),
            Meters::from_micrometers(100.0),
            2.5e-14,
        );
        assert!(pe > 1_000.0);
    }

    #[test]
    fn resistance_is_symmetric_in_width_height_swap() {
        let a = RectangularChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(50.0),
            Meters::from_millimeters(5.0),
        )
        .unwrap();
        let b = RectangularChannel::new(
            Meters::from_micrometers(50.0),
            Meters::from_micrometers(200.0),
            Meters::from_millimeters(5.0),
        )
        .unwrap();
        let visc = PascalSeconds::new(WATER_VISCOSITY);
        assert!((a.hydraulic_resistance(visc) / b.hydraulic_resistance(visc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrower_channels_resist_more() {
        let visc = PascalSeconds::new(WATER_VISCOSITY);
        let wide = reference_channel();
        let narrow = RectangularChannel::new(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(50.0),
            Meters::from_millimeters(10.0),
        )
        .unwrap();
        assert!(narrow.hydraulic_resistance(visc) > wide.hydraulic_resistance(visc));
    }
}
