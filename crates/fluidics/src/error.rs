//! Error type for the fluidics crate.

use std::fmt;

/// Errors produced by the fluidic models.
#[derive(Debug, Clone, PartialEq)]
pub enum FluidicsError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint.
        reason: String,
    },
    /// A channel network was ill-posed (disconnected, no pressure reference,
    /// singular system).
    IllPosedNetwork {
        /// Explanation of the problem.
        reason: String,
    },
    /// A referenced node or feature does not exist.
    UnknownElement {
        /// Description of the missing element.
        what: String,
    },
}

impl fmt::Display for FluidicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluidicsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            FluidicsError::IllPosedNetwork { reason } => {
                write!(f, "ill-posed channel network: {reason}")
            }
            FluidicsError::UnknownElement { what } => write!(f, "unknown element: {what}"),
        }
    }
}

impl std::error::Error for FluidicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FluidicsError::InvalidParameter {
            name: "width",
            reason: "must be positive".into()
        }
        .to_string()
        .contains("width"));
        assert!(FluidicsError::IllPosedNetwork {
            reason: "no pressure reference".into()
        }
        .to_string()
        .contains("pressure"));
        assert!(FluidicsError::UnknownElement {
            what: "node 7".into()
        }
        .to_string()
        .contains("node 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FluidicsError>();
    }
}
