//! Lumped channel-network solver.
//!
//! A microfluidic circuit is modelled as a graph of nodes connected by
//! channel segments, each with a hydraulic resistance. Pressures are imposed
//! at boundary nodes (inlets/outlets); the interior pressures and all segment
//! flow rates follow from mass conservation — the exact analogue of nodal
//! analysis of a resistor network, solved here by Gaussian elimination.

use crate::error::FluidicsError;
use crate::flow::RectangularChannel;
use labchip_units::{PascalSeconds, Pascals};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A channel segment between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSegment {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Channel geometry.
    pub geometry: RectangularChannel,
}

/// A channel network under construction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelNetwork {
    segments: Vec<ChannelSegment>,
    boundary_pressures: HashMap<u32, f64>,
    viscosity: Option<PascalSeconds>,
}

/// Solved pressures and flows of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSolution {
    pressures: HashMap<u32, f64>,
    /// Flow rate through each segment (m³/s), positive from `from` to `to`,
    /// in the order the segments were added.
    flows: Vec<f64>,
}

impl ChannelNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the working-fluid viscosity.
    pub fn set_viscosity(&mut self, viscosity: PascalSeconds) {
        self.viscosity = Some(viscosity);
    }

    /// Adds a channel segment between two nodes.
    pub fn add_segment(&mut self, from: NodeId, to: NodeId, geometry: RectangularChannel) {
        self.segments.push(ChannelSegment { from, to, geometry });
    }

    /// Imposes a boundary pressure at a node (inlet or outlet).
    pub fn set_pressure(&mut self, node: NodeId, pressure: Pascals) {
        self.boundary_pressures.insert(node.0, pressure.get());
    }

    /// The segments added so far.
    pub fn segments(&self) -> &[ChannelSegment] {
        &self.segments
    }

    /// Solves the network.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::IllPosedNetwork`] when no boundary pressure
    /// is set, the network is empty, or the nodal system is singular
    /// (disconnected unknowns), and [`FluidicsError::InvalidParameter`] when
    /// the viscosity has not been set.
    pub fn solve(&self) -> Result<FlowSolution, FluidicsError> {
        let viscosity = self.viscosity.ok_or(FluidicsError::InvalidParameter {
            name: "viscosity",
            reason: "call set_viscosity before solving".into(),
        })?;
        if self.segments.is_empty() {
            return Err(FluidicsError::IllPosedNetwork {
                reason: "network has no segments".into(),
            });
        }
        if self.boundary_pressures.is_empty() {
            return Err(FluidicsError::IllPosedNetwork {
                reason: "no boundary pressure set".into(),
            });
        }

        // Collect nodes and split into knowns (boundary) and unknowns.
        let mut nodes: Vec<u32> = self
            .segments
            .iter()
            .flat_map(|s| [s.from.0, s.to.0])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let unknowns: Vec<u32> = nodes
            .iter()
            .copied()
            .filter(|n| !self.boundary_pressures.contains_key(n))
            .collect();
        let index: HashMap<u32, usize> =
            unknowns.iter().enumerate().map(|(i, n)| (*n, i)).collect();

        let n = unknowns.len();
        let mut matrix = vec![vec![0.0_f64; n]; n];
        let mut rhs = vec![0.0_f64; n];

        for seg in &self.segments {
            let g = 1.0 / seg.geometry.hydraulic_resistance(viscosity);
            let a = seg.from.0;
            let b = seg.to.0;
            for (this, other) in [(a, b), (b, a)] {
                if let Some(&i) = index.get(&this) {
                    matrix[i][i] += g;
                    if let Some(&j) = index.get(&other) {
                        matrix[i][j] -= g;
                    } else {
                        rhs[i] += g * self.boundary_pressures[&other];
                    }
                }
            }
        }

        let solution = if n > 0 {
            gaussian_elimination(matrix, rhs).ok_or(FluidicsError::IllPosedNetwork {
                reason: "singular nodal system (disconnected node?)".into(),
            })?
        } else {
            Vec::new()
        };

        let mut pressures: HashMap<u32, f64> = self.boundary_pressures.clone();
        for (i, node) in unknowns.iter().enumerate() {
            pressures.insert(*node, solution[i]);
        }

        let flows = self
            .segments
            .iter()
            .map(|seg| {
                let dp = pressures[&seg.from.0] - pressures[&seg.to.0];
                dp / seg.geometry.hydraulic_resistance(viscosity)
            })
            .collect();

        Ok(FlowSolution { pressures, flows })
    }
}

impl FlowSolution {
    /// Pressure at a node.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::UnknownElement`] for a node that was not part
    /// of the solved network.
    pub fn pressure(&self, node: NodeId) -> Result<Pascals, FluidicsError> {
        self.pressures
            .get(&node.0)
            .map(|p| Pascals::new(*p))
            .ok_or_else(|| FluidicsError::UnknownElement {
                what: format!("node {}", node.0),
            })
    }

    /// Flow rate (m³/s) through the `i`-th added segment, positive from
    /// `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::UnknownElement`] for an out-of-range index.
    pub fn segment_flow(&self, i: usize) -> Result<f64, FluidicsError> {
        self.flows
            .get(i)
            .copied()
            .ok_or_else(|| FluidicsError::UnknownElement {
                what: format!("segment {i}"),
            })
    }

    /// All segment flows, in insertion order.
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }

    /// Net volumetric imbalance at a node (should be ~0 for interior nodes).
    pub fn node_imbalance(&self, node: NodeId, network: &ChannelNetwork) -> f64 {
        let mut net = 0.0;
        for (seg, q) in network.segments().iter().zip(self.flows.iter()) {
            if seg.to == node {
                net += q;
            }
            if seg.from == node {
                net -= q;
            }
        }
        net
    }
}

/// Dense Gaussian elimination with partial pivoting; returns `None` for a
/// singular system or one contaminated by non-finite coefficients.
#[allow(clippy::needless_range_loop)] // Gaussian elimination needs two rows of `a` at once
fn gaussian_elimination(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot. A NaN or infinite candidate would previously win (or lose)
        // the comparison arbitrarily and poison the back-substitution with a
        // plausible-looking garbage solution; treat it as singular instead.
        let mut pivot_row = col;
        let mut pivot_mag = -1.0f64;
        for row in col..n {
            let mag = a[row][col].abs();
            if !mag.is_finite() {
                return None;
            }
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = row;
            }
        }
        if a[pivot_row][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::{Meters, WATER_VISCOSITY};

    fn channel(width_um: f64, length_mm: f64) -> RectangularChannel {
        RectangularChannel::new(
            Meters::from_micrometers(width_um),
            Meters::from_micrometers(50.0),
            Meters::from_millimeters(length_mm),
        )
        .unwrap()
    }

    fn viscosity() -> PascalSeconds {
        PascalSeconds::new(WATER_VISCOSITY)
    }

    #[test]
    fn nan_contaminated_system_is_rejected_as_singular() {
        // Regression: a NaN candidate used to win (or lose) the pivot
        // comparison arbitrarily via `partial_cmp(..).unwrap_or(Equal)`,
        // and back-substitution then returned a plausible-looking garbage
        // solution instead of failing.
        let a = vec![vec![1.0, 2.0], vec![f64::NAN, 1.0]];
        assert!(gaussian_elimination(a, vec![1.0, 2.0]).is_none());
        let inf = vec![vec![f64::INFINITY, 0.0], vec![0.0, 1.0]];
        assert!(gaussian_elimination(inf, vec![1.0, 1.0]).is_none());
        // A well-posed system still solves.
        let x = gaussian_elimination(vec![vec![2.0, 0.0], vec![0.0, 4.0]], vec![2.0, 8.0])
            .expect("regular system solves");
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_channel_matches_hagen_poiseuille() {
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        let geom = channel(200.0, 10.0);
        net.add_segment(NodeId(0), NodeId(1), geom);
        net.set_pressure(NodeId(0), Pascals::new(1_000.0));
        net.set_pressure(NodeId(1), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        let expected = geom.flow_rate(Pascals::new(1_000.0), viscosity());
        assert!((sol.segment_flow(0).unwrap() / expected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_channels_split_pressure() {
        // Two identical channels in series: the midpoint sits at half the
        // driving pressure and both carry the same flow.
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        net.add_segment(NodeId(0), NodeId(1), channel(200.0, 10.0));
        net.add_segment(NodeId(1), NodeId(2), channel(200.0, 10.0));
        net.set_pressure(NodeId(0), Pascals::new(2_000.0));
        net.set_pressure(NodeId(2), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        assert!((sol.pressure(NodeId(1)).unwrap().get() - 1_000.0).abs() < 1e-6);
        assert!((sol.segment_flow(0).unwrap() - sol.segment_flow(1).unwrap()).abs() < 1e-18);
        // Mass is conserved at the interior node.
        assert!(sol.node_imbalance(NodeId(1), &net).abs() < 1e-18);
    }

    #[test]
    fn parallel_channels_split_flow_by_conductance() {
        // A wide and a narrow channel in parallel: the wide one takes more
        // flow, in the ratio of their conductances.
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        let wide = channel(300.0, 10.0);
        let narrow = channel(100.0, 10.0);
        net.add_segment(NodeId(0), NodeId(1), wide);
        net.add_segment(NodeId(0), NodeId(1), narrow);
        net.set_pressure(NodeId(0), Pascals::new(1_000.0));
        net.set_pressure(NodeId(1), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        let q_wide = sol.segment_flow(0).unwrap();
        let q_narrow = sol.segment_flow(1).unwrap();
        assert!(q_wide > q_narrow);
        let expected_ratio =
            narrow.hydraulic_resistance(viscosity()) / wide.hydraulic_resistance(viscosity());
        assert!((q_wide / q_narrow / expected_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn h_bridge_network_conserves_mass_everywhere() {
        // Inlet splits into two branches that rejoin before the outlet, with
        // a bridge channel between the midpoints.
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        net.add_segment(NodeId(0), NodeId(1), channel(200.0, 5.0));
        net.add_segment(NodeId(0), NodeId(2), channel(150.0, 5.0));
        net.add_segment(NodeId(1), NodeId(2), channel(100.0, 2.0));
        net.add_segment(NodeId(1), NodeId(3), channel(150.0, 5.0));
        net.add_segment(NodeId(2), NodeId(3), channel(200.0, 5.0));
        net.set_pressure(NodeId(0), Pascals::new(500.0));
        net.set_pressure(NodeId(3), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        for node in [NodeId(1), NodeId(2)] {
            assert!(
                sol.node_imbalance(node, &net).abs() < 1e-18,
                "mass not conserved at {node:?}"
            );
        }
        // Pressures decrease monotonically from inlet to outlet.
        let p0 = sol.pressure(NodeId(0)).unwrap().get();
        let p3 = sol.pressure(NodeId(3)).unwrap().get();
        for node in [NodeId(1), NodeId(2)] {
            let p = sol.pressure(node).unwrap().get();
            assert!(p < p0 && p > p3);
        }
    }

    #[test]
    fn ill_posed_networks_are_rejected() {
        // Missing viscosity.
        let mut net = ChannelNetwork::new();
        net.add_segment(NodeId(0), NodeId(1), channel(200.0, 10.0));
        net.set_pressure(NodeId(0), Pascals::new(100.0));
        assert!(matches!(
            net.solve(),
            Err(FluidicsError::InvalidParameter {
                name: "viscosity",
                ..
            })
        ));
        // No boundary pressure.
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        net.add_segment(NodeId(0), NodeId(1), channel(200.0, 10.0));
        assert!(matches!(
            net.solve(),
            Err(FluidicsError::IllPosedNetwork { .. })
        ));
        // Empty network.
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        net.set_pressure(NodeId(0), Pascals::new(100.0));
        assert!(matches!(
            net.solve(),
            Err(FluidicsError::IllPosedNetwork { .. })
        ));
    }

    #[test]
    fn unknown_elements_in_solution_are_errors() {
        let mut net = ChannelNetwork::new();
        net.set_viscosity(viscosity());
        net.add_segment(NodeId(0), NodeId(1), channel(200.0, 10.0));
        net.set_pressure(NodeId(0), Pascals::new(100.0));
        net.set_pressure(NodeId(1), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        assert!(sol.pressure(NodeId(9)).is_err());
        assert!(sol.segment_flow(5).is_err());
        assert_eq!(sol.flows().len(), 1);
    }
}
