//! Design-rule checking for fluidic mask layouts.
//!
//! The rules are those of a thick-resist lamination process: minimum feature
//! width (limited by the printed-transparency mask resolution), minimum
//! spacing between features on the same layer, a maximum resist aspect ratio
//! (tall narrow walls collapse during lamination), and a layer-count limit.

use crate::fabrication::FabricationProcess;
use crate::layout::{MaskLayer, MaskLayout};
use labchip_units::Meters;
use serde::{Deserialize, Serialize};

/// The rule set a layout is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignRules {
    /// Minimum drawn feature width.
    pub min_feature: Meters,
    /// Minimum spacing between features on the same layer.
    pub min_spacing: Meters,
    /// Structural (resist) thickness the features will be built in.
    pub resist_thickness: Meters,
    /// Maximum height/width aspect ratio of a free-standing feature.
    pub max_aspect_ratio: f64,
    /// Maximum number of mask layers the process supports.
    pub max_layers: usize,
}

impl DesignRules {
    /// Derives the rule set from a fabrication process at a given resist
    /// thickness.
    pub fn for_process(process: &FabricationProcess, resist_thickness: Meters) -> Self {
        Self {
            min_feature: process.min_feature(),
            min_spacing: process.min_feature(),
            resist_thickness,
            max_aspect_ratio: process.max_aspect_ratio(),
            max_layers: process.max_layers(),
        }
    }
}

/// One rule violation found in a layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DrcViolation {
    /// A feature is narrower than the minimum width.
    FeatureTooSmall {
        /// Index of the feature in the layout.
        feature: usize,
        /// Its smallest dimension.
        dimension: Meters,
        /// The rule limit.
        limit: Meters,
    },
    /// Two same-layer features are closer than the minimum spacing without
    /// overlapping (overlap is treated as intentional merging).
    SpacingTooSmall {
        /// Index of the first feature.
        first: usize,
        /// Index of the second feature.
        second: usize,
        /// Measured separation.
        separation: Meters,
        /// The rule limit.
        limit: Meters,
    },
    /// A feature's aspect ratio (resist thickness / width) is too high.
    AspectRatioTooHigh {
        /// Index of the feature.
        feature: usize,
        /// Computed aspect ratio.
        aspect_ratio: f64,
        /// The rule limit.
        limit: f64,
    },
    /// The layout uses more mask layers than the process offers.
    TooManyLayers {
        /// Layers used by the layout.
        used: usize,
        /// Layers available.
        available: usize,
    },
}

/// Result of checking a layout.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DrcReport {
    violations: Vec<DrcViolation>,
}

impl DrcReport {
    /// All violations found.
    pub fn violations(&self) -> &[DrcViolation] {
        &self.violations
    }

    /// `true` when the layout is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// `true` when there are no violations (alias of [`DrcReport::is_clean`]
    /// for collection-like call sites).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }
}

impl DesignRules {
    /// Checks a layout against the rules.
    pub fn check(&self, layout: &MaskLayout) -> DrcReport {
        let mut violations = Vec::new();

        if layout.layer_count() > self.max_layers {
            violations.push(DrcViolation::TooManyLayers {
                used: layout.layer_count(),
                available: self.max_layers,
            });
        }

        for (i, f) in layout.features().iter().enumerate() {
            let dim = f.min_dimension();
            if dim < self.min_feature {
                violations.push(DrcViolation::FeatureTooSmall {
                    feature: i,
                    dimension: dim,
                    limit: self.min_feature,
                });
            }
            let aspect = self.resist_thickness.get() / dim.get();
            if aspect > self.max_aspect_ratio {
                violations.push(DrcViolation::AspectRatioTooHigh {
                    feature: i,
                    aspect_ratio: aspect,
                    limit: self.max_aspect_ratio,
                });
            }
        }

        for layer in [MaskLayer::Fluidic, MaskLayer::Access] {
            let on_layer: Vec<(usize, &_)> = layout
                .features()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.layer == layer)
                .collect();
            for a in 0..on_layer.len() {
                for b in a + 1..on_layer.len() {
                    let (ia, fa) = on_layer[a];
                    let (ib, fb) = on_layer[b];
                    if fa.rect.intersects(&fb.rect) {
                        continue;
                    }
                    let sep = fa.rect.separation(&fb.rect);
                    if sep < self.min_spacing.get() {
                        violations.push(DrcViolation::SpacingTooSmall {
                            first: ia,
                            second: ib,
                            separation: Meters::new(sep),
                            limit: self.min_spacing,
                        });
                    }
                }
            }
        }

        DrcReport { violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabrication::ProcessKind;
    use crate::layout::{FeatureRole, MaskFeature};
    use labchip_units::{Rect, Vec2};

    fn dry_film_rules() -> DesignRules {
        DesignRules::for_process(
            &FabricationProcess::preset(ProcessKind::DryFilmResist),
            Meters::from_micrometers(80.0),
        )
    }

    #[test]
    fn reference_layout_is_clean_for_dry_film_resist() {
        let report = dry_film_rules().check(&MaskLayout::date05_reference());
        assert!(report.is_clean(), "violations: {:?}", report.violations());
        assert!(report.is_empty());
    }

    #[test]
    fn narrow_feature_is_flagged() {
        let mut layout = MaskLayout::new();
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::ZERO, 5e-3, 20e-6),
        });
        let report = dry_film_rules().check(&layout);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, DrcViolation::FeatureTooSmall { .. })));
        // A 20 µm channel in 80 µm resist also violates the aspect limit.
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, DrcViolation::AspectRatioTooHigh { .. })));
    }

    #[test]
    fn close_features_are_flagged_but_overlaps_are_not() {
        let rules = dry_film_rules();
        let mut layout = MaskLayout::new();
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Chamber,
            rect: Rect::from_origin_size(Vec2::ZERO, 2e-3, 2e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Chamber,
            rect: Rect::from_origin_size(Vec2::new(2.02e-3, 0.0), 2e-3, 2e-3),
        });
        let report = rules.check(&layout);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, DrcViolation::SpacingTooSmall { .. })));

        // Overlapping features merge intentionally: no spacing violation.
        let mut merged = MaskLayout::new();
        merged.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Chamber,
            rect: Rect::from_origin_size(Vec2::ZERO, 2e-3, 2e-3),
        });
        merged.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::new(1.5e-3, 0.5e-3), 2e-3, 0.5e-3),
        });
        assert!(rules.check(&merged).is_clean());
    }

    #[test]
    fn features_on_different_layers_do_not_interact() {
        let rules = dry_film_rules();
        let mut layout = MaskLayout::new();
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Chamber,
            rect: Rect::from_origin_size(Vec2::ZERO, 2e-3, 2e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Access,
            role: FeatureRole::Port,
            rect: Rect::from_origin_size(Vec2::new(2.01e-3, 0.0), 1e-3, 1e-3),
        });
        assert!(rules.check(&layout).is_clean());
    }

    #[test]
    fn layer_limit_is_enforced() {
        let single_layer_rules = DesignRules {
            max_layers: 1,
            ..dry_film_rules()
        };
        let report = single_layer_rules.check(&MaskLayout::date05_reference());
        assert!(report.violations().iter().any(|v| matches!(
            v,
            DrcViolation::TooManyLayers {
                used: 2,
                available: 1
            }
        )));
    }
}
