//! Parameter uncertainty of fluidic simulation.
//!
//! The paper's central §3 observation: meaningful multi-physics simulation of
//! a biochip "demands a lot of input parameters which are uncertain or
//! completely unknown, thus making simulation pretty much a research topic in
//! itself". This module gives that statement a concrete form — a set of
//! governing parameters, each an [`Uncertain`] value — and a fidelity model
//! mapping parameter uncertainty to the probability that a simulation-based
//! design decision turns out wrong when the prototype is finally built.

use labchip_units::Uncertain;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal deviate with the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// The governing fluidic/bio parameters and their uncertainties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidicParameters {
    /// Contact angle / wettability of the resist and glass surfaces (degrees).
    pub contact_angle: Uncertain,
    /// Evaporation mass-transfer coefficient (relative).
    pub evaporation_coefficient: Uncertain,
    /// Electro-thermal flow coupling coefficient (relative).
    pub electrothermal_coupling: Uncertain,
    /// AC electro-osmotic mobility (relative).
    pub ac_electroosmosis: Uncertain,
    /// Cell membrane capacitance / dielectric spread (relative).
    pub cell_dielectric: Uncertain,
    /// Surface fouling / protein adsorption rate (relative).
    pub surface_fouling: Uncertain,
}

impl FluidicParameters {
    /// The literature state of the art circa 2005: most surface- and
    /// cell-related parameters known only to within tens of percent.
    pub fn literature_2005() -> Self {
        Self {
            contact_angle: Uncertain::new(70.0, 0.20),
            evaporation_coefficient: Uncertain::new(1.0, 0.30),
            electrothermal_coupling: Uncertain::new(1.0, 0.50),
            ac_electroosmosis: Uncertain::new(1.0, 0.60),
            cell_dielectric: Uncertain::new(1.0, 0.25),
            surface_fouling: Uncertain::new(1.0, 0.70),
        }
    }

    /// The same parameters after a characterisation campaign on prototypes
    /// (what the Fig. 2 flow produces as a side effect of testing real
    /// devices): spreads reduced several-fold.
    pub fn after_prototype_characterization() -> Self {
        Self {
            contact_angle: Uncertain::new(70.0, 0.05),
            evaporation_coefficient: Uncertain::new(1.0, 0.08),
            electrothermal_coupling: Uncertain::new(1.0, 0.15),
            ac_electroosmosis: Uncertain::new(1.0, 0.20),
            cell_dielectric: Uncertain::new(1.0, 0.10),
            surface_fouling: Uncertain::new(1.0, 0.25),
        }
    }

    /// All parameters as a slice of (name, value) pairs.
    pub fn as_list(&self) -> [(&'static str, Uncertain); 6] {
        [
            ("contact_angle", self.contact_angle),
            ("evaporation_coefficient", self.evaporation_coefficient),
            ("electrothermal_coupling", self.electrothermal_coupling),
            ("ac_electroosmosis", self.ac_electroosmosis),
            ("cell_dielectric", self.cell_dielectric),
            ("surface_fouling", self.surface_fouling),
        ]
    }

    /// Combined relative uncertainty of a performance prediction that depends
    /// multiplicatively on every parameter (root sum of squares of the
    /// relative sigmas).
    pub fn combined_relative_sigma(&self) -> f64 {
        self.as_list()
            .iter()
            .map(|(_, u)| u.relative_sigma().powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl Default for FluidicParameters {
    fn default() -> Self {
        Self::literature_2005()
    }
}

/// Maps parameter uncertainty to the reliability of simulation-driven design
/// decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationFidelity {
    /// Combined relative one-sigma error of the simulation prediction.
    pub prediction_sigma: f64,
    /// Relative design margin the designer budgets for (e.g. 0.2 = the design
    /// still works if performance is 20 % below prediction).
    pub design_margin: f64,
}

impl SimulationFidelity {
    /// Builds the fidelity model for a parameter set and design margin.
    pub fn new(parameters: &FluidicParameters, design_margin: f64) -> Self {
        Self {
            prediction_sigma: parameters.combined_relative_sigma(),
            design_margin,
        }
    }

    /// Probability that a design that simulates as "working" fails on the
    /// real prototype: the probability that the true performance falls more
    /// than `design_margin` below the prediction, under a Gaussian error of
    /// `prediction_sigma`.
    pub fn false_pass_probability(&self) -> f64 {
        if self.prediction_sigma <= 0.0 {
            return 0.0;
        }
        gaussian_tail(self.design_margin / self.prediction_sigma)
    }

    /// Samples whether one simulation-approved design actually works when
    /// prototyped.
    pub fn sample_prototype_outcome<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let error = self.prediction_sigma * standard_normal(rng);
        // The design fails if reality underperforms the prediction by more
        // than the margin.
        error > -self.design_margin
    }
}

/// Gaussian upper-tail probability (Abramowitz & Stegun erfc approximation).
fn gaussian_tail(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let val = 0.5 * poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    if x >= 0.0 {
        val
    } else {
        1.0 - val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn literature_parameters_are_poorly_known() {
        let p = FluidicParameters::literature_2005();
        // Combined uncertainty above 100 % — simulation really is a research
        // topic in itself.
        assert!(p.combined_relative_sigma() > 1.0);
        for (_, u) in p.as_list() {
            assert!(u.relative_sigma() > 0.0);
        }
    }

    #[test]
    fn prototyping_shrinks_uncertainty() {
        let before = FluidicParameters::literature_2005();
        let after = FluidicParameters::after_prototype_characterization();
        assert!(after.combined_relative_sigma() < before.combined_relative_sigma() / 2.0);
    }

    #[test]
    fn false_pass_probability_grows_with_uncertainty() {
        let uncertain = SimulationFidelity::new(&FluidicParameters::literature_2005(), 0.3);
        let confident =
            SimulationFidelity::new(&FluidicParameters::after_prototype_characterization(), 0.3);
        assert!(uncertain.false_pass_probability() > confident.false_pass_probability());
        // With 2005-level uncertainty, a sizeable fraction of simulation-
        // approved designs fail on first silicon/glass.
        assert!(uncertain.false_pass_probability() > 0.3);
        assert!(confident.false_pass_probability() < 0.25);
    }

    #[test]
    fn zero_uncertainty_never_fails() {
        let perfect = SimulationFidelity {
            prediction_sigma: 0.0,
            design_margin: 0.1,
        };
        assert_eq!(perfect.false_pass_probability(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(perfect.sample_prototype_outcome(&mut rng));
    }

    #[test]
    fn sampled_outcomes_match_probability() {
        let fidelity = SimulationFidelity::new(&FluidicParameters::literature_2005(), 0.3);
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let trials = 20_000;
        let failures = (0..trials)
            .filter(|_| !fidelity.sample_prototype_outcome(&mut rng))
            .count();
        let observed = failures as f64 / trials as f64;
        let expected = fidelity.false_pass_probability();
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn larger_margin_reduces_failures() {
        let p = FluidicParameters::literature_2005();
        let tight = SimulationFidelity::new(&p, 0.1);
        let generous = SimulationFidelity::new(&p, 1.0);
        assert!(generous.false_pass_probability() < tight.false_pass_probability());
    }
}
