//! Fabrication-process models and cost/turnaround quotes.
//!
//! The paper's §3 and its reference \[5\] (Vulto et al., dry film resist) claim
//! a **2–3 day design-to-device turnaround**, **mask costs of a few euros**
//! (printed transparencies) and a total set-up of **tens of thousands of
//! euros** — to be contrasted with clean-room glass etching or even CMOS
//! prototyping. These models quantify that comparison (experiment E6) and
//! feed the design-flow study (E5).

use crate::error::FluidicsError;
use crate::layout::MaskLayout;
use labchip_units::{Euros, Meters, Seconds};
use serde::{Deserialize, Serialize};

/// The fabrication process families compared in the paper's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessKind {
    /// Dry-film photoresist laminated and patterned on the chip/glass
    /// (the paper's ref \[5\]).
    DryFilmResist,
    /// PDMS soft lithography cast on an SU-8 master.
    PdmsSoftLithography,
    /// Wet-etched and thermally bonded glass.
    GlassEtching,
    /// Full-custom CMOS run (for reference: the electronic part's economics).
    CmosPrototype,
}

/// A fabrication process with its economic and capability figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricationProcess {
    /// Which family this is.
    pub kind: ProcessKind,
    /// Human-readable name.
    pub name: String,
    /// Cost of one mask set.
    pub mask_cost: Euros,
    /// One-off equipment/set-up cost of the whole flow.
    pub setup_cost: Euros,
    /// Incremental per-device material and labour cost.
    pub unit_cost: Euros,
    /// Design-to-device turnaround.
    pub turnaround: Seconds,
    /// Minimum printable feature.
    min_feature: Meters,
    /// Maximum structural aspect ratio (height/width).
    max_aspect_ratio: f64,
    /// Number of structural layers supported.
    max_layers: usize,
}

impl FabricationProcess {
    /// Returns the reference parameters for a process family, matching the
    /// figures quoted in the paper and its references.
    pub fn preset(kind: ProcessKind) -> Self {
        match kind {
            ProcessKind::DryFilmResist => Self {
                kind,
                name: "dry film resist lamination".into(),
                mask_cost: Euros::new(5.0),
                setup_cost: Euros::from_kilo_euros(30.0),
                unit_cost: Euros::new(8.0),
                turnaround: Seconds::from_days(2.5),
                min_feature: Meters::from_micrometers(100.0),
                max_aspect_ratio: 2.0,
                max_layers: 2,
            },
            ProcessKind::PdmsSoftLithography => Self {
                kind,
                name: "PDMS soft lithography".into(),
                mask_cost: Euros::new(150.0),
                setup_cost: Euros::from_kilo_euros(80.0),
                unit_cost: Euros::new(15.0),
                turnaround: Seconds::from_days(7.0),
                min_feature: Meters::from_micrometers(20.0),
                max_aspect_ratio: 5.0,
                max_layers: 2,
            },
            ProcessKind::GlassEtching => Self {
                kind,
                name: "wet-etched bonded glass".into(),
                mask_cost: Euros::new(800.0),
                setup_cost: Euros::from_kilo_euros(500.0),
                unit_cost: Euros::new(60.0),
                turnaround: Seconds::from_days(30.0),
                min_feature: Meters::from_micrometers(50.0),
                max_aspect_ratio: 0.5,
                max_layers: 2,
            },
            ProcessKind::CmosPrototype => Self {
                kind,
                name: "CMOS multi-project-wafer prototype".into(),
                mask_cost: Euros::from_kilo_euros(60.0),
                setup_cost: Euros::from_kilo_euros(250.0),
                unit_cost: Euros::new(50.0),
                turnaround: Seconds::from_days(90.0),
                min_feature: Meters::from_nanometers(350.0),
                max_aspect_ratio: 1.0,
                max_layers: 6,
            },
        }
    }

    /// All fluidic process presets (excluding the CMOS reference).
    pub fn fluidic_presets() -> Vec<Self> {
        vec![
            Self::preset(ProcessKind::DryFilmResist),
            Self::preset(ProcessKind::PdmsSoftLithography),
            Self::preset(ProcessKind::GlassEtching),
        ]
    }

    /// Minimum printable feature size.
    pub fn min_feature(&self) -> Meters {
        self.min_feature
    }

    /// Maximum structural aspect ratio.
    pub fn max_aspect_ratio(&self) -> f64 {
        self.max_aspect_ratio
    }

    /// Number of structural layers supported.
    pub fn max_layers(&self) -> usize {
        self.max_layers
    }

    /// Checks that a layout is manufacturable in this process (feature size
    /// and layer count only; full geometric DRC lives in [`crate::drc`]).
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::InvalidParameter`] naming the first violated
    /// capability.
    pub fn check_capability(&self, layout: &MaskLayout) -> Result<(), FluidicsError> {
        if layout.layer_count() > self.max_layers {
            return Err(FluidicsError::InvalidParameter {
                name: "layers",
                reason: format!(
                    "layout uses {} layers but {} supports {}",
                    layout.layer_count(),
                    self.name,
                    self.max_layers
                ),
            });
        }
        if let Some(min) = layout.min_feature_size() {
            if min < self.min_feature {
                return Err(FluidicsError::InvalidParameter {
                    name: "min_feature",
                    reason: format!(
                        "layout minimum feature {:.0} um below process limit {:.0} um",
                        min.as_micrometers(),
                        self.min_feature.as_micrometers()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Produces a quote for one prototype iteration of `devices` devices,
    /// assuming the set-up already exists (`include_setup = false`) or must
    /// be amortised into this quote (`true`).
    pub fn quote(&self, devices: u32, include_setup: bool) -> FabricationQuote {
        let setup = if include_setup {
            self.setup_cost
        } else {
            Euros::ZERO
        };
        FabricationQuote {
            process: self.kind,
            devices,
            mask_cost: self.mask_cost,
            setup_cost: setup,
            unit_cost_total: self.unit_cost * devices as f64,
            turnaround: self.turnaround,
        }
    }
}

/// A cost/turnaround quote for one fabrication iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricationQuote {
    /// Process used.
    pub process: ProcessKind,
    /// Number of devices built.
    pub devices: u32,
    /// Mask cost of this iteration.
    pub mask_cost: Euros,
    /// Set-up cost included in this quote (zero when amortised elsewhere).
    pub setup_cost: Euros,
    /// Total incremental device cost.
    pub unit_cost_total: Euros,
    /// Calendar time from design freeze to devices in hand.
    pub turnaround: Seconds,
}

impl FabricationQuote {
    /// Total cost of the iteration.
    pub fn total_cost(&self) -> Euros {
        self.mask_cost + self.setup_cost + self.unit_cost_total
    }

    /// Cost per device.
    pub fn cost_per_device(&self) -> Euros {
        if self.devices == 0 {
            self.total_cost()
        } else {
            self.total_cost() / self.devices as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dry_film_matches_paper_figures() {
        // C6: 2-3 days turnaround, masks of a few euros, set-up of tens of
        // thousands of euros.
        let p = FabricationProcess::preset(ProcessKind::DryFilmResist);
        assert!(p.turnaround.as_days() >= 2.0 && p.turnaround.as_days() <= 3.0);
        assert!(p.mask_cost.get() < 10.0);
        assert!(p.setup_cost.as_kilo_euros() >= 10.0 && p.setup_cost.as_kilo_euros() < 100.0);
    }

    #[test]
    fn dry_film_is_fastest_and_cheapest_per_iteration() {
        let dry = FabricationProcess::preset(ProcessKind::DryFilmResist);
        let pdms = FabricationProcess::preset(ProcessKind::PdmsSoftLithography);
        let glass = FabricationProcess::preset(ProcessKind::GlassEtching);
        assert!(dry.turnaround < pdms.turnaround);
        assert!(pdms.turnaround < glass.turnaround);
        let q_dry = dry.quote(5, false);
        let q_glass = glass.quote(5, false);
        assert!(q_dry.total_cost() < q_glass.total_cost());
    }

    #[test]
    fn fluidic_iterations_are_orders_of_magnitude_cheaper_than_cmos() {
        // The asymmetry behind Fig. 1 vs Fig. 2: a fluidic respin costs tens
        // of euros and days; a CMOS respin costs tens of thousands and months.
        let dry = FabricationProcess::preset(ProcessKind::DryFilmResist).quote(5, false);
        let cmos = FabricationProcess::preset(ProcessKind::CmosPrototype).quote(5, false);
        assert!(cmos.total_cost() / dry.total_cost() > 100.0);
        assert!(cmos.turnaround.as_days() / dry.turnaround.as_days() > 10.0);
    }

    #[test]
    fn quote_accounting_adds_up() {
        let p = FabricationProcess::preset(ProcessKind::PdmsSoftLithography);
        let q = p.quote(10, true);
        let expected = p.mask_cost + p.setup_cost + p.unit_cost * 10.0;
        assert!((q.total_cost().get() - expected.get()).abs() < 1e-9);
        assert!((q.cost_per_device().get() - expected.get() / 10.0).abs() < 1e-9);
        let zero = p.quote(0, false);
        assert_eq!(zero.cost_per_device(), zero.total_cost());
    }

    #[test]
    fn capability_check_accepts_reference_layout() {
        let layout = MaskLayout::date05_reference();
        for p in FabricationProcess::fluidic_presets() {
            assert!(
                p.check_capability(&layout).is_ok(),
                "{} rejected the reference layout",
                p.name
            );
        }
    }

    #[test]
    fn capability_check_rejects_too_fine_features() {
        use crate::layout::{FeatureRole, MaskFeature, MaskLayer};
        use labchip_units::{Rect, Vec2};
        let mut layout = MaskLayout::new();
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::ZERO, 1e-3, 30e-6),
        });
        let dry = FabricationProcess::preset(ProcessKind::DryFilmResist);
        assert!(dry.check_capability(&layout).is_err());
        // PDMS resolves 20 µm features, so it accepts the same layout.
        let pdms = FabricationProcess::preset(ProcessKind::PdmsSoftLithography);
        assert!(pdms.check_capability(&layout).is_ok());
    }
}
