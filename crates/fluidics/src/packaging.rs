//! The hybrid packaging stack of Fig. 3.
//!
//! The assembled device is a sandwich: the CMOS die at the bottom, a
//! patterned dry-resist spacer defining the chamber walls, and an ITO-coated
//! glass lid that doubles as the counter-electrode. Packaging also provides
//! the electrical connection (wire bonds outside the wet area) and the
//! fluidic ports.

use crate::error::FluidicsError;
use crate::fabrication::FabricationProcess;
use labchip_units::{Euros, Meters, Seconds};
use serde::{Deserialize, Serialize};

/// One layer of the packaging stack, bottom to top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackLayer {
    /// The CMOS sensor/actuator die.
    CmosDie,
    /// Patterned dry-film resist spacer forming the chamber walls.
    ResistSpacer,
    /// ITO-coated glass lid (transparent counter-electrode).
    ItoGlassLid,
    /// Printed-circuit carrier with wire bonds and fluidic ports.
    Carrier,
}

/// A packaging stack description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackagingStack {
    layers: Vec<StackLayer>,
    /// Resist spacer thickness — this *is* the chamber height.
    pub spacer_thickness: Meters,
    /// Lid thickness.
    pub lid_thickness: Meters,
    /// Whether the lid is conductive (ITO) and can act as counter-electrode.
    pub conductive_lid: bool,
}

impl PackagingStack {
    /// The Fig. 3 reference stack: carrier, CMOS die, 80 µm resist spacer,
    /// 500 µm ITO glass lid.
    pub fn date05_reference() -> Self {
        Self {
            layers: vec![
                StackLayer::Carrier,
                StackLayer::CmosDie,
                StackLayer::ResistSpacer,
                StackLayer::ItoGlassLid,
            ],
            spacer_thickness: Meters::from_micrometers(80.0),
            lid_thickness: Meters::from_micrometers(500.0),
            conductive_lid: true,
        }
    }

    /// The layers, bottom to top.
    pub fn layers(&self) -> &[StackLayer] {
        &self.layers
    }

    /// Chamber height implied by the stack (the spacer thickness).
    pub fn chamber_height(&self) -> Meters {
        self.spacer_thickness
    }

    /// Validates that the stack can actually work as a DEP biochip package:
    /// it must contain a die, a spacer and a lid (in that vertical order),
    /// and the lid must be conductive to serve as the counter-electrode.
    ///
    /// # Errors
    ///
    /// Returns [`FluidicsError::InvalidParameter`] describing the first
    /// problem found.
    pub fn validate(&self) -> Result<(), FluidicsError> {
        let position = |layer: StackLayer| self.layers.iter().position(|l| *l == layer);
        let die = position(StackLayer::CmosDie).ok_or(FluidicsError::InvalidParameter {
            name: "layers",
            reason: "stack is missing the CMOS die".into(),
        })?;
        let spacer = position(StackLayer::ResistSpacer).ok_or(FluidicsError::InvalidParameter {
            name: "layers",
            reason: "stack is missing the resist spacer".into(),
        })?;
        let lid = position(StackLayer::ItoGlassLid).ok_or(FluidicsError::InvalidParameter {
            name: "layers",
            reason: "stack is missing the glass lid".into(),
        })?;
        if !(die < spacer && spacer < lid) {
            return Err(FluidicsError::InvalidParameter {
                name: "layers",
                reason: "layers must be ordered die < spacer < lid".into(),
            });
        }
        if !self.conductive_lid {
            return Err(FluidicsError::InvalidParameter {
                name: "conductive_lid",
                reason: "the lid must be ITO-coated to act as the counter-electrode".into(),
            });
        }
        if self.spacer_thickness.get() <= 0.0 {
            return Err(FluidicsError::InvalidParameter {
                name: "spacer_thickness",
                reason: "spacer thickness must be positive".into(),
            });
        }
        Ok(())
    }

    /// Assembly turnaround for one packaged device using the given spacer
    /// process (lamination/bonding dominates; dicing and wire bonding add a
    /// fixed day).
    pub fn assembly_turnaround(&self, spacer_process: &FabricationProcess) -> Seconds {
        spacer_process.turnaround + Seconds::from_days(1.0)
    }

    /// Incremental cost of one packaged device (spacer unit cost + lid +
    /// carrier + bonding labour).
    pub fn assembly_cost(&self, spacer_process: &FabricationProcess) -> Euros {
        let lid = Euros::new(3.0);
        let carrier = Euros::new(6.0);
        let bonding = Euros::new(10.0);
        spacer_process.unit_cost + lid + carrier + bonding
    }
}

impl Default for PackagingStack {
    fn default() -> Self {
        Self::date05_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabrication::ProcessKind;

    #[test]
    fn reference_stack_validates() {
        let stack = PackagingStack::date05_reference();
        assert!(stack.validate().is_ok());
        assert_eq!(stack.layers().len(), 4);
        assert_eq!(stack.chamber_height(), Meters::from_micrometers(80.0));
    }

    #[test]
    fn missing_or_misordered_layers_are_rejected() {
        let mut no_lid = PackagingStack::date05_reference();
        no_lid.layers.retain(|l| *l != StackLayer::ItoGlassLid);
        assert!(no_lid.validate().is_err());

        let mut wrong_order = PackagingStack::date05_reference();
        wrong_order.layers = vec![
            StackLayer::Carrier,
            StackLayer::ResistSpacer,
            StackLayer::CmosDie,
            StackLayer::ItoGlassLid,
        ];
        assert!(wrong_order.validate().is_err());
    }

    #[test]
    fn non_conductive_lid_is_rejected() {
        let mut stack = PackagingStack::date05_reference();
        stack.conductive_lid = false;
        assert!(stack.validate().is_err());
    }

    #[test]
    fn zero_spacer_is_rejected() {
        let mut stack = PackagingStack::date05_reference();
        stack.spacer_thickness = Meters::new(0.0);
        assert!(stack.validate().is_err());
    }

    #[test]
    fn assembly_with_dry_film_takes_days_not_weeks() {
        // F3 + C6: a complete packaged prototype in a few days.
        let stack = PackagingStack::date05_reference();
        let dry = FabricationProcess::preset(ProcessKind::DryFilmResist);
        let t = stack.assembly_turnaround(&dry);
        assert!(t.as_days() < 5.0, "turnaround = {} days", t.as_days());
        let cost = stack.assembly_cost(&dry);
        assert!(cost.get() < 50.0, "cost = {cost}");
    }

    #[test]
    fn glass_based_assembly_is_much_slower() {
        let stack = PackagingStack::date05_reference();
        let dry = FabricationProcess::preset(ProcessKind::DryFilmResist);
        let glass = FabricationProcess::preset(ProcessKind::GlassEtching);
        assert!(stack.assembly_turnaround(&glass) > stack.assembly_turnaround(&dry) * 5.0);
    }
}
