//! Mask layout for fluidic structures.
//!
//! The paper's §3 notes that "fluidic design typically requires a simple mask
//! layout (one or two layers)" with feature sizes around a hundred
//! micrometres. A layout here is a small set of rectangular features on one
//! or two layers; it feeds the design-rule checker and the fabrication cost
//! model.

use labchip_units::{Meters, Rect, Vec2};
use serde::{Deserialize, Serialize};

/// The mask layer a feature is drawn on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MaskLayer {
    /// First (and often only) structural layer — the channel/chamber resist.
    Fluidic,
    /// Optional second layer — vias, lid openings or a second resist level.
    Access,
}

/// Function of a drawn feature, used for reporting and DRC context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureRole {
    /// A flow channel.
    Channel,
    /// A chamber or reservoir.
    Chamber,
    /// An inlet/outlet port.
    Port,
    /// An alignment or dicing aid.
    Alignment,
}

/// One rectangular feature of the layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskFeature {
    /// Layer the feature is drawn on.
    pub layer: MaskLayer,
    /// Function of the feature.
    pub role: FeatureRole,
    /// Geometry in chip coordinates (metres).
    pub rect: Rect,
}

impl MaskFeature {
    /// Smaller of the two lateral dimensions.
    pub fn min_dimension(&self) -> Meters {
        Meters::new(self.rect.width().min(self.rect.height()))
    }
}

/// A complete fluidic mask layout.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MaskLayout {
    features: Vec<MaskFeature>,
}

impl MaskLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// A reference layout for the DATE'05 packaging: a 7×7 mm chamber over
    /// the array, two 500 µm-wide feed channels and two 1.5 mm inlet/outlet
    /// ports on the access layer.
    pub fn date05_reference() -> Self {
        let mut layout = Self::new();
        let chamber_origin = Vec2::new(1.5e-3, 1.5e-3);
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Chamber,
            rect: Rect::from_origin_size(chamber_origin, 7.0e-3, 7.0e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::new(0.0, 4.75e-3), 1.5e-3, 0.5e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::new(8.5e-3, 4.75e-3), 1.5e-3, 0.5e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Access,
            role: FeatureRole::Port,
            rect: Rect::from_origin_size(Vec2::new(-1.5e-3, 4.0e-3), 1.5e-3, 1.5e-3),
        });
        layout.add(MaskFeature {
            layer: MaskLayer::Access,
            role: FeatureRole::Port,
            rect: Rect::from_origin_size(Vec2::new(10.0e-3, 4.0e-3), 1.5e-3, 1.5e-3),
        });
        layout
    }

    /// Adds a feature.
    pub fn add(&mut self, feature: MaskFeature) {
        self.features.push(feature);
    }

    /// All features.
    pub fn features(&self) -> &[MaskFeature] {
        &self.features
    }

    /// Features on one layer.
    pub fn features_on(&self, layer: MaskLayer) -> impl Iterator<Item = &MaskFeature> {
        self.features.iter().filter(move |f| f.layer == layer)
    }

    /// Number of distinct layers used.
    pub fn layer_count(&self) -> usize {
        let mut layers: Vec<MaskLayer> = self.features.iter().map(|f| f.layer).collect();
        layers.sort();
        layers.dedup();
        layers.len()
    }

    /// Smallest drawn feature dimension, or `None` for an empty layout.
    pub fn min_feature_size(&self) -> Option<Meters> {
        self.features
            .iter()
            .map(|f| f.min_dimension())
            .min_by(|a, b| a.partial_cmp(b).expect("dimensions are finite"))
    }

    /// Bounding box of the whole layout, or `None` for an empty layout.
    pub fn bounding_box(&self) -> Option<Rect> {
        let first = self.features.first()?.rect;
        Some(self.features.iter().skip(1).fold(first, |acc, f| {
            Rect::new(
                Vec2::new(acc.min.x.min(f.rect.min.x), acc.min.y.min(f.rect.min.y)),
                Vec2::new(acc.max.x.max(f.rect.max.x), acc.max.y.max(f.rect.max.y)),
            )
        }))
    }

    /// Total drawn area (sum of feature areas, overlaps counted twice) in m².
    pub fn drawn_area(&self) -> f64 {
        self.features.iter().map(|f| f.rect.area()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_layout_uses_two_layers_and_coarse_features() {
        // C5: "a simple mask layout (one or two layers)" with ~100 µm+
        // features.
        let layout = MaskLayout::date05_reference();
        assert!(layout.layer_count() <= 2);
        let min = layout.min_feature_size().unwrap();
        assert!(
            min.as_micrometers() >= 100.0,
            "min feature = {} um",
            min.as_micrometers()
        );
        assert_eq!(layout.features_on(MaskLayer::Access).count(), 2);
        assert_eq!(layout.features().len(), 5);
    }

    #[test]
    fn empty_layout_has_no_metrics() {
        let layout = MaskLayout::new();
        assert!(layout.min_feature_size().is_none());
        assert!(layout.bounding_box().is_none());
        assert_eq!(layout.layer_count(), 0);
        assert_eq!(layout.drawn_area(), 0.0);
    }

    #[test]
    fn bounding_box_covers_all_features() {
        let layout = MaskLayout::date05_reference();
        let bbox = layout.bounding_box().unwrap();
        for f in layout.features() {
            assert!(bbox.contains(f.rect.min));
            assert!(bbox.contains(f.rect.max));
        }
        // About a centimetre across — the scale of a packaged hybrid chip.
        assert!(bbox.width() > 5e-3 && bbox.width() < 20e-3);
    }

    #[test]
    fn drawn_area_is_dominated_by_the_chamber() {
        let layout = MaskLayout::date05_reference();
        let chamber_area = 7.0e-3 * 7.0e-3;
        assert!(layout.drawn_area() >= chamber_area);
        assert!(layout.drawn_area() < 2.0 * chamber_area);
    }

    #[test]
    fn min_dimension_of_feature() {
        let f = MaskFeature {
            layer: MaskLayer::Fluidic,
            role: FeatureRole::Channel,
            rect: Rect::from_origin_size(Vec2::ZERO, 2e-3, 0.3e-3),
        };
        assert!((f.min_dimension().as_micrometers() - 300.0).abs() < 1e-9);
    }
}
