//! Property-based tests for the fluidics crate.

use labchip_fluidics::chamber::Microchamber;
use labchip_fluidics::channel::{ChannelNetwork, NodeId};
use labchip_fluidics::fabrication::FabricationProcess;
use labchip_fluidics::flow::RectangularChannel;
use labchip_fluidics::uncertainty::{FluidicParameters, SimulationFidelity};
use labchip_units::{Meters, PascalSeconds, Pascals, Uncertain, WATER_VISCOSITY};
use proptest::prelude::*;

fn channel(width_um: f64, height_um: f64, length_mm: f64) -> RectangularChannel {
    RectangularChannel::new(
        Meters::from_micrometers(width_um),
        Meters::from_micrometers(height_um),
        Meters::from_millimeters(length_mm),
    )
    .expect("positive dimensions")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hydraulic resistance is positive, increases with length and decreases
    /// with height.
    #[test]
    fn resistance_monotonicity(
        width in 60.0f64..500.0,
        height in 20.0f64..100.0,
        length in 1.0f64..30.0,
    ) {
        let visc = PascalSeconds::new(WATER_VISCOSITY);
        let base = channel(width, height, length).hydraulic_resistance(visc);
        prop_assert!(base > 0.0 && base.is_finite());
        let longer = channel(width, height, length * 2.0).hydraulic_resistance(visc);
        prop_assert!((longer / base - 2.0).abs() < 1e-9);
        let taller = channel(width, height * 1.5, length).hydraulic_resistance(visc);
        prop_assert!(taller < base);
    }

    /// A two-segment series network conserves mass and drops the full
    /// pressure across the two segments in proportion to their resistance.
    #[test]
    fn series_network_conserves_mass(
        w1 in 80.0f64..400.0,
        w2 in 80.0f64..400.0,
        pressure in 100.0f64..10_000.0,
    ) {
        let visc = PascalSeconds::new(WATER_VISCOSITY);
        let mut net = ChannelNetwork::new();
        net.set_viscosity(visc);
        let a = channel(w1, 50.0, 5.0);
        let b = channel(w2, 50.0, 5.0);
        net.add_segment(NodeId(0), NodeId(1), a);
        net.add_segment(NodeId(1), NodeId(2), b);
        net.set_pressure(NodeId(0), Pascals::new(pressure));
        net.set_pressure(NodeId(2), Pascals::new(0.0));
        let sol = net.solve().unwrap();
        let q0 = sol.segment_flow(0).unwrap();
        let q1 = sol.segment_flow(1).unwrap();
        prop_assert!((q0 - q1).abs() <= 1e-9 * q0.abs().max(1e-30));
        prop_assert!(sol.node_imbalance(NodeId(1), &net).abs() <= 1e-9 * q0.abs().max(1e-30));
        // Midpoint pressure lies strictly between the boundaries.
        let mid = sol.pressure(NodeId(1)).unwrap().get();
        prop_assert!(mid > 0.0 && mid < pressure);
    }

    /// Chamber volume scales linearly with each dimension and the expected
    /// cell count with concentration.
    #[test]
    fn chamber_volume_scaling(l_mm in 1.0f64..20.0, w_mm in 1.0f64..20.0, h_um in 20.0f64..500.0, conc in 1.0f64..1e5) {
        let chamber = Microchamber::new(
            Meters::from_millimeters(l_mm),
            Meters::from_millimeters(w_mm),
            Meters::from_micrometers(h_um),
        ).unwrap();
        let doubled = Microchamber::new(
            Meters::from_millimeters(2.0 * l_mm),
            Meters::from_millimeters(w_mm),
            Meters::from_micrometers(h_um),
        ).unwrap();
        prop_assert!((doubled.volume().get() / chamber.volume().get() - 2.0).abs() < 1e-9);
        let cells = chamber.expected_cell_count(conc);
        prop_assert!((cells / conc - chamber.volume().as_microliters()).abs() < 1e-9 * cells.max(1.0));
    }

    /// Per-device cost never increases with batch size, for every process.
    #[test]
    fn per_device_cost_monotone(batch in 1u32..500) {
        for process in FabricationProcess::fluidic_presets() {
            let small = process.quote(batch, false).cost_per_device();
            let large = process.quote(batch + 10, false).cost_per_device();
            prop_assert!(large <= small + labchip_units::Euros::new(1e-9));
        }
    }

    /// The false-pass probability is a probability, grows with uncertainty
    /// and shrinks with margin.
    #[test]
    fn fidelity_probability_behaviour(scale in 0.1f64..3.0, margin in 0.05f64..1.0) {
        let base = FluidicParameters::literature_2005();
        let scaled = FluidicParameters {
            contact_angle: Uncertain::new(base.contact_angle.nominal(), base.contact_angle.relative_sigma() * scale),
            evaporation_coefficient: Uncertain::new(1.0, base.evaporation_coefficient.relative_sigma() * scale),
            electrothermal_coupling: Uncertain::new(1.0, base.electrothermal_coupling.relative_sigma() * scale),
            ac_electroosmosis: Uncertain::new(1.0, base.ac_electroosmosis.relative_sigma() * scale),
            cell_dielectric: Uncertain::new(1.0, base.cell_dielectric.relative_sigma() * scale),
            surface_fouling: Uncertain::new(1.0, base.surface_fouling.relative_sigma() * scale),
        };
        let f = SimulationFidelity::new(&scaled, margin);
        let p = f.false_pass_probability();
        prop_assert!((0.0..=1.0).contains(&p));
        let wider_margin = SimulationFidelity::new(&scaled, margin * 2.0);
        prop_assert!(wider_margin.false_pass_probability() <= p + 1e-12);
    }
}
