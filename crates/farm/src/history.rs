//! On-disk persistence of farm job history: one `job-<id>.record.json`
//! ([`JobRecord`]) plus one `job-<id>.journal.json` (the committed
//! [`Journal`]) per job, in a flat directory.
//!
//! The record is self-contained — protocol, effective config, seed — so a
//! saved job can be re-run offline and its journal diffed against the
//! fresh run (`report journal-diff --farm DIR JOB`), the same
//! divergence-localisation workflow E14 established for single runs.

use std::io;
use std::path::{Path, PathBuf};

use labchip_manipulation::journal::Journal;

use crate::job::{JobId, JobRecord};

/// Reads and writes `job-<id>.{record,journal}.json` pairs under one
/// directory.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    dir: PathBuf,
}

impl HistoryStore {
    /// A store rooted at `dir` (created on the first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.record.json"))
    }

    fn journal_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.journal.json"))
    }

    /// Persists one job's record and committed journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, full disk).
    pub fn save(&self, record: &JobRecord, journal: &Journal) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(
            self.record_path(record.id),
            serde_json::to_string_pretty(record),
        )?;
        std::fs::write(
            self.journal_path(record.id),
            serde_json::to_string_pretty(journal),
        )?;
        Ok(())
    }

    /// Loads one job's record.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file, or [`io::ErrorKind::InvalidData`] on
    /// malformed JSON.
    pub fn load_record(&self, id: JobId) -> io::Result<JobRecord> {
        let text = std::fs::read_to_string(self.record_path(id))?;
        serde_json::from_str(&text)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }

    /// Loads one job's committed journal.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file, or [`io::ErrorKind::InvalidData`] on
    /// malformed JSON.
    pub fn load_journal(&self, id: JobId) -> io::Result<Journal> {
        let text = std::fs::read_to_string(self.journal_path(id))?;
        serde_json::from_str(&text)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }

    /// Job ids with a saved record in the store, ascending.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors (a missing directory yields an
    /// empty list).
    pub fn list(&self) -> io::Result<Vec<JobId>> {
        let mut ids = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(ids),
            Err(error) => return Err(error),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".record.json") {
                if let Some(id) = JobId::parse(stem) {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use labchip::workload::{Protocol, WorkloadConfig};
    use labchip_manipulation::journal::Event;

    fn record(id: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            tenant: "t".into(),
            protocol: Protocol::new("p"),
            config: WorkloadConfig::default(),
            status: JobStatus::Done,
            phases_completed: 5,
            resumes: 1,
            journal_events: 2,
            queue_ms: 0.5,
            run_ms: 1.5,
            state_hash: Some("0x0000000000000001".into()),
            detail: "completed".into(),
        }
    }

    #[test]
    fn save_load_list_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "labchip-farm-history-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = HistoryStore::new(&dir);
        assert!(store.list().unwrap().is_empty());

        let mut journal = Journal::new();
        journal.record(Event::PhaseStarted {
            index: 0,
            name: "load".into(),
        });
        store.save(&record(3), &journal).unwrap();
        store.save(&record(1), &Journal::new()).unwrap();

        assert_eq!(store.list().unwrap(), vec![JobId(1), JobId(3)]);
        let loaded = store.load_record(JobId(3)).unwrap();
        assert_eq!(loaded, record(3));
        assert_eq!(store.load_journal(JobId(3)).unwrap(), journal);
        assert!(store.load_record(JobId(9)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
