//! Job-facing types of the farm service: identifiers, submission specs,
//! the status state machine and the durable [`JobRecord`].
//!
//! The job lifecycle is a small state machine:
//!
//! ```text
//!            submit                cancel (queued)
//!   Queued ─────────▶ Running ┐      └──▶ Cancelled
//!     ▲                  │    │ cancel (mid-run, next phase boundary)
//!     │ injected kill:   │    └──────▶ Cancelled
//!     │ requeue w/       ├──▶ Done
//!     │ checkpoint       └──▶ Failed (invariant violation)
//!     └──────────────────┘
//! ```
//!
//! Every terminal state leaves a [`JobRecord`] in the farm history — the
//! JSON-serialisable answer of the `history`/`status` endpoints, carrying
//! the protocol and the effective workload config so a recorded job can be
//! re-run (and its journal diffed) offline.

use labchip::workload::{Protocol, WorkloadConfig};
use labchip_manipulation::journal::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::queue::QueueFull;

/// Farm-wide unique job identifier, assigned at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// Parses both the bare number (`"7"`) and the display form
    /// (`"job-7"`).
    pub fn parse(text: &str) -> Option<JobId> {
        let digits = text.strip_prefix("job-").unwrap_or(text);
        digits.trim().parse().ok().map(JobId)
    }
}

/// Per-job submission knobs riding along with the [`Protocol`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The tenant the job is accounted (and scheduled) under.
    pub tenant: String,
    /// Batch-placement / sensor seed override; `None` inherits the farm's
    /// base workload seed. Two jobs with the same protocol, config and
    /// seed produce bit-identical final chip states regardless of which
    /// worker runs them, in what order, or how often they were resumed.
    pub seed: Option<u64>,
    /// Sensor-noise override for this job; `None` inherits the farm's.
    pub noise_scale: Option<f64>,
    /// Chaos knob: an injected kill point (in journaled events) armed for
    /// the job's *first* execution. The worker dies cooperatively at the
    /// fault, the job re-queues with its checkpoint, and the next
    /// execution resumes — the crash-recovery path, exercised on demand.
    pub fault: Option<FaultPlan>,
}

impl JobSpec {
    /// A spec for `tenant` with every knob inherited from the farm.
    pub fn tenant(tenant: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            seed: None,
            noise_scale: None,
            fault: None,
        }
    }

    /// Sets the per-job seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Arms an injected kill point for the first execution (builder
    /// style).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

impl Default for JobSpec {
    fn default() -> Self {
        Self::tenant("default")
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Waiting in the tenant queue (possibly holding a checkpoint from an
    /// interrupted execution, counted in [`JobRecord::resumes`]).
    Queued,
    /// Executing on a worker.
    Running {
        /// The protocol phase currently executing.
        phase: String,
    },
    /// Completed every phase.
    Done,
    /// A phase aborted on an internal invariant violation.
    Failed {
        /// The abort reason.
        error: String,
    },
    /// Cancelled — before starting, or cooperatively at a phase boundary.
    Cancelled,
}

impl JobStatus {
    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed { .. } | JobStatus::Cancelled
        )
    }

    /// Short status label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running { .. } => "running",
            JobStatus::Done => "done",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// `submit` refused the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — explicit backpressure; retry
    /// after the fleet drains.
    Rejected(QueueFull),
    /// The farm is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected(full) => write!(f, "submission rejected: {full}"),
            SubmitError::ShuttingDown => write!(f, "farm is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The durable record of one job — the JSON the `status`/`history`
/// endpoints serve, self-contained enough (protocol + effective config +
/// seed) to re-run the job offline and diff its journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The farm-assigned identifier.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// The submitted protocol.
    pub protocol: Protocol,
    /// The effective workload configuration the job ran under (farm base
    /// config with the spec's seed/noise overrides applied).
    pub config: WorkloadConfig,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Protocol phases completed so far.
    pub phases_completed: usize,
    /// Times the job was resumed from a checkpoint after an injected
    /// kill.
    pub resumes: usize,
    /// Journaled chip-state events committed so far (the replayable
    /// prefix).
    pub journal_events: usize,
    /// Wall-clock spent queued, milliseconds.
    pub queue_ms: f64,
    /// Wall-clock spent executing on a worker, milliseconds.
    pub run_ms: f64,
    /// FNV hash of the final chip state, as `0x`-hex — the equivalence
    /// oracle against an uninterrupted run. `None` until terminal.
    pub state_hash: Option<String>,
    /// One-line outcome summary.
    pub detail: String,
}

impl JobRecord {
    /// Submit-to-terminal latency, milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.queue_ms + self.run_ms
    }
}

/// Predicate of the `history` endpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryFilter {
    /// Only this tenant's jobs (`None` = all tenants).
    pub tenant: Option<String>,
    /// Only jobs in a terminal state.
    pub terminal_only: bool,
}

impl HistoryFilter {
    /// Every job, any state.
    pub fn all() -> Self {
        Self::default()
    }

    /// Terminal jobs of every tenant.
    pub fn terminal() -> Self {
        Self {
            tenant: None,
            terminal_only: true,
        }
    }

    /// Whether `record` passes the filter.
    pub fn matches(&self, record: &JobRecord) -> bool {
        if let Some(tenant) = &self.tenant {
            if &record.tenant != tenant {
                return false;
            }
        }
        !self.terminal_only || record.status.is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_parses_both_spellings() {
        assert_eq!(JobId::parse("7"), Some(JobId(7)));
        assert_eq!(JobId::parse("job-7"), Some(JobId(7)));
        assert_eq!(JobId::parse(" 12 "), Some(JobId(12)));
        assert_eq!(JobId::parse("job-x"), None);
        assert_eq!(JobId(3).to_string(), "job-3");
    }

    #[test]
    fn status_round_trips_and_classifies() {
        for status in [
            JobStatus::Queued,
            JobStatus::Running {
                phase: "route".into(),
            },
            JobStatus::Done,
            JobStatus::Failed {
                error: "boom".into(),
            },
            JobStatus::Cancelled,
        ] {
            let text = serde_json::to_string(&status);
            let back: JobStatus = serde_json::from_str(&text).expect("status round trips");
            assert_eq!(back, status);
        }
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running { phase: "x".into() }.is_terminal());
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::Failed { error: "e".into() }.is_terminal());
    }

    #[test]
    fn history_filter_selects_by_tenant_and_state() {
        let record = |tenant: &str, status: JobStatus| JobRecord {
            id: JobId(1),
            tenant: tenant.into(),
            protocol: Protocol::new("p"),
            config: WorkloadConfig::default(),
            status,
            phases_completed: 0,
            resumes: 0,
            journal_events: 0,
            queue_ms: 0.0,
            run_ms: 0.0,
            state_hash: None,
            detail: String::new(),
        };
        assert!(HistoryFilter::all().matches(&record("a", JobStatus::Queued)));
        assert!(!HistoryFilter::terminal().matches(&record("a", JobStatus::Queued)));
        assert!(HistoryFilter::terminal().matches(&record("a", JobStatus::Done)));
        let only_b = HistoryFilter {
            tenant: Some("b".into()),
            terminal_only: false,
        };
        assert!(!only_b.matches(&record("a", JobStatus::Done)));
        assert!(only_b.matches(&record("b", JobStatus::Queued)));
    }
}
