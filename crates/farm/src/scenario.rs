//! E15 — chip-farm fleet benchmark: multi-tenant throughput, job-control
//! latency and kill-recovery of the [`Farm`].
//!
//! The scenario drives a heterogeneous protocol mix (the canned sort
//! cycle, the E13 two-population merge, and a sense-heavy QC protocol)
//! across several tenants, then sweeps the worker-fleet size:
//!
//! 1. compute each job's *uninterrupted baseline* (final state hash +
//!    journal event count) with a plain journaled run;
//! 2. for every worker count in the sweep: build a paused farm, submit
//!    every tenant's jobs, cancel a deterministic subset before start,
//!    arm injected mid-run kills on another subset, then start the fleet
//!    and drain it — measuring wall clock, jobs/sec and latency
//!    percentiles from the job records;
//! 3. oracle: every completed job (killed-and-resumed or not) must land
//!    exactly on its baseline state hash with the baseline journal length
//!    — any miss counts as a divergence and **must be zero** (CI asserts
//!    it);
//! 4. a deliberately tiny queue measures explicit [`QueueFull`]
//!    backpressure.
//!
//! Jobs/sec scaling with workers is bounded by the protocol mix's
//! planning cost; the point of the sweep is the measured curve, not a
//! scaling claim.
//!
//! [`QueueFull`]: crate::queue::QueueFull

use labchip::experiments::{e13_protocols, ExperimentTable};
use labchip::scenario::{Scenario, ScenarioContext, ScenarioRegistry};
use labchip::workload::{
    BatchDriver, PhaseSpec, Protocol, RecoveryPolicy, RouteTarget, WorkloadConfig,
};
use labchip_manipulation::journal::FaultPlan;
use labchip_units::{GridDims, Seconds};
use serde::{Deserialize, Serialize};

use crate::farm::{Farm, FarmConfig};
use crate::job::{HistoryFilter, JobId, JobSpec, JobStatus, SubmitError};

/// The complete scenario registry, E1 through E16.
///
/// Core's [`ScenarioRegistry::all`] stops at E14 because the farm crate
/// sits *above* `labchip` in the dependency order — E15 exercises the
/// farm service and E16 the sharded fleet, so they register here.
/// Binaries and tests that want every scenario (the `report` CLI, the
/// smoke suites) call this instead of `ScenarioRegistry::all()`.
pub fn full_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::all();
    registry.register(FarmScenario);
    registry.register(crate::fleet_scenario::FleetScenario);
    registry
}

/// Configuration of the fleet benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded per protocol.
    pub particles: usize,
    /// Tenants submitting jobs (`tenant-0` …).
    pub tenants: usize,
    /// Jobs each tenant submits per fleet run.
    pub jobs_per_tenant: usize,
    /// Worker-fleet sizes swept.
    pub worker_counts: Vec<usize>,
    /// Queue bound of the benchmark farms.
    pub queue_depth: usize,
    /// Jobs (per fleet run) armed with a mid-run kill point, to measure
    /// checkpoint-resume recovery under fleet scheduling.
    pub kill_jobs: usize,
    /// Jobs (per fleet run) cancelled before the fleet starts.
    pub cancel_jobs: usize,
    /// Minimum cage separation.
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term.
    pub noise_scale: f64,
    /// Closed-loop recovery policy.
    pub recovery: RecoveryPolicy,
    /// Fluidic handling time per batch load.
    pub load_time: Seconds,
    /// Fluidic handling time per batch flush.
    pub flush_time: Seconds,
    /// Rayon planner threads per worker (0 = ambient pool).
    pub planner_threads: usize,
    /// Base RNG seed; job `k` runs under `seed + k`.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 32,
            particles: 24,
            tenants: 3,
            jobs_per_tenant: 3,
            worker_counts: vec![1, 2, 4, 8],
            queue_depth: 64,
            kill_jobs: 2,
            cancel_jobs: 1,
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 2,
            noise_scale: 8.0,
            recovery: RecoveryPolicy::date05_reference(),
            load_time: Seconds::from_minutes(1.0),
            flush_time: Seconds::from_minutes(0.5),
            planner_threads: 1,
            seed: 1505,
        }
    }
}

/// The heterogeneous protocol mix the tenants submit, cycled by job
/// index: the canned sort cycle, the E13 two-population merge, and a
/// sense-heavy QC protocol (double scan around a hold).
pub fn protocol_mix(dims: GridDims, min_separation: u32, particles: usize) -> Vec<Protocol> {
    let qc = Protocol::new("sense-heavy-qc")
        .with_phase(PhaseSpec::Load {
            particles,
            capacity_clamp: None,
        })
        .with_phase(PhaseSpec::Sense { frames: None })
        .with_phase(PhaseSpec::Route {
            target: RouteTarget::Hold,
        })
        .with_phase(PhaseSpec::Sense { frames: Some(4) })
        .with_phase(PhaseSpec::Flush);
    vec![
        Protocol::canned_cycle(dims, min_separation, particles),
        e13_protocols::default_protocol(particles),
        qc,
    ]
}

/// One fleet-size sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRow {
    /// Worker threads in the fleet.
    pub workers: usize,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that ran to `Done`.
    pub completed: usize,
    /// Jobs cancelled before start.
    pub cancelled: usize,
    /// Jobs armed with a mid-run kill.
    pub killed: usize,
    /// Killed jobs that resumed from their checkpoint to the baseline
    /// state hash.
    pub recovered: usize,
    /// Wall clock from fleet start to drain, milliseconds.
    pub wall_ms: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Median submit-to-done latency over completed jobs, milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile latency over completed jobs, milliseconds.
    pub latency_p99_ms: f64,
    /// Completed jobs whose final hash or journal length missed their
    /// uninterrupted baseline — must be zero.
    pub divergences: usize,
}

/// Result of the farm fleet benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Distinct job definitions (tenant × per-tenant index) per fleet run.
    pub jobs_per_fleet: usize,
    /// Protocols in the mix.
    pub protocols: Vec<String>,
    /// One row per swept worker count.
    pub fleet: Vec<FleetRow>,
    /// Submissions the deliberately tiny queue rejected with `QueueFull`.
    pub queue_full_rejections: usize,
    /// Divergences summed over the sweep — must be zero.
    pub total_divergences: usize,
}

impl Results {
    /// Fraction of killed jobs (across the sweep) that recovered to the
    /// baseline hash.
    pub fn recovery_rate(&self) -> f64 {
        let killed: usize = self.fleet.iter().map(|row| row.killed).sum();
        if killed == 0 {
            return 1.0;
        }
        let recovered: usize = self.fleet.iter().map(|row| row.recovered).sum();
        recovered as f64 / killed as f64
    }

    /// Renders the sweep as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .fleet
            .iter()
            .map(|row| {
                vec![
                    row.workers.to_string(),
                    format!("{:.1}", row.jobs_per_sec),
                    format!("{:.1}", row.latency_p50_ms),
                    format!("{:.1}", row.latency_p99_ms),
                    row.divergences.to_string(),
                    format!(
                        "{}/{} done, {} cancelled, {}/{} kills recovered in {:.0} ms",
                        row.completed,
                        row.submitted,
                        row.cancelled,
                        row.recovered,
                        row.killed,
                        row.wall_ms
                    ),
                ]
            })
            .collect();
        rows.push(vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            self.total_divergences.to_string(),
            format!(
                "{} jobs/fleet over {{{}}}, recovery rate {:.2}, {} queue-full rejections",
                self.jobs_per_fleet,
                self.protocols.join(", "),
                self.recovery_rate(),
                self.queue_full_rejections
            ),
        ]);
        ExperimentTable::new(
            "E15",
            "Chip farm: multi-tenant fleet throughput, cancellation and kill recovery",
            vec![
                "workers".into(),
                "jobs/s".into(),
                "p50 ms".into(),
                "p99 ms".into(),
                "divergences".into(),
                "detail".into(),
            ],
            rows,
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

/// One job definition, fixed across the whole worker-count sweep so the
/// fleet rows compare identical workloads.
struct JobDef {
    tenant: String,
    protocol: Protocol,
    seed: u64,
    /// Uninterrupted-baseline final state hash.
    baseline_hash: String,
    /// Uninterrupted-baseline journal length.
    baseline_events: usize,
    /// Mid-run kill point armed for this job (at half its baseline
    /// journal), when the job is in the killed subset.
    kill: Option<FaultPlan>,
    /// Whether the job is cancelled before the fleet starts.
    cancel: bool,
}

fn percentile(sorted: &[f64], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let position = (fraction * (sorted.len() - 1) as f64).round() as usize;
    sorted[position.min(sorted.len() - 1)]
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let workload = WorkloadConfig {
        array_side: config.array_side,
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: config.detection_frames,
        noise_scale: config.noise_scale,
        recovery: config.recovery,
        load_time: config.load_time,
        flush_time: config.flush_time,
        seed: config.seed,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(workload.array_side);
    let sep = workload.min_separation.max(1);
    let mix = protocol_mix(dims, sep, config.particles);
    let tenants = config.tenants.max(1);
    let per_tenant = config.jobs_per_tenant.max(1);
    let total = tenants * per_tenant;

    // Fixed job definitions with their uninterrupted baselines: the
    // oracle every fleet run must reproduce. Cancelled jobs are drawn
    // from the tail, killed jobs from the head, and the two subsets never
    // overlap (a cancelled job never runs, so a kill on it would be
    // unobservable).
    let cancel_from = total - config.cancel_jobs.min(total);
    let defs: Vec<JobDef> = (0..total)
        .map(|index| {
            let protocol = mix[index % mix.len()].clone();
            let seed = config.seed + index as u64;
            let mut job_config = workload;
            job_config.seed = seed;
            let driver = BatchDriver::new(job_config);
            let (outcome, journal) = driver.runner().run_journaled(&protocol, 0);
            let cancel = index >= cancel_from;
            JobDef {
                tenant: format!("tenant-{}", index / per_tenant),
                protocol,
                seed,
                baseline_hash: format!("{:#018x}", outcome.state.state_hash()),
                baseline_events: journal.len(),
                kill: (!cancel && index < config.kill_jobs)
                    .then(|| FaultPlan::after((journal.len() as u64 / 2).max(1))),
                cancel,
            }
        })
        .collect();
    ctx.emit_row(format!(
        "{} job definitions across {} tenants ({} baselines computed)",
        total,
        tenants,
        defs.len()
    ));

    let mut fleet = Vec::new();
    let mut total_divergences = 0usize;
    for &workers in &config.worker_counts {
        let farm = Farm::new(FarmConfig {
            workers: workers.max(1),
            queue_depth: config.queue_depth.max(total),
            planner_threads: config.planner_threads,
            workload,
            start_paused: true,
            pause_on_fault: false,
        });
        let ids: Vec<JobId> = defs
            .iter()
            .map(|def| {
                let mut spec = JobSpec::tenant(&def.tenant).with_seed(def.seed);
                if let Some(kill) = def.kill {
                    spec = spec.with_fault(kill);
                }
                farm.submit(def.protocol.clone(), spec)
                    .expect("benchmark queue is sized to hold every job")
            })
            .collect();
        for (id, def) in ids.iter().zip(&defs) {
            if def.cancel {
                assert!(farm.cancel(*id), "cancelling a queued job succeeds");
            }
        }
        let started = std::time::Instant::now();
        farm.start();
        farm.wait_idle();
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut completed = 0usize;
        let mut cancelled = 0usize;
        let mut killed = 0usize;
        let mut recovered = 0usize;
        let mut divergences = 0usize;
        let mut latencies = Vec::new();
        for (id, def) in ids.iter().zip(&defs) {
            let record = farm.record(*id).expect("submitted jobs have records");
            match record.status {
                JobStatus::Done => {
                    completed += 1;
                    latencies.push(record.latency_ms());
                    let on_baseline = record.state_hash.as_deref()
                        == Some(def.baseline_hash.as_str())
                        && record.journal_events == def.baseline_events;
                    if !on_baseline {
                        divergences += 1;
                        ctx.emit_row(format!(
                            "DIVERGENCE: {} ({}) missed its baseline ({:?} vs {}, {} vs {} events)",
                            record.id,
                            record.protocol.name,
                            record.state_hash,
                            def.baseline_hash,
                            record.journal_events,
                            def.baseline_events
                        ));
                    }
                    if def.kill.is_some() {
                        killed += 1;
                        if record.resumes >= 1 && on_baseline {
                            recovered += 1;
                        }
                    }
                }
                JobStatus::Cancelled => cancelled += 1,
                ref status => {
                    divergences += 1;
                    ctx.emit_row(format!(
                        "DIVERGENCE: {} ended {} ({})",
                        record.id,
                        status.label(),
                        record.detail
                    ));
                }
            }
        }
        total_divergences += divergences;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let row = FleetRow {
            workers,
            submitted: ids.len(),
            completed,
            cancelled,
            killed,
            recovered,
            wall_ms,
            jobs_per_sec: if wall_ms > 0.0 {
                completed as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            latency_p50_ms: percentile(&latencies, 0.50),
            latency_p99_ms: percentile(&latencies, 0.99),
            divergences,
        };
        ctx.emit_row(format!(
            "workers {}: {:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms, {}/{} kills recovered, {} divergences",
            row.workers,
            row.jobs_per_sec,
            row.latency_p50_ms,
            row.latency_p99_ms,
            row.recovered,
            row.killed,
            row.divergences
        ));
        fleet.push(row);
        // History sanity under load: every record is terminal and visible.
        let records = farm.history(&HistoryFilter::terminal(), 0);
        assert_eq!(
            records.len(),
            ids.len(),
            "every job reached a terminal state"
        );
        farm.shutdown();
    }

    // Backpressure: a deliberately tiny queue must reject the overflow
    // explicitly rather than grow or block.
    let tiny = Farm::new(FarmConfig {
        workers: 1,
        queue_depth: 2,
        planner_threads: config.planner_threads,
        workload,
        start_paused: true,
        pause_on_fault: false,
    });
    let mut queue_full_rejections = 0usize;
    for def in defs.iter().take(4) {
        match tiny.submit(def.protocol.clone(), JobSpec::tenant(&def.tenant)) {
            Ok(_) => {}
            Err(SubmitError::Rejected(_)) => queue_full_rejections += 1,
            Err(error) => panic!("unexpected submit error: {error}"),
        }
    }
    tiny.start();
    tiny.wait_idle();
    tiny.shutdown();
    ctx.emit_row(format!(
        "queue depth 2: {queue_full_rejections} of 4 submissions rejected with QueueFull"
    ));

    Results {
        jobs_per_fleet: total,
        protocols: mix.iter().map(|protocol| protocol.name.clone()).collect(),
        fleet,
        queue_full_rejections,
        total_divergences,
    }
}

/// The farm fleet benchmark as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FarmScenario;

impl Scenario for FarmScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E15"
    }

    fn describe(&self) -> &'static str {
        "Chip farm: multi-tenant fleet throughput, cancellation and kill recovery"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            array_side: 24,
            particles: 12,
            tenants: 2,
            jobs_per_tenant: 2,
            worker_counts: vec![1, 2],
            kill_jobs: 1,
            cancel_jobs: 1,
            ..Config::default()
        }
    }

    #[test]
    fn fleet_sweep_completes_recovers_and_never_diverges() {
        let config = quick_config();
        let results = run_with(&config, &mut ScenarioContext::silent("E15"));
        assert_eq!(results.jobs_per_fleet, 4);
        assert_eq!(results.fleet.len(), 2);
        assert_eq!(results.total_divergences, 0, "{results:?}");
        assert!(results.queue_full_rejections >= 1);
        for row in &results.fleet {
            assert_eq!(row.completed, 3, "{row:?}");
            assert_eq!(row.cancelled, 1);
            assert_eq!(row.killed, 1);
            assert_eq!(row.recovered, 1, "{row:?}");
            assert!(row.jobs_per_sec > 0.0);
            assert!(row.latency_p99_ms >= row.latency_p50_ms);
        }
        assert!((results.recovery_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn full_registry_extends_core_with_e15_and_e16() {
        let registry = full_registry();
        assert_eq!(registry.len(), ScenarioRegistry::all().len() + 2);
        assert!(registry.get("E15").is_some());
        assert!(registry.get("E16").is_some());
        assert!(registry.get("e16").is_some(), "lookup is case-insensitive");
    }

    #[test]
    fn results_render_as_a_table() {
        let results = Results {
            jobs_per_fleet: 4,
            protocols: vec!["canned-cycle".into()],
            fleet: vec![FleetRow {
                workers: 2,
                submitted: 4,
                completed: 3,
                cancelled: 1,
                killed: 1,
                recovered: 1,
                wall_ms: 100.0,
                jobs_per_sec: 30.0,
                latency_p50_ms: 40.0,
                latency_p99_ms: 90.0,
                divergences: 0,
            }],
            queue_full_rejections: 2,
            total_divergences: 0,
        };
        let table = results.to_table();
        assert_eq!(table.id, "E15");
        assert_eq!(table.rows.len(), 2);
        let json = serde_json::to_string(&results);
        let back: Results = serde_json::from_str(&json).expect("results round trip");
        assert_eq!(back, results);
    }
}
