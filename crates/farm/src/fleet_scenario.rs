//! E16 — sharded chip fleets: one logical array over many shards, with
//! cross-shard handoff and sharded-vs-monolithic equivalence.
//!
//! The scenario sweeps shard grids over one protocol at one seed:
//!
//! 1. run the **monolithic baseline** once, journaled — its event stream
//!    and final state hash are the oracle;
//! 2. for every shard grid: run the same protocol **sharded**
//!    ([`ProtocolRunner::run_sharded`](labchip::workload::ProtocolRunner::run_sharded)),
//!    measuring wall clock, handoff counts, per-shard load imbalance and
//!    warm-start cache traffic;
//! 3. oracles, all of which **must hold** (CI asserts zero divergences):
//!    the sharded run's global journal is byte-identical to the
//!    monolithic journal; the shards compose back to the monolithic
//!    state hash; every shard journal replays to its live shard state;
//!    the [`ShardGroup`] worker gang (one worker per shard, barrier
//!    rendezvous at phase boundaries) reproduces every live shard hash;
//! 4. on every multi-shard grid, one shard worker is **killed** at an
//!    interior phase boundary and the whole group resumed from its
//!    [`GroupCheckpoint`](crate::group::GroupCheckpoint) — the resumed
//!    hashes must equal the uninterrupted run's.
//!
//! Wall-clock vs the 1-shard row measures the mirroring + per-shard
//! planning overhead; the sweep's point is the measured equivalence at
//! scale, not a speedup claim (the global run still executes the full
//! algorithm).
//!
//! With [`Config::live_planning`] the sweep instead plans every routing
//! window **live and in parallel** — one planner thread per shard over
//! seam handoff channels
//! ([`LiveFleetPlanner`](labchip_manipulation::fleet::LiveFleetPlanner))
//! — and runs the worker gang in live mode too. Every oracle above must
//! hold unchanged; the dedicated `workload/fleet_live` bench rows
//! measure the window-planning speedup itself.

use labchip::experiments::ExperimentTable;
use labchip::scenario::{Scenario, ScenarioContext};
use labchip::workload::{BatchDriver, Protocol, RecoveryPolicy, WorkloadConfig};
use labchip_manipulation::fleet::{FleetTopology, ShardedState};
use labchip_manipulation::sharding::IncrementalRouter;
use labchip_units::{GridDims, Seconds};
use serde::{Deserialize, Serialize};

use crate::group::{GroupKill, ShardGroup};

/// Configuration of the sharded-fleet equivalence sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Array side (electrodes).
    pub array_side: u32,
    /// Particles loaded per cycle.
    pub particles: usize,
    /// Shard grids swept, `[cols, rows]` each; the first is the
    /// wall-clock reference.
    pub grids: Vec<[u32; 2]>,
    /// Minimum cage separation (the halo margin is `sep / 2`).
    pub min_separation: u32,
    /// Cage-step period.
    pub step_period: Seconds,
    /// Sensor frames averaged per detection scan.
    pub detection_frames: u32,
    /// Scale applied to every sensor noise term.
    pub noise_scale: f64,
    /// Closed-loop recovery policy.
    pub recovery: RecoveryPolicy,
    /// Plan routing windows live and in parallel (one planner per shard
    /// over seam handoff channels) instead of serially shard-by-shard.
    /// The journal/compose oracles must hold either way.
    pub live_planning: bool,
    /// RNG seed of the swept run.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            array_side: 320,
            particles: 10_000,
            grids: vec![[1, 1], [2, 1], [2, 2]],
            min_separation: 2,
            step_period: Seconds::new(0.4),
            detection_frames: 2,
            noise_scale: 8.0,
            recovery: RecoveryPolicy::date05_reference(),
            live_planning: false,
            seed: 1606,
        }
    }
}

/// One shard-grid sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRow {
    /// Shard grid, rendered `colsxrows`.
    pub grid: String,
    /// Shards in the fleet.
    pub shards: usize,
    /// Sharded-run wall clock, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock ratio of the sweep's first grid to this one.
    pub speedup: f64,
    /// Cross-shard handoffs (export halves).
    pub handoffs: u64,
    /// Handoff import halves landed.
    pub imports: u64,
    /// Phase-boundary barriers the fleet rendezvoused at.
    pub barriers: u64,
    /// Per-shard local routing windows solved.
    pub local_solves: u64,
    /// Local windows skipped (no goal in shard, or degenerate geometry).
    pub local_skips: u64,
    /// Live (parallel) planning windows the fleet executed — 0 unless
    /// [`Config::live_planning`] is set.
    pub live_windows: u64,
    /// Seam handoff messages exchanged over the live planner's channels.
    pub seam_messages: u64,
    /// Warm-start cache hits summed over shards.
    pub cache_hits: u64,
    /// Warm-start cache misses summed over shards.
    pub cache_misses: u64,
    /// Per-shard journal lengths — the distributed work.
    pub journal_events: Vec<usize>,
    /// Final per-shard populations.
    pub populations: Vec<usize>,
    /// Load imbalance: max over mean of the per-shard journal lengths
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Whether the global journal missed byte-identity with the
    /// monolithic baseline.
    pub journal_divergence: bool,
    /// Whether the composed fleet missed the baseline state hash.
    pub compose_divergence: bool,
    /// Shards whose journal replay missed their live state hash.
    pub shard_replay_divergences: usize,
    /// Group-run replica shards that missed their live state hash.
    pub group_divergences: usize,
    /// Kill-one-worker group recovery: `None` on single-shard grids,
    /// otherwise whether the resumed group matched the uninterrupted
    /// hashes.
    pub kill_recovered: Option<bool>,
    /// Total divergences of this row — must be zero.
    pub divergences: usize,
}

/// Result of the sharded-fleet equivalence sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Results {
    /// Monolithic-baseline final state hash.
    pub baseline_hash: String,
    /// Monolithic-baseline journal length.
    pub baseline_events: usize,
    /// Monolithic-baseline wall clock, milliseconds.
    pub baseline_wall_ms: f64,
    /// One row per swept shard grid.
    pub grids: Vec<GridRow>,
    /// Divergences summed over the sweep — must be zero.
    pub total_divergences: usize,
}

impl Results {
    /// Renders the sweep as a report table.
    pub fn to_table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .grids
            .iter()
            .map(|row| {
                vec![
                    row.grid.clone(),
                    format!("{:.0}", row.wall_ms),
                    format!("{:.2}", row.speedup),
                    row.handoffs.to_string(),
                    format!("{:.2}", row.imbalance),
                    row.divergences.to_string(),
                    format!(
                        "{} barriers, {} local solves ({} skips), cache {}/{} hit/miss{}{}",
                        row.barriers,
                        row.local_solves,
                        row.local_skips,
                        row.cache_hits,
                        row.cache_misses,
                        if row.live_windows > 0 {
                            format!(
                                ", {} live windows ({} seam msgs)",
                                row.live_windows, row.seam_messages
                            )
                        } else {
                            String::new()
                        },
                        match row.kill_recovered {
                            Some(true) => ", kill+resume ok",
                            Some(false) => ", kill+resume DIVERGED",
                            None => "",
                        }
                    ),
                ]
            })
            .collect();
        rows.push(vec![
            "-".into(),
            format!("{:.0}", self.baseline_wall_ms),
            "-".into(),
            "-".into(),
            "-".into(),
            self.total_divergences.to_string(),
            format!(
                "monolithic baseline {} ({} events)",
                self.baseline_hash, self.baseline_events
            ),
        ]);
        ExperimentTable::new(
            "E16",
            "Sharded chip fleets: cross-shard handoff and sharded-vs-monolithic equivalence",
            vec![
                "grid".into(),
                "wall ms".into(),
                "speedup".into(),
                "handoffs".into(),
                "imbalance".into(),
                "divergences".into(),
                "detail".into(),
            ],
            rows,
        )
    }
}

impl From<Results> for ExperimentTable {
    fn from(results: Results) -> Self {
        results.to_table()
    }
}

fn run_with(config: &Config, ctx: &mut ScenarioContext) -> Results {
    let workload = WorkloadConfig {
        array_side: config.array_side,
        min_separation: config.min_separation,
        step_period: config.step_period,
        detection_frames: config.detection_frames,
        noise_scale: config.noise_scale,
        recovery: config.recovery,
        live_planning: config.live_planning,
        seed: config.seed,
        ..WorkloadConfig::default()
    };
    let dims = GridDims::square(workload.array_side);
    let sep = workload.min_separation.max(1);
    let protocol = Protocol::canned_cycle(dims, sep, config.particles);
    let driver = BatchDriver::new(workload);

    let started = std::time::Instant::now();
    let (baseline, baseline_journal) = driver.runner().run_journaled(&protocol, 0);
    let baseline_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let baseline_hash = baseline.state.state_hash();
    ctx.emit_row(format!(
        "monolithic baseline: {:#018x}, {} events, {:.0} ms",
        baseline_hash,
        baseline_journal.len(),
        baseline_wall_ms
    ));

    let mut rows: Vec<GridRow> = Vec::new();
    let mut total_divergences = 0usize;
    for (index, &[cols, rows_]) in config.grids.iter().enumerate() {
        let topology = FleetTopology::new(dims, sep, cols, rows_);
        let shards = topology.shard_count();
        let started = std::time::Instant::now();
        let (outcome, journal, fleet) =
            driver
                .runner()
                .run_sharded(&protocol, 0, ShardedState::new(topology));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let journal_divergence = journal.events() != baseline_journal.events()
            || outcome.state.state_hash() != baseline_hash;
        let group = ShardGroup::from_outcome(fleet.into_outcome(), outcome.state.state_hash());
        let group = if workload.live_planning {
            group.with_live_planning(IncrementalRouter::new(workload.shards))
        } else {
            group
        };
        let compose_divergence = group.fleet().compose().state_hash() != baseline_hash;
        let shard_replay_divergences = group.fleet().replay_divergences();
        let expected = group.expected_hashes();
        let group_run = group.run();
        let group_divergences = group_run
            .state_hashes()
            .iter()
            .zip(&expected)
            .filter(|(replica, live)| replica != live)
            .count();
        // Kill one shard worker (rotating which, so the sweep covers
        // different shards) at an interior boundary and resume the group.
        let kill_recovered = (shards > 1 && group.segment_count() > 1).then(|| {
            let kill = GroupKill {
                shard: index % shards,
                boundary: (group.segment_count() / 2).clamp(1, group.segment_count() - 1),
            };
            let (_stopped, checkpoint) = group.run_killed(kill);
            group.resume(&checkpoint).state_hashes() == expected
        });

        let stats = group.stats();
        let journal_events = group.journal_lengths();
        let mean = journal_events.iter().sum::<usize>() as f64 / journal_events.len() as f64;
        let imbalance = if mean > 0.0 {
            journal_events.iter().copied().max().unwrap_or(0) as f64 / mean
        } else {
            1.0
        };
        let (cache_hits, cache_misses) = group
            .cache_stats()
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        let divergences = usize::from(journal_divergence)
            + usize::from(compose_divergence)
            + shard_replay_divergences
            + group_divergences
            + usize::from(kill_recovered == Some(false));
        total_divergences += divergences;
        let row = GridRow {
            grid: format!("{cols}x{rows_}"),
            shards,
            wall_ms,
            speedup: rows.first().map_or(1.0, |first: &GridRow| {
                if wall_ms > 0.0 {
                    first.wall_ms / wall_ms
                } else {
                    1.0
                }
            }),
            handoffs: stats.exports,
            imports: stats.imports,
            barriers: stats.barriers,
            local_solves: stats.local_solves,
            local_skips: stats.local_skips,
            live_windows: stats.live_windows,
            seam_messages: stats.seam_messages,
            cache_hits,
            cache_misses,
            populations: group
                .fleet()
                .states
                .iter()
                .map(|s| s.particle_count())
                .collect(),
            journal_events,
            imbalance,
            journal_divergence,
            compose_divergence,
            shard_replay_divergences,
            group_divergences,
            kill_recovered,
            divergences,
        };
        ctx.emit_row(format!(
            "{}: {:.0} ms (x{:.2}), {} handoffs, imbalance {:.2}, {} divergences{}",
            row.grid,
            row.wall_ms,
            row.speedup,
            row.handoffs,
            row.imbalance,
            row.divergences,
            match row.kill_recovered {
                Some(true) => ", kill+resume ok",
                Some(false) => ", kill+resume DIVERGED",
                None => "",
            }
        ));
        rows.push(row);
    }

    Results {
        baseline_hash: format!("{baseline_hash:#018x}"),
        baseline_events: baseline_journal.len(),
        baseline_wall_ms,
        grids: rows,
        total_divergences,
    }
}

/// The sharded-fleet equivalence sweep as a first-class engine scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetScenario;

impl Scenario for FleetScenario {
    type Config = Config;
    type Output = Results;

    fn id(&self) -> &'static str {
        "E16"
    }

    fn describe(&self) -> &'static str {
        "Sharded chip fleets: cross-shard handoff and sharded-vs-monolithic equivalence"
    }

    fn run(&self, config: &Config, ctx: &mut ScenarioContext) -> Results {
        run_with(config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            array_side: 32,
            particles: 24,
            grids: vec![[1, 1], [2, 1], [2, 2]],
            ..Config::default()
        }
    }

    #[test]
    fn fleet_sweep_is_equivalent_and_hands_off() {
        let config = quick_config();
        let results = run_with(&config, &mut ScenarioContext::silent("E16"));
        assert_eq!(results.total_divergences, 0, "{results:?}");
        assert_eq!(results.grids.len(), 3);
        assert_eq!(results.grids[0].shards, 1);
        assert_eq!(results.grids[0].handoffs, 0);
        assert!(results.grids[0].kill_recovered.is_none());
        for row in &results.grids[1..] {
            assert!(row.handoffs > 0, "{row:?}");
            assert_eq!(row.imports, row.handoffs);
            assert_eq!(row.kill_recovered, Some(true), "{row:?}");
            assert!(row.barriers > 0);
            assert!(row.imbalance >= 1.0);
            assert_eq!(row.journal_events.len(), row.shards);
            assert_eq!(
                row.populations.iter().sum::<usize>(),
                results.grids[0].populations[0],
                "sharding never loses a particle"
            );
        }
    }

    #[test]
    fn live_planned_sweep_holds_every_oracle() {
        let config = Config {
            live_planning: true,
            ..quick_config()
        };
        let results = run_with(&config, &mut ScenarioContext::silent("E16"));
        assert_eq!(results.total_divergences, 0, "{results:?}");
        for row in &results.grids {
            assert!(row.live_windows > 0, "{row:?}");
            assert!(!row.journal_divergence);
            assert!(!row.compose_divergence);
        }
        assert_eq!(results.grids[0].seam_messages, 0);
        for row in &results.grids[1..] {
            assert!(row.seam_messages > 0, "{row:?}");
            assert_eq!(row.kill_recovered, Some(true), "{row:?}");
        }
    }

    #[test]
    fn results_render_as_a_table_and_round_trip() {
        let config = Config {
            array_side: 24,
            particles: 10,
            grids: vec![[1, 1], [2, 1]],
            ..Config::default()
        };
        let results = run_with(&config, &mut ScenarioContext::silent("E16"));
        let table = results.to_table();
        assert_eq!(table.id, "E16");
        assert_eq!(table.rows.len(), results.grids.len() + 1);
        let json = serde_json::to_string(&results);
        let back: Results = serde_json::from_str(&json).expect("results round trip");
        assert_eq!(back, results);
    }
}
