//! The bounded multi-tenant job queue: FIFO within a tenant, round-robin
//! across tenants, explicit backpressure when full.
//!
//! [`TenantQueue`] is a pure data structure — no locks, no threads — so
//! its scheduling behaviour is unit- and property-testable in isolation
//! from the worker fleet that drains it. The fairness contract:
//!
//! * **FIFO within tenant** — two jobs from the same tenant leave the
//!   queue in submission order;
//! * **round-robin across tenants** — tenants with queued work are served
//!   in rotation, so a tenant that floods the queue cannot starve the
//!   others: a tenant with a queued job waits at most one job per *other*
//!   active tenant before being served;
//! * **bounded depth** — [`TenantQueue::push`] refuses work beyond the
//!   configured capacity with an explicit [`QueueFull`] instead of growing
//!   without bound (the caller surfaces it as a rejected submission).
//!
//! Re-admission of an interrupted job ([`TenantQueue::push_front`]) jumps
//! the tenant's own FIFO — the job already holds a checkpoint and should
//! finish before fresh work from the same tenant — but does **not** jump
//! the tenant rotation, and is exempt from the capacity bound because the
//! job was already admitted once.

use std::collections::{BTreeMap, VecDeque};

/// The queue refused a push because it is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full ({} jobs queued)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// A bounded multi-tenant FIFO/round-robin queue (see the module docs for
/// the fairness contract).
#[derive(Debug, Clone)]
pub struct TenantQueue<T> {
    capacity: usize,
    /// Per-tenant FIFO queues; empty queues are removed eagerly.
    queues: BTreeMap<String, VecDeque<T>>,
    /// Tenants with queued work, in service order: pop serves the front
    /// tenant and rotates it to the back.
    rotation: VecDeque<String>,
    len: usize,
}

impl<T> TenantQueue<T> {
    /// An empty queue holding at most `capacity` items in total (a zero
    /// capacity is clamped to 1 — a queue that can hold nothing would
    /// reject every submission).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            queues: BTreeMap::new(),
            rotation: VecDeque::new(),
            len: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tenants that currently have queued work, in service order.
    pub fn active_tenants(&self) -> impl Iterator<Item = &str> {
        self.rotation.iter().map(String::as_str)
    }

    /// Queued items for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Appends an item to `tenant`'s FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] — and leaves the queue untouched — when the
    /// total depth is at capacity.
    pub fn push(&mut self, tenant: &str, item: T) -> Result<(), QueueFull> {
        if self.len >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        self.admit(tenant, item, false);
        Ok(())
    }

    /// Re-admits an interrupted item at the *front* of `tenant`'s FIFO,
    /// bypassing the capacity bound (the item was already admitted once;
    /// re-queuing it for resume must not be refusable).
    pub fn push_front(&mut self, tenant: &str, item: T) {
        self.admit(tenant, item, true);
    }

    fn admit(&mut self, tenant: &str, item: T, front: bool) {
        let queue = self.queues.entry(tenant.to_owned()).or_default();
        if queue.is_empty() {
            self.rotation.push_back(tenant.to_owned());
        }
        if front {
            queue.push_front(item);
        } else {
            queue.push_back(item);
        }
        self.len += 1;
    }

    /// Takes the next item: the front of the next tenant's FIFO in the
    /// round-robin rotation. Returns the tenant it came from.
    pub fn pop(&mut self) -> Option<(String, T)> {
        let tenant = self.rotation.pop_front()?;
        let queue = self
            .queues
            .get_mut(&tenant)
            .expect("rotation only lists tenants with a queue");
        let item = queue
            .pop_front()
            .expect("rotation only lists non-empty queues");
        self.len -= 1;
        if queue.is_empty() {
            self.queues.remove(&tenant);
        } else {
            self.rotation.push_back(tenant.clone());
        }
        Some((tenant, item))
    }

    /// Removes the first queued item of `tenant` matching `matches`
    /// (cancellation of a queued job). Returns the removed item.
    pub fn remove(&mut self, tenant: &str, matches: impl Fn(&T) -> bool) -> Option<T> {
        let queue = self.queues.get_mut(tenant)?;
        let index = queue.iter().position(matches)?;
        let item = queue.remove(index).expect("position() yielded the index");
        self.len -= 1;
        if queue.is_empty() {
            self.queues.remove(tenant);
            if let Some(slot) = self.rotation.iter().position(|t| t == tenant) {
                self.rotation.remove(slot);
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tenant_round_robin_across() {
        let mut queue = TenantQueue::new(16);
        queue.push("a", 1).unwrap();
        queue.push("a", 2).unwrap();
        queue.push("b", 10).unwrap();
        queue.push("c", 100).unwrap();
        queue.push("b", 11).unwrap();
        let order: Vec<(String, i32)> = std::iter::from_fn(|| queue.pop()).collect();
        // a and b and c rotate; within each tenant the order is FIFO.
        assert_eq!(
            order,
            vec![
                ("a".to_owned(), 1),
                ("b".to_owned(), 10),
                ("c".to_owned(), 100),
                ("a".to_owned(), 2),
                ("b".to_owned(), 11),
            ]
        );
    }

    #[test]
    fn capacity_bound_rejects_with_queue_full() {
        let mut queue = TenantQueue::new(2);
        queue.push("a", 1).unwrap();
        queue.push("b", 2).unwrap();
        let err = queue.push("a", 3).unwrap_err();
        assert_eq!(err, QueueFull { capacity: 2 });
        assert_eq!(queue.len(), 2);
        // Draining one slot re-opens the queue.
        queue.pop().unwrap();
        queue.push("a", 3).unwrap();
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn push_front_jumps_the_tenant_fifo_not_the_rotation() {
        let mut queue = TenantQueue::new(2);
        queue.push("a", 1).unwrap();
        queue.push("b", 10).unwrap();
        // Capacity is full, but re-admission must still succeed...
        queue.push_front("a", 0);
        assert_eq!(queue.len(), 3);
        // ...and the re-admitted item leads tenant a's FIFO while the
        // rotation still serves a first (it was pushed first).
        assert_eq!(queue.pop(), Some(("a".to_owned(), 0)));
        assert_eq!(queue.pop(), Some(("b".to_owned(), 10)));
        assert_eq!(queue.pop(), Some(("a".to_owned(), 1)));
    }

    #[test]
    fn remove_cancels_a_queued_item_and_cleans_the_rotation() {
        let mut queue = TenantQueue::new(8);
        queue.push("a", 1).unwrap();
        queue.push("b", 10).unwrap();
        queue.push("a", 2).unwrap();
        assert_eq!(queue.remove("a", |item| *item == 1), Some(1));
        assert_eq!(queue.remove("a", |item| *item == 99), None);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.remove("a", |item| *item == 2), Some(2));
        // Tenant a is gone from the rotation entirely.
        assert_eq!(queue.active_tenants().collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(queue.pop(), Some(("b".to_owned(), 10)));
        assert!(queue.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut queue = TenantQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.push("a", 1).unwrap();
        assert!(queue.push("a", 2).is_err());
    }
}
