//! # labchip_farm — the multi-tenant chip-farm job service
//!
//! The DATE'05 chip (`labchip` core) simulates *one* microelectronic
//! biochip running *one* assay protocol. This crate scales that out to a
//! production-style service: a [`Farm`] owns a bounded multi-tenant job
//! queue and a fleet of worker threads, each driving a
//! [`ProtocolRunner`](labchip::workload::ProtocolRunner) over its own
//! chip state. Submitted protocols run to completion, can be cancelled
//! cooperatively at phase boundaries, and survive injected mid-run kills
//! by resuming from phase-boundary checkpoints — bit-identically to an
//! uninterrupted run, inheriting the journal/replay/checkpoint guarantees
//! the event-sourced chip state established.
//!
//! The crate splits into:
//!
//! * [`queue`] — the pure scheduling structure: FIFO within tenant,
//!   round-robin across tenants, bounded with explicit
//!   [`QueueFull`] backpressure;
//! * [`job`] — the public job model: [`JobId`], [`JobSpec`],
//!   [`JobStatus`], the durable [`JobRecord`] and [`HistoryFilter`], all
//!   JSON-serialisable;
//! * [`farm`] — the service itself: [`Farm`], [`FarmConfig`], the worker
//!   fleet and the job-control API (`submit` / `cancel` / `status` /
//!   `history`);
//! * [`history`] — on-disk persistence of job records and journals for
//!   offline inspection and `report journal-diff`;
//! * [`group`] — a sharded chip as a job *group*: one worker per shard
//!   folding its shard's journal segments, barrier rendezvous at phase
//!   boundaries, and whole-group checkpoint/resume (kill any shard
//!   worker → the group resumes bit-identically);
//! * [`scenario`] — experiment E15 (`e15_farm`): fleet-throughput and
//!   recovery benchmarking of the farm; and [`fleet_scenario`] —
//!   experiment E16 (`e16_fleet`): sharded-vs-monolithic equivalence
//!   sweeps; plus [`full_registry`] — the complete E1..E16 scenario
//!   registry (core's registry stays E1..E14 because this crate sits
//!   above it in the dependency order).

pub mod farm;
pub mod fleet_scenario;
pub mod group;
pub mod history;
pub mod job;
pub mod queue;
pub mod scenario;

pub use farm::{Farm, FarmConfig};
pub use fleet_scenario::FleetScenario;
pub use group::{GroupCheckpoint, GroupKill, GroupOutcome, ShardGroup};
pub use history::HistoryStore;
pub use job::{HistoryFilter, JobId, JobRecord, JobSpec, JobStatus, SubmitError};
pub use queue::{QueueFull, TenantQueue};
pub use scenario::{full_registry, FarmScenario};
