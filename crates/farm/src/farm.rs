//! The farm service: a bounded multi-tenant job queue drained by a fleet
//! of worker threads, each driving a [`ProtocolRunner`] over its own
//! [`ChipState`](labchip_manipulation::state::ChipState).
//!
//! ## Execution model
//!
//! [`Farm::submit`] admits a ([`Protocol`], [`JobSpec`]) pair into the
//! [`TenantQueue`] — FIFO within a tenant, round-robin across tenants,
//! bounded depth with explicit [`SubmitError::Rejected`] backpressure.
//! Workers claim jobs from the queue and execute them with
//! [`ProtocolRunner::run_controlled`], which journals every chip-state
//! event and takes a [`Checkpoint`] at every phase boundary:
//!
//! * an injected-fault kill ([`JobSpec::fault`]) stops the worker
//!   mid-phase; the job is re-queued at the front of its tenant's FIFO
//!   with the boundary checkpoint and later *resumed* — bit-identically
//!   to an uninterrupted run, per the PR 6 journal/checkpoint guarantees;
//! * [`Farm::cancel`] removes a queued job immediately, or stops a
//!   running one cooperatively at its next phase boundary;
//! * every job's final chip-state hash depends only on its protocol and
//!   effective config — not on which worker ran it, how the fleet was
//!   scheduled, or how many times it was killed and resumed.
//!
//! Job telemetry streams through the scenario-engine [`Progress`] sink
//! (one `ScenarioStarted`/`Row`/`ScenarioFinished` stream per job, keyed
//! `job-<id>`), and every job leaves a JSON-serialisable [`JobRecord`]
//! served by [`Farm::status`] and [`Farm::history`].

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use labchip::scenario::{Progress, ProgressEvent};
use labchip::workload::{
    BatchDriver, Checkpoint, ForceEnvelope, PhaseError, Protocol, ProtocolRunner, RunControl,
    StopCause, StoppedRun, WorkloadConfig,
};
use labchip_manipulation::journal::{Event, FaultPlan, Journal};

use crate::job::{HistoryFilter, JobId, JobRecord, JobSpec, JobStatus, SubmitError};
use crate::queue::TenantQueue;

/// Configuration of a [`Farm`].
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Total queued jobs across all tenants before `submit` rejects.
    pub queue_depth: usize,
    /// Rayon planner threads *per worker* (0 = inherit the ambient pool).
    /// Routing results are bit-identical across planner thread counts;
    /// this only trades planning latency against core pressure.
    pub planner_threads: usize,
    /// Base workload configuration; per-job [`JobSpec`] seed/noise
    /// overrides are applied on top.
    pub workload: WorkloadConfig,
    /// Start with the fleet paused: submissions queue up but nothing runs
    /// until [`Farm::start`] — deterministic setup for tests and batch
    /// submission.
    pub start_paused: bool,
    /// Pause the fleet whenever an injected-fault kill re-queues a job —
    /// a breakpoint-on-fault mode that lets an operator (or a test)
    /// inspect the checkpointed job before resuming with [`Farm::start`].
    pub pause_on_fault: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            planner_threads: 0,
            workload: WorkloadConfig::default(),
            start_paused: false,
            pause_on_fault: false,
        }
    }
}

/// A job held by the farm: its public record plus the execution-side
/// baggage (checkpoint, committed journal, armed fault) that never leaves
/// the service.
struct Job {
    record: JobRecord,
    /// Resume point from an interrupted execution.
    checkpoint: Option<Checkpoint>,
    /// Injected kill armed for the next execution (fires once).
    fault: Option<FaultPlan>,
    /// Journal events committed so far: completed executions in full plus
    /// the replay-exact prefix of interrupted ones. After the job is
    /// `Done`, this is bit-identical to the journal of an uninterrupted
    /// run.
    committed: Vec<Event>,
    /// Cooperative cancellation flag, polled at phase boundaries.
    cancel_requested: bool,
    /// When the job (re-)entered the queue, for `queue_ms`.
    enqueued_at: Instant,
    /// Whether the job's `ScenarioStarted` progress event was emitted.
    announced: bool,
}

struct FarmState {
    queue: TenantQueue<JobId>,
    jobs: BTreeMap<JobId, Job>,
    next_id: u64,
    /// Jobs currently executing on workers.
    running: usize,
    paused: bool,
    shutdown: bool,
}

struct FarmShared {
    state: Mutex<FarmState>,
    /// Signalled on every state transition; workers, `wait_idle` and
    /// `wait_paused` all wait here.
    changed: Condvar,
    progress: Arc<dyn Progress>,
    /// Derived once at farm startup and shared by every per-job driver.
    envelope: ForceEnvelope,
    planner_threads: usize,
    pause_on_fault: bool,
}

/// The multi-tenant chip-farm job service. See the module docs for the
/// execution model.
pub struct Farm {
    shared: Arc<FarmShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    base_workload: WorkloadConfig,
}

impl Farm {
    /// Builds the farm and spawns its worker fleet (discarding progress
    /// telemetry).
    pub fn new(config: FarmConfig) -> Self {
        Self::with_progress(config, Arc::new(labchip::scenario::NullProgress))
    }

    /// Builds the farm with a [`Progress`] sink receiving per-job
    /// telemetry streams keyed `job-<id>`.
    pub fn with_progress(config: FarmConfig, progress: Arc<dyn Progress>) -> Self {
        let shared = Arc::new(FarmShared {
            state: Mutex::new(FarmState {
                queue: TenantQueue::new(config.queue_depth),
                jobs: BTreeMap::new(),
                next_id: 0,
                running: 0,
                paused: config.start_paused,
                shutdown: false,
            }),
            changed: Condvar::new(),
            progress,
            envelope: ForceEnvelope::date05_reference(),
            planner_threads: config.planner_threads,
            pause_on_fault: config.pause_on_fault,
        });
        let workers = config.workers.max(1);
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("farm-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a farm worker thread")
            })
            .collect();
        Self {
            shared,
            handles: Mutex::new(handles),
            base_workload: config.workload,
        }
    }

    /// Submits a job: the protocol enters `spec.tenant`'s FIFO and runs
    /// under the farm's workload config with the spec's seed/noise
    /// overrides applied.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] when the bounded queue is full (explicit
    /// backpressure — retry after the fleet drains), and
    /// [`SubmitError::ShuttingDown`] after [`Farm::shutdown`].
    pub fn submit(&self, protocol: Protocol, spec: JobSpec) -> Result<JobId, SubmitError> {
        let mut config = self.base_workload;
        if let Some(seed) = spec.seed {
            config.seed = seed;
        }
        if let Some(noise) = spec.noise_scale {
            config.noise_scale = noise;
        }
        let mut state = self.lock();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = JobId(state.next_id);
        state
            .queue
            .push(&spec.tenant, id)
            .map_err(SubmitError::Rejected)?;
        state.next_id += 1;
        state.jobs.insert(
            id,
            Job {
                record: JobRecord {
                    id,
                    tenant: spec.tenant,
                    protocol,
                    config,
                    status: JobStatus::Queued,
                    phases_completed: 0,
                    resumes: 0,
                    journal_events: 0,
                    queue_ms: 0.0,
                    run_ms: 0.0,
                    state_hash: None,
                    detail: "queued".into(),
                },
                checkpoint: None,
                fault: spec.fault,
                committed: Vec::new(),
                cancel_requested: false,
                enqueued_at: Instant::now(),
                announced: false,
            },
        );
        self.shared.changed.notify_all();
        Ok(id)
    }

    /// Cancels a job: a queued job leaves the queue immediately; a
    /// running one stops cooperatively at its next phase boundary (with a
    /// checkpoint, so the cancellation is still resumable in principle).
    /// Returns `false` if the job is unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.lock();
        let Some(job) = state.jobs.get_mut(&id) else {
            return false;
        };
        match job.record.status {
            JobStatus::Queued => {
                let tenant = job.record.tenant.clone();
                job.record.queue_ms += ms_since(job.enqueued_at);
                job.record.status = JobStatus::Cancelled;
                job.record.detail = if job.checkpoint.is_some() {
                    "cancelled while re-queued with a checkpoint".into()
                } else {
                    "cancelled before start".into()
                };
                let announced = job.announced;
                let rows = job.record.phases_completed;
                let wall = job.record.run_ms;
                state.queue.remove(&tenant, |queued| *queued == id);
                self.shared.changed.notify_all();
                drop(state);
                if announced {
                    self.shared
                        .progress
                        .on_event(&ProgressEvent::ScenarioFinished {
                            scenario: id.to_string(),
                            rows,
                            wall_ms: wall,
                        });
                }
                true
            }
            JobStatus::Running { .. } => {
                job.cancel_requested = true;
                true
            }
            _ => false,
        }
    }

    /// The job's current lifecycle state.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.lock()
            .jobs
            .get(&id)
            .map(|job| job.record.status.clone())
    }

    /// A point-in-time copy of the job's full record.
    pub fn record(&self, id: JobId) -> Option<JobRecord> {
        self.lock().jobs.get(&id).map(|job| job.record.clone())
    }

    /// Records matching `filter`, most recent submission first, truncated
    /// to `depth` entries (0 = unlimited).
    pub fn history(&self, filter: &HistoryFilter, depth: usize) -> Vec<JobRecord> {
        let state = self.lock();
        let mut records: Vec<JobRecord> = state
            .jobs
            .values()
            .rev()
            .filter(|job| filter.matches(&job.record))
            .map(|job| job.record.clone())
            .collect();
        if depth > 0 {
            records.truncate(depth);
        }
        records
    }

    /// The job's committed journal: completed executions in full plus the
    /// replay-exact prefix of interrupted ones. For a `Done` job this is
    /// bit-identical to the journal of an uninterrupted run — the
    /// equivalence oracle the recovery tests and `report journal-diff`
    /// build on.
    pub fn accumulated_journal(&self, id: JobId) -> Option<Journal> {
        let state = self.lock();
        let job = state.jobs.get(&id)?;
        let mut journal = Journal::new();
        for event in &job.committed {
            journal.record(event.clone());
        }
        Some(journal)
    }

    /// Unpauses the fleet (after [`FarmConfig::start_paused`] or a
    /// [`FarmConfig::pause_on_fault`] breakpoint).
    pub fn start(&self) {
        self.lock().paused = false;
        self.shared.changed.notify_all();
    }

    /// Pauses the fleet: running jobs finish their current execution,
    /// queued ones stay queued.
    pub fn pause(&self) {
        self.lock().paused = true;
        self.shared.changed.notify_all();
    }

    /// Whether the fleet is paused.
    pub fn is_paused(&self) -> bool {
        self.lock().paused
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently executing on workers.
    pub fn running(&self) -> usize {
        self.lock().running
    }

    /// Blocks until the queue is empty and no job is executing. Call
    /// [`Farm::start`] first if the farm is paused with queued work —
    /// paused jobs never drain.
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while !(state.queue.is_empty() && state.running == 0) {
            state = self
                .shared
                .changed
                .wait(state)
                .expect("farm state lock poisoned");
        }
    }

    /// Blocks until the fleet is paused with no job executing — the
    /// rendezvous for [`FarmConfig::pause_on_fault`] breakpoints.
    pub fn wait_paused(&self) {
        let mut state = self.lock();
        while !(state.paused && state.running == 0) {
            state = self
                .shared
                .changed
                .wait(state)
                .expect("farm state lock poisoned");
        }
    }

    /// Stops accepting submissions, winds down the workers (running jobs
    /// finish their current execution; queued jobs stay queued) and joins
    /// the fleet.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.shared.changed.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn lock(&self) -> MutexGuard<'_, FarmState> {
        self.shared.state.lock().expect("farm state lock poisoned")
    }
}

impl Drop for Farm {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Everything a worker needs to execute one claimed job outside the lock.
struct Claim {
    id: JobId,
    protocol: Protocol,
    config: WorkloadConfig,
    checkpoint: Option<Checkpoint>,
    fault: Option<FaultPlan>,
    announce: bool,
}

/// The per-job [`RunControl`]: polls the job's cooperative-cancel flag at
/// every phase boundary and streams phase telemetry into the farm's
/// progress sink.
struct WorkerControl {
    shared: Arc<FarmShared>,
    id: JobId,
}

impl RunControl for WorkerControl {
    fn should_stop(&self, _next_phase: usize) -> bool {
        let state = self.shared.state.lock().expect("farm state lock poisoned");
        state
            .jobs
            .get(&self.id)
            .is_some_and(|job| job.cancel_requested)
    }

    fn on_phase_started(&self, _index: usize, name: &str) {
        let mut state = self.shared.state.lock().expect("farm state lock poisoned");
        if let Some(job) = state.jobs.get_mut(&self.id) {
            job.record.status = JobStatus::Running { phase: name.into() };
        }
    }

    fn on_phase_finished(&self, index: usize, report: &labchip::workload::PhaseReport) {
        {
            let mut state = self.shared.state.lock().expect("farm state lock poisoned");
            if let Some(job) = state.jobs.get_mut(&self.id) {
                job.record.phases_completed = index + 1;
            }
        }
        self.shared.progress.on_event(&ProgressEvent::Row {
            scenario: self.id.to_string(),
            index,
            summary: report.phase.clone(),
        });
    }
}

fn worker_loop(shared: &Arc<FarmShared>) {
    let pool = (shared.planner_threads > 0).then(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(shared.planner_threads)
            .build()
            .expect("building the worker's planner pool")
    });
    while let Some(claim) = claim_next(shared) {
        if claim.announce {
            shared.progress.on_event(&ProgressEvent::ScenarioStarted {
                scenario: claim.id.to_string(),
            });
        }
        let driver = BatchDriver::with_envelope(claim.config, shared.envelope);
        let runner = driver.runner();
        let control = WorkerControl {
            shared: Arc::clone(shared),
            id: claim.id,
        };
        let started = Instant::now();
        let run = || execute_claim(&runner, &claim, &control);
        let result = match &pool {
            Some(pool) => pool.install(run),
            None => run(),
        };
        settle(shared, claim, result, ms_since(started));
    }
}

fn execute_claim(
    runner: &ProtocolRunner<'_>,
    claim: &Claim,
    control: &WorkerControl,
) -> Result<(labchip::workload::ProtocolOutcome, Journal), Box<StoppedRun>> {
    match &claim.checkpoint {
        Some(checkpoint) => runner.resume_controlled(checkpoint, claim.fault, control),
        None => runner.run_controlled(&claim.protocol, 0, claim.fault, control),
    }
}

/// Blocks until a job can be claimed; `None` means the farm is shutting
/// down. The claim marks the job `Running` and moves its execution-side
/// baggage (checkpoint, armed fault) out of the shared state.
fn claim_next(shared: &Arc<FarmShared>) -> Option<Claim> {
    let mut state = shared.state.lock().expect("farm state lock poisoned");
    loop {
        if state.shutdown {
            return None;
        }
        if !state.paused {
            if let Some((_tenant, id)) = state.queue.pop() {
                state.running += 1;
                let job = state
                    .jobs
                    .get_mut(&id)
                    .expect("queued job ids always have a record");
                job.record.queue_ms += ms_since(job.enqueued_at);
                let announce = !job.announced;
                job.announced = true;
                let checkpoint = job.checkpoint.take();
                if checkpoint.is_some() {
                    job.record.resumes += 1;
                }
                let next = checkpoint.as_ref().map_or(0, |cp| cp.next_phase);
                let phase = job
                    .record
                    .protocol
                    .phases
                    .get(next)
                    .map_or_else(|| "start".to_owned(), |spec| spec.build().name().to_owned());
                job.record.status = JobStatus::Running { phase };
                let claim = Claim {
                    id,
                    protocol: job.record.protocol.clone(),
                    config: job.record.config,
                    checkpoint,
                    fault: job.fault.take(),
                    announce,
                };
                shared.changed.notify_all();
                return Some(claim);
            }
        }
        state = shared
            .changed
            .wait(state)
            .expect("farm state lock poisoned");
    }
}

/// Applies one execution's outcome back to the shared state: `Done` /
/// `Cancelled` / `Failed`, or re-queue with checkpoint after an
/// injected-fault kill.
fn settle(
    shared: &Arc<FarmShared>,
    claim: Claim,
    result: Result<(labchip::workload::ProtocolOutcome, Journal), Box<StoppedRun>>,
    run_ms: f64,
) {
    let mut finished: Option<(usize, f64)> = None;
    let mut state = shared.state.lock().expect("farm state lock poisoned");
    let mut requeue: Option<String> = None;
    {
        let job = state
            .jobs
            .get_mut(&claim.id)
            .expect("claimed job ids always have a record");
        job.record.run_ms += run_ms;
        match result {
            Ok((outcome, journal)) => {
                job.committed.extend(journal.events().iter().cloned());
                job.record.journal_events = job.committed.len();
                job.record.phases_completed = outcome.phases.len();
                job.record.state_hash = Some(format!("{:#018x}", outcome.state.state_hash()));
                job.record.status = JobStatus::Done;
                job.record.detail = format!(
                    "completed {} phases ({} journal events)",
                    outcome.phases.len(),
                    job.record.journal_events
                );
            }
            Err(stopped) => {
                let StoppedRun {
                    checkpoint,
                    journal,
                    cause,
                } = *stopped;
                job.committed.extend(
                    journal
                        .truncated(checkpoint.journal_offset)
                        .events()
                        .iter()
                        .cloned(),
                );
                job.record.journal_events = job.committed.len();
                job.record.phases_completed = checkpoint.completed.len();
                match cause {
                    StopCause::Cancelled { next_phase } => {
                        job.record.status = JobStatus::Cancelled;
                        job.record.detail =
                            format!("cancelled at the boundary of phase {next_phase}");
                        job.checkpoint = Some(checkpoint);
                    }
                    StopCause::Phase(PhaseError::Interrupted { phase }) => {
                        job.record.status = JobStatus::Queued;
                        job.record.detail = format!(
                            "killed by injected fault in `{phase}`; re-queued with checkpoint"
                        );
                        job.checkpoint = Some(checkpoint);
                        job.enqueued_at = Instant::now();
                        requeue = Some(job.record.tenant.clone());
                    }
                    StopCause::Phase(PhaseError::Invariant { phase, reason }) => {
                        job.record.status = JobStatus::Failed {
                            error: format!("{phase}: {reason}"),
                        };
                        job.record.detail = "invariant violation".into();
                    }
                }
            }
        }
        if job.record.status.is_terminal() {
            finished = Some((job.record.phases_completed, job.record.run_ms));
        }
    }
    if let Some(tenant) = requeue {
        state.queue.push_front(&tenant, claim.id);
        if shared.pause_on_fault {
            state.paused = true;
        }
    }
    drop(state);
    if let Some((rows, wall_ms)) = finished {
        shared.progress.on_event(&ProgressEvent::ScenarioFinished {
            scenario: claim.id.to_string(),
            rows,
            wall_ms,
        });
    }
    // The worker only counts as idle once the job's terminal telemetry is
    // out — `wait_idle` returning must imply every `ScenarioFinished` was
    // delivered.
    shared
        .state
        .lock()
        .expect("farm state lock poisoned")
        .running -= 1;
    shared.changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip::scenario::CollectingProgress;
    use labchip_units::GridDims;

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig {
            array_side: 16,
            seed: 7,
            ..WorkloadConfig::default()
        }
    }

    fn small_protocol(config: &WorkloadConfig, particles: usize) -> Protocol {
        Protocol::canned_cycle(
            GridDims::square(config.array_side),
            config.min_separation,
            particles,
        )
    }

    /// The uninterrupted baseline a farm job must reproduce: same
    /// protocol, same effective config, cycle 0.
    fn baseline(config: &WorkloadConfig, protocol: &Protocol) -> (u64, usize) {
        let driver = BatchDriver::new(*config);
        let (outcome, journal) = driver.runner().run_journaled(protocol, 0);
        (outcome.state.state_hash(), journal.len())
    }

    #[test]
    fn jobs_complete_and_match_the_uninterrupted_baseline() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 10);
        let farm = Farm::new(FarmConfig {
            workers: 3,
            workload,
            ..FarmConfig::default()
        });
        let ids: Vec<JobId> = (0..6)
            .map(|i| {
                farm.submit(
                    protocol.clone(),
                    JobSpec::tenant(if i % 2 == 0 { "alice" } else { "bob" }),
                )
                .expect("queue has room")
            })
            .collect();
        farm.wait_idle();
        let (hash, events) = baseline(&workload, &protocol);
        let expected = format!("{hash:#018x}");
        for id in ids {
            let record = farm.record(id).expect("job exists");
            assert_eq!(record.status, JobStatus::Done, "{}: {}", id, record.detail);
            assert_eq!(record.state_hash.as_deref(), Some(expected.as_str()));
            assert_eq!(record.journal_events, events);
            assert_eq!(record.phases_completed, protocol.len());
        }
    }

    #[test]
    fn queue_full_rejects_and_cancel_before_start_removes() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 6);
        let farm = Farm::new(FarmConfig {
            workers: 1,
            queue_depth: 2,
            workload,
            start_paused: true,
            ..FarmConfig::default()
        });
        let first = farm.submit(protocol.clone(), JobSpec::tenant("a")).unwrap();
        let second = farm.submit(protocol.clone(), JobSpec::tenant("b")).unwrap();
        let rejected = farm.submit(protocol.clone(), JobSpec::tenant("a"));
        assert!(matches!(rejected, Err(SubmitError::Rejected(_))));
        // Cancel one queued job: it leaves the queue without running...
        assert!(farm.cancel(first));
        assert_eq!(farm.status(first), Some(JobStatus::Cancelled));
        assert_eq!(farm.record(first).unwrap().phases_completed, 0);
        // ...which re-opens a queue slot.
        let third = farm.submit(protocol, JobSpec::tenant("a")).unwrap();
        farm.start();
        farm.wait_idle();
        assert_eq!(farm.status(second), Some(JobStatus::Done));
        assert_eq!(farm.status(third), Some(JobStatus::Done));
        // Cancelling a terminal job is a no-op.
        assert!(!farm.cancel(second));
    }

    #[test]
    fn fault_kill_requeues_then_resumes_bit_identically() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 12);
        let (hash, events) = baseline(&workload, &protocol);
        let farm = Farm::new(FarmConfig {
            workers: 1,
            workload,
            pause_on_fault: true,
            ..FarmConfig::default()
        });
        let kill = (events as u64) / 2;
        let id = farm
            .submit(
                protocol,
                JobSpec::tenant("chaos").with_fault(FaultPlan::after(kill)),
            )
            .unwrap();
        // The injected kill trips mid-run; pause_on_fault holds the fleet
        // so the re-queued checkpointed job is observable.
        farm.wait_paused();
        let record = farm.record(id).expect("job exists");
        assert_eq!(record.status, JobStatus::Queued, "{}", record.detail);
        assert!(record.journal_events < events);
        // Resume: the job must finish with the uninterrupted hash and the
        // accumulated journal must be the uninterrupted journal.
        farm.start();
        farm.wait_idle();
        let record = farm.record(id).expect("job exists");
        assert_eq!(record.status, JobStatus::Done, "{}", record.detail);
        assert_eq!(record.resumes, 1);
        assert_eq!(record.state_hash, Some(format!("{hash:#018x}")));
        assert_eq!(record.journal_events, events);
        assert_eq!(farm.accumulated_journal(id).unwrap().len(), events);
    }

    #[test]
    fn cancel_of_a_checkpointed_requeued_job_sticks() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 12);
        let (_, events) = baseline(&workload, &protocol);
        let farm = Farm::new(FarmConfig {
            workers: 1,
            workload,
            pause_on_fault: true,
            ..FarmConfig::default()
        });
        let id = farm
            .submit(
                protocol,
                JobSpec::tenant("chaos").with_fault(FaultPlan::after((events as u64) / 2)),
            )
            .unwrap();
        farm.wait_paused();
        assert!(farm.cancel(id));
        farm.start();
        farm.wait_idle();
        let record = farm.record(id).expect("job exists");
        assert_eq!(record.status, JobStatus::Cancelled);
        assert!(record.detail.contains("checkpoint"), "{}", record.detail);
    }

    #[test]
    fn history_filters_and_progress_streams_per_job() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 8);
        let progress = Arc::new(CollectingProgress::new());
        let farm = Farm::with_progress(
            FarmConfig {
                workers: 2,
                workload,
                ..FarmConfig::default()
            },
            Arc::clone(&progress) as Arc<dyn Progress>,
        );
        let a = farm.submit(protocol.clone(), JobSpec::tenant("a")).unwrap();
        let b = farm.submit(protocol.clone(), JobSpec::tenant("b")).unwrap();
        farm.wait_idle();
        let all = farm.history(&HistoryFilter::all(), 0);
        assert_eq!(all.len(), 2);
        // Most recent submission first.
        assert_eq!(all[0].id, b);
        assert_eq!(all[1].id, a);
        let only_a = farm.history(
            &HistoryFilter {
                tenant: Some("a".into()),
                terminal_only: true,
            },
            0,
        );
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a[0].id, a);
        assert_eq!(farm.history(&HistoryFilter::all(), 1).len(), 1);
        // Each job streamed started → rows → finished under its own key.
        for id in [a, b] {
            let events = progress.events_for(&id.to_string());
            assert!(matches!(
                events.first(),
                Some(ProgressEvent::ScenarioStarted { .. })
            ));
            assert!(matches!(
                events.last(),
                Some(ProgressEvent::ScenarioFinished { .. })
            ));
            let rows = events
                .iter()
                .filter(|event| matches!(event, ProgressEvent::Row { .. }))
                .count();
            assert_eq!(rows, protocol.len());
        }
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let workload = small_workload();
        let protocol = small_protocol(&workload, 4);
        let farm = Farm::new(FarmConfig {
            workers: 1,
            workload,
            ..FarmConfig::default()
        });
        farm.shutdown();
        assert!(matches!(
            farm.submit(protocol, JobSpec::default()),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
