//! A sharded chip as a farm job group: one worker per shard, barrier
//! rendezvous at phase-window boundaries, whole-group checkpoint/resume.
//!
//! The fleet layer ([`labchip_manipulation::fleet`]) decomposes one
//! logical array into per-shard [`ChipState`]s and journals every shard's
//! events — including the typed cross-shard handoffs — through the same
//! choke points the monolithic chip uses. This module executes that
//! decomposition the way the farm executes everything else: as a group of
//! workers folding event streams.
//!
//! ## Execution model
//!
//! [`ShardGroup::plan`] runs the sharded protocol once on the coordinator
//! (the [`ProtocolRunner::run_sharded`](labchip::workload::ProtocolRunner::run_sharded)
//! entry point) and keeps the per-shard journals, split into one segment
//! per protocol phase at the broadcast phase markers. [`ShardGroup::run`]
//! then spawns **one worker thread per shard**; each worker folds its
//! shard's segments through the shared
//! [`apply_event`] replay step into a replica
//! shard state, and all workers rendezvous on a [`Barrier`] at every
//! phase boundary — no shard starts phase `k + 1` until every shard has
//! finished phase `k`, mirroring how a physical multi-chip fleet must
//! synchronise before particles cross chip edges.
//!
//! ## Live planning
//!
//! With [`ShardGroup::with_live_planning`] (enabled automatically by
//! [`ShardGroup::plan`] when
//! [`WorkloadConfig::live_planning`](labchip::workload::WorkloadConfig)
//! is set) every worker additionally *owns its router window end to
//! end*: it carries a private [`IncrementalRouter`] +
//! [`RouterCache`], and at every phase boundary it (a) announces the
//! cross-shard handoffs it just folded to their destination shards over
//! typed [`mpsc`] channels ([`GroupHandoff`] messages, sent sorted by
//! particle id), (b) drains its own channel after the barrier and
//! retires the announcements its folded imports confirm, and (c) plans
//! the *next* segment's goal map live — residents toward the upcoming
//! [`Event::PlanReplaced`] sites — before folding it. The planning is
//! advisory (the replica fold alone determines state), so every
//! bit-identity guarantee of the journal path is preserved while the
//! routing work itself finally runs one-window-per-core.
//!
//! ## Kill and resume
//!
//! [`ShardGroup::run_killed`] kills **any one** shard worker at a chosen
//! boundary. Because the barrier makes boundaries group-wide, the whole
//! group stops there in a consistent state, captured as a
//! JSON-serialisable [`GroupCheckpoint`] (boundary index + per-shard
//! snapshots + per-shard in-flight handoff announcements).
//! [`ShardGroup::resume`] restores every shard from the checkpoint and
//! folds the remaining segments; the final per-shard hashes are
//! **bit-identical** to an uninterrupted group run — the E16
//! group-recovery guarantee, extending the per-job guarantee of E14/E15
//! to a gang of coupled workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Barrier};

use labchip::workload::{BatchDriver, Protocol, WorkloadConfig};
use labchip_manipulation::cage::ParticleId;
use labchip_manipulation::fleet::{FleetOutcome, FleetStats, FleetTopology, ShardedState};
use labchip_manipulation::journal::{apply_event, Event, Journal};
use labchip_manipulation::routing::{RoutingProblem, RoutingRequest};
use labchip_manipulation::sharding::{CacheStats, IncrementalRouter, RouterCache};
use labchip_manipulation::state::{ChipState, ChipStateSnapshot};
use labchip_units::{GridCoord, GridDims};
use serde::{Deserialize, Serialize};

/// Kill one shard worker of a group at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupKill {
    /// Which shard's worker dies.
    pub shard: usize,
    /// The boundary it dies at: the worker folds this many phase segments
    /// and exits at the rendezvous. Must be in `1..segment_count` — a
    /// worker cannot die before the first barrier or after the last.
    pub boundary: usize,
}

/// One live-planning seam announcement: "particle `id` crossed from
/// `from_shard` into `to_shard`". Workers send these over the group's
/// handoff channels (sorted by particle id) when they fold a
/// [`Event::HandoffExported`]; the destination worker retires the
/// announcement when it folds the matching
/// [`Event::HandoffImported`]. Announcements still unretired at a
/// boundary are the *in-flight* queue the checkpoint snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupHandoff {
    /// The particle crossing the seam.
    pub id: ParticleId,
    /// Shard the particle left.
    pub from_shard: usize,
    /// Shard the particle enters (= the channel the message rides).
    pub to_shard: usize,
}

/// A consistent whole-group resume point: every shard's state at one
/// phase boundary. JSON-serialisable like the per-job
/// [`Checkpoint`](labchip::workload::Checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCheckpoint {
    /// Index of the next phase segment every worker folds on resume.
    pub next_segment: usize,
    /// Per-shard replica states at the boundary.
    pub shards: Vec<ChipStateSnapshot>,
    /// Per-shard in-flight handoff announcements (delivered but not yet
    /// retired by a folded import) at the boundary, sorted. Empty for
    /// groups running without live planning.
    pub in_flight: Vec<Vec<GroupHandoff>>,
}

impl GroupCheckpoint {
    /// Serializes the group checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self)
    }

    /// Parses a group checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// The result of a (possibly resumed) group run: the replica shard states
/// and how many phase segments every worker folded.
#[derive(Debug)]
pub struct GroupOutcome {
    /// Final replica state of every shard, in shard order.
    pub states: Vec<ChipState>,
    /// Phase segments each worker folded (group-wide, by barrier).
    pub segments_folded: usize,
    /// Per-shard handoff announcements still in flight when the group
    /// stopped (always empty without live planning; usually empty with
    /// it, since export and import halves land in the same segment).
    pub in_flight: Vec<Vec<GroupHandoff>>,
    /// Advisory lookahead window problems the live workers solved at
    /// phase boundaries (0 without live planning).
    pub live_windows: usize,
    /// [`GroupHandoff`] messages exchanged over the live workers' seam
    /// channels (0 without live planning).
    pub seam_messages: usize,
}

impl GroupOutcome {
    /// Per-shard state hashes, in shard order.
    pub fn state_hashes(&self) -> Vec<u64> {
        self.states.iter().map(ChipState::state_hash).collect()
    }
}

/// A planned sharded run held as a farm job group: per-shard journals
/// split at phase boundaries, ready to execute with one worker per shard.
#[derive(Debug)]
pub struct ShardGroup {
    outcome: FleetOutcome,
    /// Per shard: segment bounds into the journal, `segments + 1` long.
    bounds: Vec<Vec<usize>>,
    /// Phase segments between barriers (equal across shards: markers are
    /// broadcast).
    segments: usize,
    /// State hash of the coordinator's global (monolithic-equivalent)
    /// final state.
    global_hash: u64,
    /// When set, workers run the live planning protocol (seam channels +
    /// boundary lookahead windows) with this router.
    live: Option<IncrementalRouter>,
}

impl ShardGroup {
    /// Runs `protocol` sharded over a `grid_cols x grid_rows` fleet on
    /// the coordinator and captures the per-shard journals as a job
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if the grid does not fit the configured array (see
    /// [`FleetTopology::new`]) or a shard journal carries phase markers
    /// inconsistent with its siblings — both coordinator bugs, not
    /// runtime conditions.
    pub fn plan(
        config: &WorkloadConfig,
        protocol: &Protocol,
        grid_cols: u32,
        grid_rows: u32,
    ) -> Self {
        let driver = BatchDriver::new(*config);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let fleet = ShardedState::new(FleetTopology::new(dims, sep, grid_cols, grid_rows));
        let (outcome, _journal, fleet) = driver.runner().run_sharded(protocol, 0, fleet);
        let global_hash = outcome.state.state_hash();
        let group = Self::from_outcome(fleet.into_outcome(), global_hash);
        if config.live_planning {
            group.with_live_planning(IncrementalRouter::new(config.shards))
        } else {
            group
        }
    }

    /// Wraps an already-executed sharded run as a job group —
    /// [`ShardGroup::plan`] without re-running the coordinator, for
    /// callers (like scenario E16) that already hold the
    /// [`FleetOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the shard journals carry inconsistent phase boundaries.
    pub fn from_outcome(outcome: FleetOutcome, global_hash: u64) -> Self {
        let bounds: Vec<Vec<usize>> = outcome.journals.iter().map(segment_bounds).collect();
        let segments = bounds[0].len() - 1;
        assert!(
            bounds.iter().all(|b| b.len() == segments + 1),
            "phase markers are broadcast, so every shard must see the same boundaries"
        );
        Self {
            outcome,
            bounds,
            segments,
            global_hash,
            live: None,
        }
    }

    /// Enables the live planning protocol: every worker gets a private
    /// copy of `router` (plus its own [`RouterCache`]), exchanges
    /// [`GroupHandoff`] seam messages at every boundary, and plans the
    /// next segment's goal map before folding it.
    #[must_use]
    pub fn with_live_planning(mut self, router: IncrementalRouter) -> Self {
        self.live = Some(router);
        self
    }

    /// `true` when the group runs the live planning protocol.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Shards in the group (= workers spawned per run).
    pub fn shard_count(&self) -> usize {
        self.outcome.states.len()
    }

    /// Phase segments between barriers.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Handoff and planning counters of the coordinator's sharded run.
    pub fn stats(&self) -> FleetStats {
        self.outcome.stats
    }

    /// Per-shard warm-start cache statistics of the coordinator's run.
    pub fn cache_stats(&self) -> &[CacheStats] {
        &self.outcome.cache_stats
    }

    /// Journal length of every shard — the per-shard work the group
    /// distributes, and the load-imbalance signal E16 reports.
    pub fn journal_lengths(&self) -> Vec<usize> {
        self.outcome.journals.iter().map(Journal::len).collect()
    }

    /// State hash of every *live* shard from the coordinator's run — what
    /// a group run's replicas must reproduce.
    pub fn expected_hashes(&self) -> Vec<u64> {
        self.outcome
            .states
            .iter()
            .map(ChipState::state_hash)
            .collect()
    }

    /// State hash of the coordinator's global final state (byte-identical
    /// to a monolithic run of the same protocol and seed).
    pub fn global_hash(&self) -> u64 {
        self.global_hash
    }

    /// The fleet outcome backing the group (journals, states, topology).
    pub fn fleet(&self) -> &FleetOutcome {
        &self.outcome
    }

    /// Executes the group uninterrupted: every worker folds all segments.
    pub fn run(&self) -> GroupOutcome {
        self.execute(0, None, None, None)
    }

    /// Executes the group with one shard worker killed at a boundary.
    /// The barrier stops the *whole group* there; the returned
    /// [`GroupCheckpoint`] is the consistent resume point.
    ///
    /// # Panics
    ///
    /// Panics if `kill.shard` or `kill.boundary` is out of range.
    pub fn run_killed(&self, kill: GroupKill) -> (GroupOutcome, GroupCheckpoint) {
        assert!(kill.shard < self.shard_count(), "kill.shard out of range");
        assert!(
            kill.boundary >= 1 && kill.boundary < self.segments,
            "kill.boundary must be an interior phase boundary"
        );
        let outcome = self.execute(0, None, None, Some(kill));
        let checkpoint = GroupCheckpoint {
            next_segment: outcome.segments_folded,
            shards: outcome.states.iter().map(ChipState::snapshot).collect(),
            in_flight: outcome.in_flight.clone(),
        };
        (outcome, checkpoint)
    }

    /// Resumes a stopped group from its checkpoint: replacement workers
    /// restore every shard snapshot and fold the remaining segments.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shard count or boundary does not match
    /// this group.
    pub fn resume(&self, checkpoint: &GroupCheckpoint) -> GroupOutcome {
        assert_eq!(
            checkpoint.shards.len(),
            self.shard_count(),
            "checkpoint shard count must match the group"
        );
        assert!(
            checkpoint.next_segment <= self.segments,
            "checkpoint boundary out of range"
        );
        assert!(
            checkpoint.in_flight.is_empty() || checkpoint.in_flight.len() == self.shard_count(),
            "checkpoint in-flight queue count must match the group"
        );
        let in_flight = (!checkpoint.in_flight.is_empty()).then_some(&checkpoint.in_flight[..]);
        self.execute(
            checkpoint.next_segment,
            Some(&checkpoint.shards),
            in_flight,
            None,
        )
    }

    /// The worker gang: one thread per shard folding segments
    /// `start..`, rendezvousing on a barrier at every boundary, all
    /// stopping together at the earliest armed kill. Live groups
    /// additionally exchange [`GroupHandoff`] messages at every boundary
    /// and plan the next segment's goal map before folding it.
    fn execute(
        &self,
        start: usize,
        snapshots: Option<&[ChipStateSnapshot]>,
        in_flight: Option<&[Vec<GroupHandoff>]>,
        kill: Option<GroupKill>,
    ) -> GroupOutcome {
        let workers = self.shard_count();
        let barrier = Barrier::new(workers);
        // usize::MAX = no stop armed; the killed worker stores its
        // boundary before the rendezvous, so every worker observes it
        // after the same barrier generation and exits in lockstep.
        let stop_after = AtomicUsize::new(usize::MAX);
        let sep = self.outcome.topology.min_separation().max(1);
        let live = self.live;
        let segments = self.segments;
        // One seam channel per shard. Senders are cloned into every
        // worker; a boundary-k message is always sent before the
        // boundary-k barrier and drained right after it, so the
        // rendezvous doubles as the delivery fence.
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..workers)
            .map(|_| mpsc::channel::<GroupHandoff>())
            .unzip();
        let mut rx_slots: Vec<Option<mpsc::Receiver<GroupHandoff>>> =
            rxs.into_iter().map(Some).collect();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    let barrier = &barrier;
                    let stop_after = &stop_after;
                    let topology = &self.outcome.topology;
                    let events = self.outcome.journals[shard].events();
                    let bounds = &self.bounds[shard];
                    let txs = txs.clone();
                    let rx = rx_slots[shard].take().expect("one receiver per worker");
                    let mut state = match snapshots {
                        Some(snapshots) => ChipState::from_snapshot(snapshots[shard].clone()),
                        None => ChipState::with_separation(topology.local_dims(shard), sep),
                    };
                    let mut inbox: Vec<GroupHandoff> = in_flight
                        .map(|queues| queues[shard].clone())
                        .unwrap_or_default();
                    scope.spawn(move || {
                        let mut cache = RouterCache::new();
                        let mut live_windows = 0usize;
                        let mut seam_messages = 0usize;
                        for seg in start..segments {
                            let mut outbox: Vec<GroupHandoff> = Vec::new();
                            let mut retired: Vec<GroupHandoff> = Vec::new();
                            for (offset, event) in
                                events[bounds[seg]..bounds[seg + 1]].iter().enumerate()
                            {
                                if live.is_some() {
                                    match *event {
                                        Event::HandoffExported { id, to_shard, .. } => {
                                            outbox.push(GroupHandoff {
                                                id,
                                                from_shard: shard,
                                                to_shard,
                                            });
                                        }
                                        Event::HandoffImported { id, from_shard, .. } => {
                                            retired.push(GroupHandoff {
                                                id,
                                                from_shard,
                                                to_shard: shard,
                                            });
                                        }
                                        _ => {}
                                    }
                                }
                                apply_event(&mut state, event, bounds[seg] + offset)
                                    .expect("shard journal segments replay cleanly");
                            }
                            if live.is_some() {
                                // Deterministic wire order: sorted by id.
                                outbox.sort_unstable();
                                for msg in &outbox {
                                    txs[msg.to_shard]
                                        .send(*msg)
                                        .expect("seam receivers outlive the send");
                                    seam_messages += 1;
                                }
                            }
                            let folded = seg + 1;
                            if kill.is_some_and(|k| k.shard == shard && k.boundary == folded) {
                                stop_after.store(folded, Ordering::SeqCst);
                            }
                            barrier.wait();
                            let stopping = folded >= stop_after.load(Ordering::SeqCst);
                            if let Some(router) = live {
                                // Drain this boundary's announcements (the
                                // barrier fences delivery), then retire the
                                // ones our folded imports confirmed. What
                                // remains is in flight — it survives kills
                                // inside the checkpoint.
                                inbox.extend(rx.try_iter());
                                inbox.sort_unstable();
                                for done in &retired {
                                    if let Some(pos) = inbox.iter().position(|msg| msg == done) {
                                        inbox.remove(pos);
                                    }
                                }
                                if !stopping && folded < segments {
                                    live_windows += plan_next_window(
                                        &state,
                                        &events[bounds[folded]..bounds[folded + 1]],
                                        topology.local_dims(shard),
                                        sep,
                                        &router,
                                        &mut cache,
                                    );
                                }
                            }
                            if stopping {
                                break;
                            }
                        }
                        (state, inbox, live_windows, seam_messages)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        });
        let stopped = stop_after.load(Ordering::SeqCst);
        let mut states = Vec::with_capacity(workers);
        let mut queues = Vec::with_capacity(workers);
        let mut live_windows = 0;
        let mut seam_messages = 0;
        for (state, inbox, windows, messages) in results {
            states.push(state);
            queues.push(inbox);
            live_windows += windows;
            seam_messages += messages;
        }
        GroupOutcome {
            states,
            segments_folded: if stopped == usize::MAX {
                self.segments
            } else {
                stopped
            },
            in_flight: queues,
            live_windows,
            seam_messages,
        }
    }
}

/// One advisory live planning window: route the replica's residents
/// toward the goal map the *next* segment will install (its first
/// [`Event::PlanReplaced`]), pairing residents ascending by id with goal
/// sites sorted by `(y, x)` — both orders deterministic, so every run
/// plans the identical problem. Returns 1 if a window problem was
/// submitted to the router (solved or skipped), 0 if the segment carries
/// no plan or the shard is empty.
fn plan_next_window(
    state: &ChipState,
    next_segment: &[Event],
    dims: GridDims,
    sep: u32,
    router: &IncrementalRouter,
    cache: &mut RouterCache,
) -> usize {
    let goals = next_segment.iter().find_map(|event| match event {
        Event::PlanReplaced { goals } => Some(goals.clone()),
        _ => None,
    });
    let Some(mut sites) = goals else { return 0 };
    let members: Vec<(ParticleId, GridCoord)> = state.grid().iter_particles().collect();
    if members.is_empty() || sites.is_empty() {
        return 0;
    }
    sites.sort_unstable_by_key(|site| (site.y, site.x));
    let mut any_goal = false;
    let requests: Vec<RoutingRequest> = members
        .iter()
        .enumerate()
        .map(|(slot, &(id, start))| {
            let goal = sites.get(slot).copied().unwrap_or(start);
            if goal != start {
                any_goal = true;
            }
            RoutingRequest { id, start, goal }
        })
        .collect();
    if !any_goal {
        return 0;
    }
    let mut problem = RoutingProblem::new(dims, requests);
    problem.min_separation = sep;
    problem.max_steps = router.shards.window.max(1) as usize;
    // Advisory: the outcome (or failure) is dropped; only the worker's
    // cache warms. The replica state is driven by the journal fold alone.
    let _ = router.solve_cached(&problem, cache);
    1
}

/// Splits a shard journal into per-phase segments at its phase-finished /
/// phase-aborted markers: `bounds[k]..bounds[k + 1]` is phase `k`'s event
/// run, marker included. Any tail after the last marker folds into the
/// final segment.
fn segment_bounds(journal: &Journal) -> Vec<usize> {
    let mut bounds = vec![0];
    for (index, event) in journal.events().iter().enumerate() {
        if matches!(
            event,
            Event::PhaseFinished { .. } | Event::PhaseAborted { .. }
        ) {
            bounds.push(index + 1);
        }
    }
    if *bounds.last().expect("bounds start non-empty") != journal.len() {
        *bounds.last_mut().expect("bounds start non-empty") = journal.len();
    }
    if bounds.len() == 1 {
        // A journal with no markers at all is one segment.
        bounds.push(journal.len());
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::GridDims;

    fn group_with(grid: (u32, u32), live_planning: bool) -> ShardGroup {
        let config = WorkloadConfig {
            array_side: 24,
            seed: 11,
            noise_scale: 1.0,
            detection_frames: 2,
            live_planning,
            ..WorkloadConfig::default()
        };
        let protocol = Protocol::canned_cycle(
            GridDims::square(config.array_side),
            config.min_separation,
            16,
        );
        ShardGroup::plan(&config, &protocol, grid.0, grid.1)
    }

    fn group(grid: (u32, u32)) -> ShardGroup {
        group_with(grid, false)
    }

    #[test]
    fn group_workers_reproduce_every_live_shard_hash() {
        let group = group((2, 2));
        assert_eq!(group.shard_count(), 4);
        assert_eq!(group.segment_count(), 5);
        let outcome = group.run();
        assert_eq!(outcome.segments_folded, 5);
        assert_eq!(outcome.state_hashes(), group.expected_hashes());
    }

    #[test]
    fn killing_any_shard_worker_stops_the_whole_group_consistently() {
        let group = group((2, 1));
        for shard in 0..group.shard_count() {
            let (stopped, checkpoint) = group.run_killed(GroupKill { shard, boundary: 2 });
            assert_eq!(stopped.segments_folded, 2);
            assert_eq!(checkpoint.next_segment, 2);
            assert_eq!(checkpoint.shards.len(), 2);
            // The checkpoint survives its JSON round trip...
            let restored = GroupCheckpoint::from_json(&checkpoint.to_json()).expect("round trip");
            assert_eq!(restored, checkpoint);
            // ...and the resumed group lands on the uninterrupted hashes.
            let resumed = group.resume(&restored);
            assert_eq!(resumed.segments_folded, group.segment_count());
            assert_eq!(resumed.state_hashes(), group.expected_hashes());
        }
    }

    #[test]
    fn single_shard_groups_degenerate_to_one_worker() {
        let group = group((1, 1));
        assert_eq!(group.shard_count(), 1);
        assert_eq!(group.stats().exports, 0);
        let outcome = group.run();
        assert_eq!(outcome.state_hashes(), group.expected_hashes());
        assert_eq!(group.journal_lengths().len(), 1);
        // No live planning => no live work and no in-flight traffic.
        assert!(!group.is_live());
        assert_eq!(outcome.live_windows, 0);
        assert_eq!(outcome.seam_messages, 0);
        assert!(outcome.in_flight.iter().all(Vec::is_empty));
    }

    #[test]
    fn live_workers_plan_boundary_windows_and_reproduce_the_hashes() {
        let serial = group((2, 2));
        let group = group_with((2, 2), true);
        assert!(group.is_live());
        let outcome = group.run();
        // Live planning is advisory: replica hashes stay bit-identical to
        // the serial-fold group and to the coordinator's shards.
        assert_eq!(outcome.state_hashes(), group.expected_hashes());
        assert_eq!(outcome.state_hashes(), serial.run().state_hashes());
        // Every folded export rode the seam channels exactly once, and
        // every announcement was retired by its matching import.
        assert_eq!(outcome.seam_messages as u64, group.stats().exports);
        assert!(outcome.in_flight.iter().all(Vec::is_empty));
        // Workers planned lookahead windows at the phase boundaries.
        assert!(outcome.live_windows > 0, "live workers planned no windows");
    }

    #[test]
    fn live_group_checkpoints_snapshot_in_flight_queues_and_resume_cleanly() {
        let group = group_with((2, 1), true);
        let uninterrupted = group.run();
        assert_eq!(uninterrupted.state_hashes(), group.expected_hashes());
        for boundary in 1..group.segment_count() {
            let (stopped, checkpoint) = group.run_killed(GroupKill { shard: 1, boundary });
            assert_eq!(stopped.segments_folded, boundary);
            // The checkpoint carries one (possibly empty) in-flight queue
            // per shard and survives its JSON round trip.
            assert_eq!(checkpoint.in_flight.len(), group.shard_count());
            let restored = GroupCheckpoint::from_json(&checkpoint.to_json()).expect("round trip");
            assert_eq!(restored, checkpoint);
            let resumed = group.resume(&restored);
            assert_eq!(resumed.segments_folded, group.segment_count());
            assert_eq!(resumed.state_hashes(), uninterrupted.state_hashes());
        }
    }

    #[test]
    fn stale_in_flight_announcements_do_not_disturb_a_resumed_group() {
        // An announcement whose import never arrives (e.g. the export half
        // of a handoff interrupted by an abort) must ride the checkpoint
        // without affecting replica state: live planning is advisory.
        let group = group_with((2, 1), true);
        let (_, mut checkpoint) = group.run_killed(GroupKill {
            shard: 0,
            boundary: 2,
        });
        checkpoint.in_flight[1].push(GroupHandoff {
            id: ParticleId(9_999),
            from_shard: 0,
            to_shard: 1,
        });
        let restored = GroupCheckpoint::from_json(&checkpoint.to_json()).expect("round trip");
        let resumed = group.resume(&restored);
        assert_eq!(resumed.state_hashes(), group.expected_hashes());
        // The stale announcement is still in flight at the end.
        assert!(resumed.in_flight[1].contains(&GroupHandoff {
            id: ParticleId(9_999),
            from_shard: 0,
            to_shard: 1
        }));
    }
}
