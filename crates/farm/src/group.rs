//! A sharded chip as a farm job group: one worker per shard, barrier
//! rendezvous at phase-window boundaries, whole-group checkpoint/resume.
//!
//! The fleet layer ([`labchip_manipulation::fleet`]) decomposes one
//! logical array into per-shard [`ChipState`]s and journals every shard's
//! events — including the typed cross-shard handoffs — through the same
//! choke points the monolithic chip uses. This module executes that
//! decomposition the way the farm executes everything else: as a group of
//! workers folding event streams.
//!
//! ## Execution model
//!
//! [`ShardGroup::plan`] runs the sharded protocol once on the coordinator
//! (the [`ProtocolRunner::run_sharded`](labchip::workload::ProtocolRunner::run_sharded)
//! entry point) and keeps the per-shard journals, split into one segment
//! per protocol phase at the broadcast phase markers. [`ShardGroup::run`]
//! then spawns **one worker thread per shard**; each worker folds its
//! shard's segments through the shared
//! [`apply_event`] replay step into a replica
//! shard state, and all workers rendezvous on a [`Barrier`] at every
//! phase boundary — no shard starts phase `k + 1` until every shard has
//! finished phase `k`, mirroring how a physical multi-chip fleet must
//! synchronise before particles cross chip edges.
//!
//! ## Kill and resume
//!
//! [`ShardGroup::run_killed`] kills **any one** shard worker at a chosen
//! boundary. Because the barrier makes boundaries group-wide, the whole
//! group stops there in a consistent state, captured as a
//! JSON-serialisable [`GroupCheckpoint`] (boundary index + per-shard
//! snapshots). [`ShardGroup::resume`] restores every shard from the
//! checkpoint and folds the remaining segments; the final per-shard
//! hashes are **bit-identical** to an uninterrupted group run — the E16
//! group-recovery guarantee, extending the per-job guarantee of E14/E15
//! to a gang of coupled workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use labchip::workload::{BatchDriver, Protocol, WorkloadConfig};
use labchip_manipulation::fleet::{FleetOutcome, FleetStats, FleetTopology, ShardedState};
use labchip_manipulation::journal::{apply_event, Event, Journal};
use labchip_manipulation::sharding::CacheStats;
use labchip_manipulation::state::{ChipState, ChipStateSnapshot};
use labchip_units::GridDims;
use serde::{Deserialize, Serialize};

/// Kill one shard worker of a group at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupKill {
    /// Which shard's worker dies.
    pub shard: usize,
    /// The boundary it dies at: the worker folds this many phase segments
    /// and exits at the rendezvous. Must be in `1..segment_count` — a
    /// worker cannot die before the first barrier or after the last.
    pub boundary: usize,
}

/// A consistent whole-group resume point: every shard's state at one
/// phase boundary. JSON-serialisable like the per-job
/// [`Checkpoint`](labchip::workload::Checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCheckpoint {
    /// Index of the next phase segment every worker folds on resume.
    pub next_segment: usize,
    /// Per-shard replica states at the boundary.
    pub shards: Vec<ChipStateSnapshot>,
}

impl GroupCheckpoint {
    /// Serializes the group checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self)
    }

    /// Parses a group checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// The result of a (possibly resumed) group run: the replica shard states
/// and how many phase segments every worker folded.
#[derive(Debug)]
pub struct GroupOutcome {
    /// Final replica state of every shard, in shard order.
    pub states: Vec<ChipState>,
    /// Phase segments each worker folded (group-wide, by barrier).
    pub segments_folded: usize,
}

impl GroupOutcome {
    /// Per-shard state hashes, in shard order.
    pub fn state_hashes(&self) -> Vec<u64> {
        self.states.iter().map(ChipState::state_hash).collect()
    }
}

/// A planned sharded run held as a farm job group: per-shard journals
/// split at phase boundaries, ready to execute with one worker per shard.
#[derive(Debug)]
pub struct ShardGroup {
    outcome: FleetOutcome,
    /// Per shard: segment bounds into the journal, `segments + 1` long.
    bounds: Vec<Vec<usize>>,
    /// Phase segments between barriers (equal across shards: markers are
    /// broadcast).
    segments: usize,
    /// State hash of the coordinator's global (monolithic-equivalent)
    /// final state.
    global_hash: u64,
}

impl ShardGroup {
    /// Runs `protocol` sharded over a `grid_cols x grid_rows` fleet on
    /// the coordinator and captures the per-shard journals as a job
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if the grid does not fit the configured array (see
    /// [`FleetTopology::new`]) or a shard journal carries phase markers
    /// inconsistent with its siblings — both coordinator bugs, not
    /// runtime conditions.
    pub fn plan(
        config: &WorkloadConfig,
        protocol: &Protocol,
        grid_cols: u32,
        grid_rows: u32,
    ) -> Self {
        let driver = BatchDriver::new(*config);
        let dims = GridDims::square(config.array_side);
        let sep = config.min_separation.max(1);
        let fleet = ShardedState::new(FleetTopology::new(dims, sep, grid_cols, grid_rows));
        let (outcome, _journal, fleet) = driver.runner().run_sharded(protocol, 0, fleet);
        let global_hash = outcome.state.state_hash();
        Self::from_outcome(fleet.into_outcome(), global_hash)
    }

    /// Wraps an already-executed sharded run as a job group —
    /// [`ShardGroup::plan`] without re-running the coordinator, for
    /// callers (like scenario E16) that already hold the
    /// [`FleetOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the shard journals carry inconsistent phase boundaries.
    pub fn from_outcome(outcome: FleetOutcome, global_hash: u64) -> Self {
        let bounds: Vec<Vec<usize>> = outcome.journals.iter().map(segment_bounds).collect();
        let segments = bounds[0].len() - 1;
        assert!(
            bounds.iter().all(|b| b.len() == segments + 1),
            "phase markers are broadcast, so every shard must see the same boundaries"
        );
        Self {
            outcome,
            bounds,
            segments,
            global_hash,
        }
    }

    /// Shards in the group (= workers spawned per run).
    pub fn shard_count(&self) -> usize {
        self.outcome.states.len()
    }

    /// Phase segments between barriers.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// Handoff and planning counters of the coordinator's sharded run.
    pub fn stats(&self) -> FleetStats {
        self.outcome.stats
    }

    /// Per-shard warm-start cache statistics of the coordinator's run.
    pub fn cache_stats(&self) -> &[CacheStats] {
        &self.outcome.cache_stats
    }

    /// Journal length of every shard — the per-shard work the group
    /// distributes, and the load-imbalance signal E16 reports.
    pub fn journal_lengths(&self) -> Vec<usize> {
        self.outcome.journals.iter().map(Journal::len).collect()
    }

    /// State hash of every *live* shard from the coordinator's run — what
    /// a group run's replicas must reproduce.
    pub fn expected_hashes(&self) -> Vec<u64> {
        self.outcome
            .states
            .iter()
            .map(ChipState::state_hash)
            .collect()
    }

    /// State hash of the coordinator's global final state (byte-identical
    /// to a monolithic run of the same protocol and seed).
    pub fn global_hash(&self) -> u64 {
        self.global_hash
    }

    /// The fleet outcome backing the group (journals, states, topology).
    pub fn fleet(&self) -> &FleetOutcome {
        &self.outcome
    }

    /// Executes the group uninterrupted: every worker folds all segments.
    pub fn run(&self) -> GroupOutcome {
        self.execute(0, None, None)
    }

    /// Executes the group with one shard worker killed at a boundary.
    /// The barrier stops the *whole group* there; the returned
    /// [`GroupCheckpoint`] is the consistent resume point.
    ///
    /// # Panics
    ///
    /// Panics if `kill.shard` or `kill.boundary` is out of range.
    pub fn run_killed(&self, kill: GroupKill) -> (GroupOutcome, GroupCheckpoint) {
        assert!(kill.shard < self.shard_count(), "kill.shard out of range");
        assert!(
            kill.boundary >= 1 && kill.boundary < self.segments,
            "kill.boundary must be an interior phase boundary"
        );
        let outcome = self.execute(0, None, Some(kill));
        let checkpoint = GroupCheckpoint {
            next_segment: outcome.segments_folded,
            shards: outcome.states.iter().map(ChipState::snapshot).collect(),
        };
        (outcome, checkpoint)
    }

    /// Resumes a stopped group from its checkpoint: replacement workers
    /// restore every shard snapshot and fold the remaining segments.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shard count or boundary does not match
    /// this group.
    pub fn resume(&self, checkpoint: &GroupCheckpoint) -> GroupOutcome {
        assert_eq!(
            checkpoint.shards.len(),
            self.shard_count(),
            "checkpoint shard count must match the group"
        );
        assert!(
            checkpoint.next_segment <= self.segments,
            "checkpoint boundary out of range"
        );
        self.execute(checkpoint.next_segment, Some(&checkpoint.shards), None)
    }

    /// The worker gang: one thread per shard folding segments
    /// `start..`, rendezvousing on a barrier at every boundary, all
    /// stopping together at the earliest armed kill.
    fn execute(
        &self,
        start: usize,
        snapshots: Option<&[ChipStateSnapshot]>,
        kill: Option<GroupKill>,
    ) -> GroupOutcome {
        let workers = self.shard_count();
        let barrier = Barrier::new(workers);
        // usize::MAX = no stop armed; the killed worker stores its
        // boundary before the rendezvous, so every worker observes it
        // after the same barrier generation and exits in lockstep.
        let stop_after = AtomicUsize::new(usize::MAX);
        let sep = self.outcome.topology.min_separation().max(1);
        let states = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    let barrier = &barrier;
                    let stop_after = &stop_after;
                    let events = self.outcome.journals[shard].events();
                    let bounds = &self.bounds[shard];
                    let mut state = match snapshots {
                        Some(snapshots) => ChipState::from_snapshot(snapshots[shard].clone()),
                        None => {
                            ChipState::with_separation(self.outcome.topology.local_dims(shard), sep)
                        }
                    };
                    scope.spawn(move || {
                        for seg in start..self.segments {
                            for (offset, event) in
                                events[bounds[seg]..bounds[seg + 1]].iter().enumerate()
                            {
                                apply_event(&mut state, event, bounds[seg] + offset)
                                    .expect("shard journal segments replay cleanly");
                            }
                            let folded = seg + 1;
                            if kill.is_some_and(|k| k.shard == shard && k.boundary == folded) {
                                stop_after.store(folded, Ordering::SeqCst);
                            }
                            barrier.wait();
                            if folded >= stop_after.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                        state
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard worker panicked"))
                .collect::<Vec<ChipState>>()
        });
        let stopped = stop_after.load(Ordering::SeqCst);
        GroupOutcome {
            states,
            segments_folded: if stopped == usize::MAX {
                self.segments
            } else {
                stopped
            },
        }
    }
}

/// Splits a shard journal into per-phase segments at its phase-finished /
/// phase-aborted markers: `bounds[k]..bounds[k + 1]` is phase `k`'s event
/// run, marker included. Any tail after the last marker folds into the
/// final segment.
fn segment_bounds(journal: &Journal) -> Vec<usize> {
    let mut bounds = vec![0];
    for (index, event) in journal.events().iter().enumerate() {
        if matches!(
            event,
            Event::PhaseFinished { .. } | Event::PhaseAborted { .. }
        ) {
            bounds.push(index + 1);
        }
    }
    if *bounds.last().expect("bounds start non-empty") != journal.len() {
        *bounds.last_mut().expect("bounds start non-empty") = journal.len();
    }
    if bounds.len() == 1 {
        // A journal with no markers at all is one segment.
        bounds.push(journal.len());
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_units::GridDims;

    fn group(grid: (u32, u32)) -> ShardGroup {
        let config = WorkloadConfig {
            array_side: 24,
            seed: 11,
            noise_scale: 1.0,
            detection_frames: 2,
            ..WorkloadConfig::default()
        };
        let protocol = Protocol::canned_cycle(
            GridDims::square(config.array_side),
            config.min_separation,
            16,
        );
        ShardGroup::plan(&config, &protocol, grid.0, grid.1)
    }

    #[test]
    fn group_workers_reproduce_every_live_shard_hash() {
        let group = group((2, 2));
        assert_eq!(group.shard_count(), 4);
        assert_eq!(group.segment_count(), 5);
        let outcome = group.run();
        assert_eq!(outcome.segments_folded, 5);
        assert_eq!(outcome.state_hashes(), group.expected_hashes());
    }

    #[test]
    fn killing_any_shard_worker_stops_the_whole_group_consistently() {
        let group = group((2, 1));
        for shard in 0..group.shard_count() {
            let (stopped, checkpoint) = group.run_killed(GroupKill { shard, boundary: 2 });
            assert_eq!(stopped.segments_folded, 2);
            assert_eq!(checkpoint.next_segment, 2);
            assert_eq!(checkpoint.shards.len(), 2);
            // The checkpoint survives its JSON round trip...
            let restored = GroupCheckpoint::from_json(&checkpoint.to_json()).expect("round trip");
            assert_eq!(restored, checkpoint);
            // ...and the resumed group lands on the uninterrupted hashes.
            let resumed = group.resume(&restored);
            assert_eq!(resumed.segments_folded, group.segment_count());
            assert_eq!(resumed.state_hashes(), group.expected_hashes());
        }
    }

    #[test]
    fn single_shard_groups_degenerate_to_one_worker() {
        let group = group((1, 1));
        assert_eq!(group.shard_count(), 1);
        assert_eq!(group.stats().exports, 0);
        let outcome = group.run();
        assert_eq!(outcome.state_hashes(), group.expected_hashes());
        assert_eq!(group.journal_lengths().len(), 1);
    }
}
