//! Property-based tests for the manipulation crate: the router's conflict-free
//! invariant and the cage-grid separation invariant under random workloads.

use labchip_manipulation::cage::{CageGrid, ParticleId};
use labchip_manipulation::routing::{Router, RoutingProblem, RoutingRequest, RoutingStrategy};
use labchip_units::{GridCoord, GridDims};
use proptest::prelude::*;

/// Builds a routing problem from proptest-chosen slot indices: starts on a
/// period-3 lattice on the left, goals on a period-3 lattice on the right.
fn problem_from_indices(side: u32, picks: &[usize]) -> RoutingProblem {
    let dims = GridDims::square(side);
    let lattice = |x_lo: u32, x_hi: u32| -> Vec<GridCoord> {
        let mut v = Vec::new();
        let mut y = 1;
        while y < dims.rows - 1 {
            let mut x = x_lo;
            while x < x_hi {
                v.push(GridCoord::new(x, y));
                x += 3;
            }
            y += 3;
        }
        v
    };
    let starts = lattice(1, side / 3);
    let goals = lattice(2 * side / 3, side - 1);
    let n = starts.len().min(goals.len());
    let requests: Vec<RoutingRequest> = picks
        .iter()
        .enumerate()
        .map(|(i, pick)| RoutingRequest {
            id: ParticleId(i as u64),
            start: starts[pick % n],
            goal: goals[(pick * 7 + i) % n],
        })
        // Deduplicate starts and goals to keep the problem valid.
        .fold(Vec::new(), |mut acc: Vec<RoutingRequest>, r| {
            let clash = acc
                .iter()
                .any(|o| o.start.chebyshev(r.start) < 2 || o.goal.chebyshev(r.goal) < 2);
            if !clash {
                acc.push(r);
            }
            acc
        });
    RoutingProblem::new(dims, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the workload, every solution the A* router reports is
    /// conflict-free and every routed particle really ends at its goal.
    #[test]
    fn astar_solutions_are_always_conflict_free(
        side in 18u32..36,
        picks in proptest::collection::vec(0usize..1000, 1..12),
    ) {
        let problem = problem_from_indices(side, &picks);
        prop_assume!(!problem.requests.is_empty());
        prop_assert!(problem.validate().is_ok());
        let outcome = Router::new(RoutingStrategy::PrioritizedAStar).solve(&problem).unwrap();
        prop_assert!(outcome.is_conflict_free(problem.min_separation));
        for path in &outcome.paths {
            let request = problem.requests.iter().find(|r| r.id == path.id).unwrap();
            if path.positions.len() > 1 {
                prop_assert_eq!(*path.positions.last().unwrap(), request.goal);
            }
            prop_assert_eq!(path.positions[0], request.start);
            // Each step moves at most one electrode.
            for pair in path.positions.windows(2) {
                prop_assert!(pair[0].chebyshev(pair[1]) <= 1);
            }
        }
        // Accounting is consistent.
        prop_assert_eq!(
            outcome.paths.len() + outcome.unrouted.len(),
            problem.requests.len()
        );
    }

    /// The greedy baseline also never produces a conflicting plan (it may
    /// just deliver fewer particles).
    #[test]
    fn greedy_solutions_are_always_conflict_free(
        side in 18u32..36,
        picks in proptest::collection::vec(0usize..1000, 1..12),
    ) {
        let problem = problem_from_indices(side, &picks);
        prop_assume!(!problem.requests.is_empty());
        let outcome = Router::new(RoutingStrategy::Greedy).solve(&problem).unwrap();
        prop_assert!(outcome.is_conflict_free(problem.min_separation));
    }

    /// The cage grid never ends up with two particles closer than the
    /// minimum separation, no matter what sequence of placements and steps is
    /// attempted (failed operations simply leave the grid unchanged).
    #[test]
    fn cage_grid_invariant_under_random_operations(
        ops in proptest::collection::vec((0u64..6, 0u32..16, 0u32..16), 1..60),
    ) {
        let mut grid = CageGrid::new(GridDims::square(16));
        for (id, x, y) in ops {
            let coord = GridCoord::new(x, y);
            if grid.position(ParticleId(id)).is_ok() {
                let _ = grid.step(ParticleId(id), coord);
            } else {
                let _ = grid.place(ParticleId(id), coord);
            }
            // Invariant: pairwise separation always holds.
            let particles = grid.particles();
            for (i, (_, a)) in particles.iter().enumerate() {
                for (_, b) in &particles[i + 1..] {
                    prop_assert!(a.chebyshev(*b) >= grid.min_separation());
                }
            }
        }
    }
}
