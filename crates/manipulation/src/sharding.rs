//! Incremental, sharded space–time routing for full-array workloads.
//!
//! The global planner in [`crate::routing`] plans every particle against one
//! monolithic reservation table spanning the whole array and the whole
//! horizon. That is exact, but at the paper's scale — thousands of DEP cages
//! moving concurrently on a 320×320 array — a single A\* pass over a
//! `(cells × steps)` state space is both slow and needlessly serial. The
//! [`IncrementalRouter`] plans *incrementally* instead:
//!
//! * **Windows** — motion is planned `window` steps at a time; each window
//!   starts from the executed positions of the previous one, so the plan
//!   adapts as traffic develops instead of committing to a full-horizon
//!   schedule up front.
//! * **Shards** — within a window the grid is partitioned into
//!   `shard_side`-sized tiles and every shard plans its own particles with a
//!   bounded space–time A\*, in parallel across shards (rayon). Mobile
//!   particles are confined to their tile's *interior*: a margin of
//!   `min_separation / 2` cells along every internal tile boundary is
//!   off-limits, which makes two mobile particles in different shards
//!   provably unable to violate the separation rule — no cross-shard
//!   communication is needed during planning.
//! * **Cross-shard handoff** — particles cross tile boundaries because the
//!   partition is *staggered*: successive windows cycle the partition offset
//!   through four phases (`(0,0)`, `(s/2,0)`, `(0,s/2)`, `(s/2,s/2)`), so
//!   every cell is interior in at least one phase and traffic ratchets
//!   between tiles window by window.
//! * **Re-planning on conflict** — after the per-shard plans are merged the
//!   window is verified with a spatial hash; any violating particle (none
//!   are expected by construction, but frozen corner cases are cheap to
//!   guard) is demoted to wait-in-place and then re-planned serially against
//!   the merged reservation table.
//!
//! The outcome is deterministic — per-shard plans depend only on the
//! window-start state and are merged in shard order — so results are
//! bit-identical for any thread count.

use crate::cage::ParticleId;
use crate::error::ManipulationError;
use crate::routing::{for_each_zone_cell, ParticlePath, RoutingOutcome, RoutingProblem};
use labchip_units::{GridCoord, GridDims};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Sharding and windowing knobs of the [`IncrementalRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Tile edge length in electrodes (clamped so a tile interior exists).
    pub shard_side: u32,
    /// Cage steps planned per window.
    pub window: u32,
    /// Give up after this many consecutive windows with no movement (at
    /// least 4, so every stagger phase gets a chance).
    pub max_stagnant_windows: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shard_side: 32,
            window: 8,
            max_stagnant_windows: 4,
        }
    }
}

/// Bounded node expansions per windowed A\* call; searches that exhaust the
/// cap settle for the best stopping cell found so far.
const EXPANSION_CAP: usize = 2048;

/// A staggered partition of the grid into square tiles.
#[derive(Debug, Clone, Copy)]
struct Partition {
    dims: GridDims,
    side: u32,
    ox: u32,
    oy: u32,
    min_tx: u32,
    min_ty: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl Partition {
    fn new(dims: GridDims, side: u32, ox: u32, oy: u32) -> Self {
        let raw_tx = |x: u32| (x + side - ox) / side;
        let raw_ty = |y: u32| (y + side - oy) / side;
        let min_tx = raw_tx(0);
        let min_ty = raw_ty(0);
        Self {
            dims,
            side,
            ox,
            oy,
            min_tx,
            min_ty,
            tiles_x: raw_tx(dims.cols - 1) - min_tx + 1,
            tiles_y: raw_ty(dims.rows - 1) - min_ty + 1,
        }
    }

    fn tile_count(&self) -> usize {
        self.tiles_x as usize * self.tiles_y as usize
    }

    /// Compact tile index of a coordinate.
    fn tile_of(&self, c: GridCoord) -> usize {
        let tx = (c.x + self.side - self.ox) / self.side - self.min_tx;
        let ty = (c.y + self.side - self.oy) / self.side - self.min_ty;
        (ty * self.tiles_x + tx) as usize
    }

    /// Unclipped bounds of one axis of the tile containing `v`:
    /// `(lo, hi)` inclusive, possibly negative / past the edge.
    fn raw_axis_bounds(v: u32, side: u32, offset: u32) -> (i64, i64) {
        let t = ((v + side - offset) / side) as i64;
        let lo = t * side as i64 + offset as i64 - side as i64;
        (lo, lo + side as i64 - 1)
    }

    /// Clipped, inclusive bounds of the tile containing `c`.
    fn tile_bounds(&self, c: GridCoord) -> (GridCoord, GridCoord) {
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        (
            GridCoord::new(lx.max(0) as u32, ly.max(0) as u32),
            GridCoord::new(
                hx.min(self.dims.cols as i64 - 1) as u32,
                hy.min(self.dims.rows as i64 - 1) as u32,
            ),
        )
    }

    /// Whether `c` lies within `margin` cells of an *internal* tile boundary
    /// (array edges need no margin: there is no neighbouring tile there).
    fn in_margin(&self, c: GridCoord, margin: u32) -> bool {
        if margin == 0 {
            return false;
        }
        let m = margin as i64;
        let (lx, hx) = Self::raw_axis_bounds(c.x, self.side, self.ox);
        let (ly, hy) = Self::raw_axis_bounds(c.y, self.side, self.oy);
        let x = c.x as i64;
        let y = c.y as i64;
        (lx > 0 && x < lx + m)
            || (hx < self.dims.cols as i64 - 1 && x > hx - m)
            || (ly > 0 && y < ly + m)
            || (hy < self.dims.rows as i64 - 1 && y > hy - m)
    }
}

/// Counting map of blocked cells: every `add` blocks the Chebyshev-<`radius`
/// zone around a centre, and `remove` unblocks it exactly (overlapping zones
/// stay blocked until their last owner is removed).
#[derive(Debug, Default)]
struct ZoneCounter {
    counts: HashMap<GridCoord, u32>,
}

impl ZoneCounter {
    fn add(&mut self, center: GridCoord, radius: u32) {
        for_each_zone_cell(center, radius, |c| {
            *self.counts.entry(c).or_insert(0) += 1;
        });
    }

    fn remove(&mut self, center: GridCoord, radius: u32) {
        for_each_zone_cell(center, radius, |c| {
            if let Some(n) = self.counts.get_mut(&c) {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(&c);
                }
            }
        });
    }

    fn blocked(&self, c: GridCoord) -> bool {
        self.counts.contains_key(&c)
    }
}

/// Space–time reservations over one window (`window + 1` steps), counting
/// overlaps so paths can be removed again during repair.
#[derive(Debug)]
struct WindowReservations {
    radius: u32,
    steps: Vec<ZoneCounter>,
}

impl WindowReservations {
    fn new(window: usize, min_separation: u32) -> Self {
        Self {
            radius: min_separation,
            steps: (0..=window).map(|_| ZoneCounter::default()).collect(),
        }
    }

    fn window(&self) -> usize {
        self.steps.len() - 1
    }

    fn position_at(path: &[GridCoord], t: usize) -> GridCoord {
        path[t.min(path.len() - 1)]
    }

    fn add_path(&mut self, path: &[GridCoord]) {
        for t in 0..self.steps.len() {
            let pos = Self::position_at(path, t);
            self.steps[t].add(pos, self.radius);
        }
    }

    fn remove_path(&mut self, path: &[GridCoord]) {
        for t in 0..self.steps.len() {
            let pos = Self::position_at(path, t);
            self.steps[t].remove(pos, self.radius);
        }
    }

    fn is_free(&self, c: GridCoord, t: usize) -> bool {
        !self.steps[t.min(self.steps.len() - 1)].blocked(c)
    }

    /// Whether a particle parked at `c` from step `t` to the end of the
    /// window stays clear of every reservation.
    fn is_free_from(&self, c: GridCoord, t: usize) -> bool {
        (t..self.steps.len()).all(|step| !self.steps[step].blocked(c))
    }
}

/// Min-heap node of the windowed A\*. Ties break on `(t, y, x)` so the
/// expansion order — and therefore the plan — is fully deterministic.
#[derive(PartialEq, Eq)]
struct Open {
    f: u32,
    t: u16,
    y: u16,
    x: u16,
}

impl Ord for Open {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .f
            .cmp(&self.f)
            .then_with(|| other.t.cmp(&self.t))
            .then_with(|| other.y.cmp(&self.y))
            .then_with(|| other.x.cmp(&self.x))
    }
}

impl PartialOrd for Open {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable flat-array scratch space for the windowed A\* (visited stamps and
/// parent links indexed by `(cell, t)`), cleared in O(1) via an epoch stamp.
#[derive(Debug, Default)]
struct Scratch {
    visited: Vec<u32>,
    parent: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    fn begin(&mut self, states: usize) {
        if self.visited.len() < states {
            self.visited.resize(states, 0);
            self.parent.resize(states, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
    }
}

/// Plans the best window path for one particle: a sequence of positions
/// `[start, ...]` of length ≤ `window + 1` ending on a cell that is safe to
/// park on for the rest of the window, minimising the Manhattan distance to
/// `goal` (then arrival time). Falls back to waiting at `start`.
#[allow(clippy::too_many_arguments)]
fn window_astar(
    lo: GridCoord,
    hi: GridCoord,
    allowed: impl Fn(GridCoord) -> bool,
    start: GridCoord,
    goal: GridCoord,
    reservations: &WindowReservations,
    scratch: &mut Scratch,
    cap: usize,
) -> Vec<GridCoord> {
    let window = reservations.window();
    let bw = (hi.x - lo.x + 1) as usize;
    let bh = (hi.y - lo.y + 1) as usize;
    let idx = |c: GridCoord, t: usize| -> usize {
        (t * bh + (c.y - lo.y) as usize) * bw + (c.x - lo.x) as usize
    };
    let coord_of = |state: usize| -> (GridCoord, usize) {
        let t = state / (bw * bh);
        let rem = state % (bw * bh);
        (
            GridCoord::new(lo.x + (rem % bw) as u32, lo.y + (rem / bw) as u32),
            t,
        )
    };
    scratch.begin(bw * bh * (window + 1));

    let h = |c: GridCoord| c.manhattan(goal);
    let mut open = BinaryHeap::new();
    open.push(Open {
        f: h(start),
        t: 0,
        y: start.y as u16,
        x: start.x as u16,
    });
    scratch.visited[idx(start, 0)] = scratch.epoch;

    // Best parking spot so far: minimise (distance-to-goal, t, y, x). The
    // best spot *away from the start* is tracked separately: when no
    // distance progress is possible at all, parking on an equal-distance
    // sidestep instead of waiting is what lets two head-on particles rotate
    // around each other across successive windows.
    let mut best: Option<(u32, usize, GridCoord)> = None;
    let mut best_moving: Option<(u32, usize, GridCoord)> = None;
    fn update(slot: &mut Option<(u32, usize, GridCoord)>, key: (u32, usize, GridCoord)) {
        match slot {
            Some(existing) if *existing <= key => {}
            _ => *slot = Some(key),
        }
    }
    let consider = |c: GridCoord,
                    t: usize,
                    best: &mut Option<(u32, usize, GridCoord)>,
                    best_moving: &mut Option<(u32, usize, GridCoord)>| {
        if !reservations.is_free_from(c, t) {
            return;
        }
        let key = (h(c), t, c);
        update(best, key);
        if c != start {
            update(best_moving, key);
        }
    };
    consider(start, 0, &mut best, &mut best_moving);

    let mut expansions = 0usize;
    while let Some(Open { t, y, x, .. }) = open.pop() {
        let c = GridCoord::new(x as u32, y as u32);
        let t = t as usize;
        consider(c, t, &mut best, &mut best_moving);
        if let Some((0, bt, bc)) = best {
            if bc == c && bt == t {
                break; // reached the goal and can park there
            }
        }
        expansions += 1;
        if expansions > cap || t >= window {
            if expansions > cap {
                break;
            }
            continue;
        }
        for (dx, dy) in [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)] {
            let Some(next) = c.offset(dx, dy) else {
                continue;
            };
            if next.x < lo.x || next.x > hi.x || next.y < lo.y || next.y > hi.y {
                continue;
            }
            if !allowed(next) || !reservations.is_free(next, t + 1) {
                continue;
            }
            let slot = idx(next, t + 1);
            if scratch.visited[slot] == scratch.epoch {
                continue;
            }
            scratch.visited[slot] = scratch.epoch;
            scratch.parent[slot] = idx(c, t) as u32;
            open.push(Open {
                f: (t + 1) as u32 + h(next),
                t: (t + 1) as u16,
                y: next.y as u16,
                x: next.x as u16,
            });
        }
    }

    // Stall breaking: if the best reachable distance equals the start's
    // (no progress possible) prefer an equal-distance sidestep over waiting.
    if let (Some((d, _, _)), Some(moving)) = (best, best_moving) {
        if d > 0 && d == h(start) && moving.0 == d {
            best = Some(moving);
        }
    }
    let Some((_, stop_t, stop_c)) = best else {
        return vec![start]; // defensive: the start always qualifies
    };
    let mut positions = vec![stop_c];
    let mut state = idx(stop_c, stop_t);
    for _ in 0..stop_t {
        state = scratch.parent[state] as usize;
        let (c, _) = coord_of(state);
        positions.push(c);
    }
    positions.reverse();
    positions
}

/// The incremental sharded space–time router.
///
/// Produces a [`RoutingOutcome`] with the same contract as
/// [`crate::routing::Router::solve`]: conflict-free paths for the particles
/// it routed, the rest reported in `unrouted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IncrementalRouter {
    /// Sharding and windowing parameters.
    pub shards: ShardConfig,
}

impl IncrementalRouter {
    /// Creates a router with the given shard configuration.
    pub fn new(shards: ShardConfig) -> Self {
        Self { shards }
    }

    /// Solves a routing problem incrementally.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an ill-formed problem; an unsolvable
    /// but well-formed problem is reported through
    /// [`RoutingOutcome::unrouted`] instead.
    pub fn solve(&self, problem: &RoutingProblem) -> Result<RoutingOutcome, ManipulationError> {
        problem.validate()?;
        Ok(self.plan(problem))
    }

    fn plan(&self, problem: &RoutingProblem) -> RoutingOutcome {
        let n = problem.requests.len();
        let sep = problem.min_separation.max(1);
        let margin = sep / 2;
        // A tile needs an interior, room for the half-tile stagger, and
        // `side > 4·margin` so the staggered margin strips of successive
        // phases leave an overlap corridor for the cross-shard handoff.
        let side = self.shards.shard_side.max(4 * margin + 2).max(4);
        let window = self.shards.window.max(1) as usize;
        let phases = [(0, 0), (side / 2, 0), (0, side / 2), (side / 2, side / 2)];

        let goals: Vec<GridCoord> = problem.requests.iter().map(|r| r.goal).collect();
        let mut positions: Vec<GridCoord> = problem.requests.iter().map(|r| r.start).collect();
        let mut histories: Vec<Vec<GridCoord>> = positions.iter().map(|p| vec![*p]).collect();
        let mut pending_stays = vec![0usize; n];

        let mut elapsed = 0usize;
        let mut stagnant = 0u32;
        let max_stagnant = self.shards.max_stagnant_windows.max(4);
        let mut phase = 0usize;

        while elapsed < problem.max_steps && n > 0 {
            if positions.iter().zip(&goals).all(|(p, g)| p == g) {
                break;
            }
            let part = Partition::new(problem.dims, side, phases[phase].0, phases[phase].1);
            phase = (phase + 1) % phases.len();

            // Classify: margin dwellers freeze for this window, everyone
            // else plans within their tile.
            let mut frozen_zone = ZoneCounter::default();
            let mut frozen = vec![false; n];
            for (i, pos) in positions.iter().enumerate() {
                if part.in_margin(*pos, margin) {
                    frozen[i] = true;
                    frozen_zone.add(*pos, sep);
                }
            }
            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); part.tile_count()];
            for (i, pos) in positions.iter().enumerate() {
                if !frozen[i] {
                    by_shard[part.tile_of(*pos)].push(i);
                }
            }

            // Front-runners first: particles closest to their goals plan
            // first so convoys flow instead of blocking on their leaders.
            for shard in &mut by_shard {
                shard.sort_by_key(|&i| (positions[i].manhattan(goals[i]), i));
            }

            // Plan every shard in parallel; each plan depends only on the
            // window-start state, so the merge below is deterministic.
            let mut shard_paths: Vec<Vec<Vec<GridCoord>>> = vec![Vec::new(); part.tile_count()];
            let positions_ref = &positions;
            let goals_ref = &goals;
            let frozen_ref = &frozen_zone;
            shard_paths
                .par_iter_mut()
                .enumerate()
                .for_each(|(tile, out)| {
                    let indices = &by_shard[tile];
                    if indices.is_empty() {
                        return;
                    }
                    let (lo, hi) = part.tile_bounds(positions_ref[indices[0]]);
                    let mut reservations = WindowReservations::new(window, sep);
                    let mut parked = ZoneCounter::default();
                    for &i in indices {
                        parked.add(positions_ref[i], sep);
                    }
                    let mut scratch = Scratch::default();
                    for &i in indices {
                        parked.remove(positions_ref[i], sep);
                        let path = window_astar(
                            lo,
                            hi,
                            |c| {
                                part.tile_of(c) == tile
                                    && !part.in_margin(c, margin)
                                    && !frozen_ref.blocked(c)
                                    && !parked.blocked(c)
                            },
                            positions_ref[i],
                            goals_ref[i],
                            &reservations,
                            &mut scratch,
                            EXPANSION_CAP,
                        );
                        reservations.add_path(&path);
                        out.push(path);
                    }
                });

            // Merge into one trajectory per particle (frozen: wait).
            let mut trajs: Vec<Vec<GridCoord>> = positions.iter().map(|p| vec![*p]).collect();
            for (tile, indices) in by_shard.iter().enumerate() {
                for (k, &i) in indices.iter().enumerate() {
                    trajs[i] = shard_paths[tile][k].clone();
                }
            }

            self.verify_and_repair(problem, &positions, &goals, &mut trajs, window, sep);

            // Execute the window (truncated at the global horizon).
            let steps = window.min(problem.max_steps - elapsed);
            let mut any_moved = false;
            for i in 0..n {
                for t in 1..=steps {
                    let pos = WindowReservations::position_at(&trajs[i], t);
                    let last = *histories[i].last().expect("histories are never empty");
                    if pos == last {
                        pending_stays[i] += 1;
                    } else {
                        any_moved = true;
                        let stays = pending_stays[i];
                        histories[i].extend(std::iter::repeat_n(last, stays));
                        pending_stays[i] = 0;
                        histories[i].push(pos);
                    }
                }
                positions[i] = WindowReservations::position_at(&trajs[i], steps);
            }
            elapsed += steps;
            if any_moved {
                stagnant = 0;
            } else {
                stagnant += 1;
                if stagnant >= max_stagnant {
                    break;
                }
            }
        }

        let mut paths = Vec::new();
        let mut unrouted: Vec<ParticleId> = Vec::new();
        let mut stranded = Vec::new();
        for (i, request) in problem.requests.iter().enumerate() {
            let path = ParticlePath {
                id: request.id,
                positions: std::mem::take(&mut histories[i]),
            };
            if positions[i] == goals[i] {
                paths.push(path);
            } else {
                unrouted.push(request.id);
                stranded.push(path);
            }
        }
        paths.sort_by_key(|p| p.id);
        stranded.sort_by_key(|p| p.id);
        unrouted.sort();
        let makespan = paths.iter().map(|p| p.arrival_step()).max().unwrap_or(0);
        let total_moves = paths
            .iter()
            .chain(stranded.iter())
            .map(|p| p.move_count())
            .sum();
        RoutingOutcome {
            paths,
            unrouted,
            stranded,
            makespan,
            total_moves,
        }
    }

    /// Verifies a merged window with a spatial hash; conflicting particles
    /// (none are expected — the margins make cross-shard conflicts
    /// impossible by construction) are demoted to wait-in-place until the
    /// window is clean, then re-planned serially against the merged
    /// reservations.
    fn verify_and_repair(
        &self,
        problem: &RoutingProblem,
        positions: &[GridCoord],
        goals: &[GridCoord],
        trajs: &mut [Vec<GridCoord>],
        window: usize,
        sep: u32,
    ) {
        let mut demoted: Vec<usize> = Vec::new();
        loop {
            let offenders = window_conflicts(trajs, window, sep);
            if offenders.is_empty() {
                break;
            }
            for (a, b) in offenders {
                // Demote the particle farther from its goal (ties: higher
                // index); the other keeps its plan. Two waiting particles
                // can never conflict (window-start states are valid), so if
                // the preferred victim already waits, the other one moved.
                let preferred = if (positions[a].manhattan(goals[a]), a)
                    >= (positions[b].manhattan(goals[b]), b)
                {
                    a
                } else {
                    b
                };
                let victim = if trajs[preferred].len() > 1 {
                    preferred
                } else {
                    a + b - preferred
                };
                if trajs[victim].len() > 1 {
                    trajs[victim] = vec![positions[victim]];
                    demoted.push(victim);
                }
            }
        }
        if demoted.is_empty() {
            return;
        }
        demoted.sort_unstable();
        demoted.dedup();

        // Re-plan the demoted particles one at a time against everyone
        // else's merged trajectories.
        let mut reservations = WindowReservations::new(window, sep);
        for traj in trajs.iter() {
            reservations.add_path(traj);
        }
        let dims = problem.dims;
        let lo = GridCoord::new(0, 0);
        let hi = GridCoord::new(dims.cols - 1, dims.rows - 1);
        let mut scratch = Scratch::default();
        for &i in &demoted {
            reservations.remove_path(&trajs[i]);
            let path = window_astar(
                lo,
                hi,
                |_| true,
                positions[i],
                goals[i],
                &reservations,
                &mut scratch,
                EXPANSION_CAP,
            );
            reservations.add_path(&path);
            trajs[i] = path;
        }
        // The re-planned paths respected the reservations, but run one
        // last wait-demotion sweep as a hard guarantee.
        loop {
            let offenders = window_conflicts(trajs, window, sep);
            if offenders.is_empty() {
                break;
            }
            for (a, b) in offenders {
                let victim = a.max(b);
                if trajs[victim].len() > 1 {
                    trajs[victim] = vec![positions[victim]];
                } else {
                    let other = a.min(b);
                    trajs[other] = vec![positions[other]];
                }
            }
        }
    }
}

/// All conflicting particle pairs of a merged window, found with a spatial
/// hash per step (`O(n · window · sep²)` instead of `O(n² · window)`).
fn window_conflicts(trajs: &[Vec<GridCoord>], window: usize, sep: u32) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut occupant: HashMap<GridCoord, usize> = HashMap::new();
    for t in 1..=window {
        occupant.clear();
        for (i, traj) in trajs.iter().enumerate() {
            occupant.insert(WindowReservations::position_at(traj, t), i);
        }
        for (i, traj) in trajs.iter().enumerate() {
            for_each_zone_cell(WindowReservations::position_at(traj, t), sep, |c| {
                if let Some(&j) = occupant.get(&c) {
                    if j > i {
                        pairs.push((i, j));
                    }
                }
            });
        }
        if !pairs.is_empty() {
            break; // repair this step first; later steps re-verify after
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Router, RoutingRequest, RoutingStrategy};

    fn request(id: u64, start: (u32, u32), goal: (u32, u32)) -> RoutingRequest {
        RoutingRequest {
            id: ParticleId(id),
            start: GridCoord::new(start.0, start.1),
            goal: GridCoord::new(goal.0, goal.1),
        }
    }

    fn small_shards() -> IncrementalRouter {
        IncrementalRouter::new(ShardConfig {
            shard_side: 8,
            window: 4,
            max_stagnant_windows: 4,
        })
    }

    #[test]
    fn single_particle_crosses_the_whole_array() {
        let problem = RoutingProblem::new(GridDims::square(32), vec![request(1, (1, 1), (30, 30))]);
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(outcome.unrouted.is_empty());
        assert!(outcome.is_conflict_free(problem.min_separation));
        // Windowed planning may detour around frozen margins but stays close
        // to the Manhattan distance.
        assert!(outcome.makespan >= 58);
        assert!(outcome.makespan <= 2 * 58);
    }

    #[test]
    fn crossing_particles_stay_separated() {
        let problem = RoutingProblem::new(
            GridDims::square(24),
            vec![request(1, (1, 10), (22, 10)), request(2, (22, 10), (1, 10))],
        );
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(
            outcome.unrouted.is_empty(),
            "unrouted: {:?}",
            outcome.unrouted
        );
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn dense_column_routes_conflict_free() {
        let mut requests = Vec::new();
        for (i, y) in (1..30).step_by(3).enumerate() {
            requests.push(request(i as u64, (2, y), (29, y)));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests.clone());
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), requests.len());
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn zero_requests_is_a_trivial_success() {
        let problem = RoutingProblem::new(GridDims::square(16), Vec::new());
        let outcome = small_shards().solve(&problem).unwrap();
        assert!(outcome.paths.is_empty());
        assert!(outcome.unrouted.is_empty());
        assert_eq!(outcome.makespan, 0);
        assert_eq!(outcome.success_rate(0), 1.0);
    }

    #[test]
    fn stationary_requests_stay_put() {
        let problem = RoutingProblem::new(
            GridDims::square(16),
            vec![request(1, (4, 4), (4, 4)), request(2, (10, 4), (12, 4))],
        );
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 2);
        assert_eq!(outcome.paths[0].move_count(), 0);
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn respects_larger_separations() {
        let mut problem = RoutingProblem::new(
            GridDims::square(24),
            vec![request(1, (2, 8), (20, 8)), request(2, (2, 14), (20, 14))],
        );
        problem.min_separation = 4;
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 2);
        assert!(outcome.is_conflict_free(4));
    }

    #[test]
    fn horizon_bounds_are_respected() {
        let mut problem =
            RoutingProblem::new(GridDims::square(32), vec![request(1, (0, 0), (31, 31))]);
        problem.max_steps = 10;
        let outcome = small_shards().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 0);
        assert_eq!(outcome.unrouted, vec![ParticleId(1)]);
    }

    #[test]
    fn matches_global_planner_quality_on_moderate_traffic() {
        let mut requests = Vec::new();
        for i in 0..8u32 {
            requests.push(request(
                u64::from(i),
                (1, 1 + 3 * i),
                (28, 1 + 3 * ((i + 3) % 8)),
            ));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests.clone());
        let incremental = small_shards().solve(&problem).unwrap();
        let global = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        assert!(incremental.is_conflict_free(problem.min_separation));
        assert!(incremental.paths.len() >= global.paths.len().saturating_sub(1));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut requests = Vec::new();
        for i in 0..20u32 {
            requests.push(request(
                u64::from(i),
                (1 + (i % 4) * 3, 1 + (i / 4) * 3),
                (28 - (i % 4) * 3, 28 - (i / 4) * 3),
            ));
        }
        let problem = RoutingProblem::new(GridDims::square(32), requests);
        let router = small_shards();
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| router.solve(&problem).unwrap());
        let many = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| router.solve(&problem).unwrap());
        assert_eq!(one, many);
        assert!(one.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn window_astar_advances_toward_a_far_goal() {
        let reservations = WindowReservations::new(4, 2);
        let mut scratch = Scratch::default();
        let path = window_astar(
            GridCoord::new(0, 9),
            GridCoord::new(6, 14),
            |_| true,
            GridCoord::new(1, 10),
            GridCoord::new(22, 10),
            &reservations,
            &mut scratch,
            EXPANSION_CAP,
        );
        assert_eq!(path.last(), Some(&GridCoord::new(5, 10)), "path: {path:?}");
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn partition_margins_only_on_internal_boundaries() {
        let part = Partition::new(GridDims::square(16), 8, 0, 0);
        // Array corner: no internal boundary nearby.
        assert!(!part.in_margin(GridCoord::new(0, 0), 1));
        // Cells flanking the internal boundary at x = 8.
        assert!(part.in_margin(GridCoord::new(7, 4), 1));
        assert!(part.in_margin(GridCoord::new(8, 4), 1));
        assert!(!part.in_margin(GridCoord::new(6, 4), 1));
        // Staggered partition moves the margin.
        let staggered = Partition::new(GridDims::square(16), 8, 4, 4);
        assert!(!staggered.in_margin(GridCoord::new(7, 7), 1));
        assert!(staggered.in_margin(GridCoord::new(4, 7), 1));
    }

    #[test]
    fn every_cell_is_mobile_in_some_phase() {
        let dims = GridDims::square(20);
        let side = 8u32;
        let phases = [(0, 0), (4, 0), (0, 4), (4, 4)];
        for c in dims.iter() {
            let mobile_somewhere = phases
                .iter()
                .any(|&(ox, oy)| !Partition::new(dims, side, ox, oy).in_margin(c, 1));
            assert!(mobile_somewhere, "cell {c} is frozen in every phase");
        }
    }
}
