//! # labchip-manipulation
//!
//! Cell-manipulation layer of the `labchip` workspace: the software that
//! turns "move this cell there" into sequences of electrode patterns.
//!
//! The DATE'05 paper's chip creates a DEP cage above each counter-phase
//! electrode and moves a cage — with its trapped cell — by shifting the
//! voltage pattern one electrode at a time (§1). At the scale of tens of
//! thousands of simultaneous cages the interesting problems are software
//! problems: route many cells concurrently without letting their cages merge,
//! sequence merge/split/isolate operations, and schedule whole assay
//! protocols. This crate provides:
//!
//! * the [`cage`] grid tracking which electrode hosts which particle,
//! * conflict-free multi-particle [`routing`] (space–time A* with reservation
//!   tables, plus a greedy baseline),
//! * high-level [`ops`] (move, merge, isolate, park, wash),
//! * an assay [`protocol`] description and executor,
//! * throughput [`metrics`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cage;
pub mod error;
pub mod metrics;
pub mod ops;
pub mod protocol;
pub mod routing;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cage::{CageGrid, ParticleId};
    pub use crate::error::ManipulationError;
    pub use crate::metrics::ThroughputReport;
    pub use crate::ops::Manipulator;
    pub use crate::protocol::{Protocol, ProtocolExecutor, ProtocolReport, ProtocolStep};
    pub use crate::routing::{Router, RoutingOutcome, RoutingProblem, RoutingStrategy};
}

pub use error::ManipulationError;
