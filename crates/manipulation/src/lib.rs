//! # labchip-manipulation
//!
//! Cell-manipulation layer of the `labchip` workspace: the software that
//! turns "move this cell there" into sequences of electrode patterns.
//!
//! The DATE'05 paper's chip creates a DEP cage above each counter-phase
//! electrode and moves a cage — with its trapped cell — by shifting the
//! voltage pattern one electrode at a time (§1). At the scale of tens of
//! thousands of simultaneous cages the interesting problems are software
//! problems: route many cells concurrently without letting their cages merge,
//! sequence merge/split/isolate operations, and schedule whole assay
//! protocols. This crate provides:
//!
//! * the [`cage`] grid tracking which electrode hosts which particle,
//! * the unified [`state`] model ([`state::ChipState`]): the cage grid plus
//!   its cached, dirty-tracked derivations (electrode pattern, ground-truth
//!   occupancy), the plan map and the per-phase time ledger — one chip-state
//!   owner shared by simulator, router, scanner and driver,
//! * the event-sourced [`journal`]: every state mutation recorded as a
//!   typed event at the `ChipState` choke points, with bit-identical
//!   replay, journal diffing and seeded fault injection,
//! * the sharded [`fleet`]: one logical array decomposed over many
//!   `ChipState`s with halo margins and a typed cross-shard handoff
//!   event family, composing back to the monolithic state bit-for-bit,
//! * conflict-free multi-particle [`routing`] (space–time A* with reservation
//!   tables, plus a greedy baseline),
//! * the incremental [`sharding`] planner that scales routing to the full
//!   array — windowed planning over a staggered tile partition, parallel
//!   across shards, with warm-start plan caching keyed by shard content
//!   hashes and fed by the state's dirty-region tracking,
//! * high-level [`ops`] (move, merge, isolate, park, wash),
//! * an assay [`protocol`] description and executor,
//! * throughput [`metrics`].
//!
//! ## Example: route a crossing pair conflict-free
//!
//! ```
//! use labchip_manipulation::prelude::*;
//! use labchip_units::{GridCoord, GridDims};
//!
//! let problem = RoutingProblem::new(
//!     GridDims::square(16),
//!     vec![
//!         RoutingRequest { id: ParticleId(1), start: GridCoord::new(1, 8), goal: GridCoord::new(14, 8) },
//!         RoutingRequest { id: ParticleId(2), start: GridCoord::new(14, 8), goal: GridCoord::new(1, 8) },
//!     ],
//! );
//! let outcome = Router::new(RoutingStrategy::PrioritizedAStar).solve(&problem)?;
//! assert!(outcome.unrouted.is_empty());
//! assert!(outcome.is_conflict_free(problem.min_separation));
//! # Ok::<(), labchip_manipulation::ManipulationError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cage;
pub mod error;
pub mod fleet;
pub mod journal;
pub mod metrics;
pub mod ops;
pub mod protocol;
pub mod routing;
pub mod sharding;
pub mod state;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cage::{CageGrid, ParticleId};
    pub use crate::error::ManipulationError;
    pub use crate::fleet::{FleetOutcome, FleetStats, FleetTopology, ShardedState};
    pub use crate::journal::{Event, FaultPlan, Journal};
    pub use crate::metrics::{SustainedThroughput, ThroughputReport};
    pub use crate::ops::Manipulator;
    pub use crate::protocol::{Protocol, ProtocolExecutor, ProtocolReport, ProtocolStep};
    pub use crate::routing::{
        Router, RoutingOutcome, RoutingProblem, RoutingRequest, RoutingStrategy,
    };
    pub use crate::sharding::{CacheStats, IncrementalRouter, RouterCache, ShardConfig};
    pub use crate::state::{ChipState, DirtyRegions, TimeLedger};
}

pub use error::ManipulationError;
