//! Conflict-free multi-particle routing.
//!
//! Moving one cage is trivial; moving thousands of cages concurrently without
//! letting any two traps merge is a path-planning problem. Two planners are
//! provided:
//!
//! * [`RoutingStrategy::PrioritizedAStar`] — space–time A\* with reservation
//!   tables: particles are planned one at a time (longest distance first),
//!   each treating the already-planned particles as moving obstacles and the
//!   not-yet-planned ones as static obstacles at their start positions;
//! * [`RoutingStrategy::Greedy`] — the obvious baseline: every step, every
//!   particle moves towards its goal if the next cage is free, otherwise it
//!   waits. Cheap, but it livelocks as density grows — which is exactly the
//!   comparison experiment E7 reports;
//! * [`RoutingStrategy::Incremental`] — the full-array planner of
//!   [`crate::sharding`]: windowed, sharded, parallel across tiles. Use it
//!   (or [`crate::sharding::IncrementalRouter`] directly, for custom shard
//!   parameters) when the problem has hundreds to thousands of particles.

use crate::cage::ParticleId;
use crate::error::ManipulationError;
use labchip_units::{GridCoord, GridDims};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One routing request: take a particle from `start` to `goal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingRequest {
    /// The particle to move.
    pub id: ParticleId,
    /// Its current cage.
    pub start: GridCoord,
    /// The cage it must end up in.
    pub goal: GridCoord,
}

/// A complete multi-particle routing problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingProblem {
    /// Electrode-grid dimensions.
    pub dims: GridDims,
    /// Minimum Chebyshev separation between any two cages at any time.
    pub min_separation: u32,
    /// The requests to satisfy.
    pub requests: Vec<RoutingRequest>,
    /// Planning horizon in cage steps.
    pub max_steps: usize,
}

impl RoutingProblem {
    /// Creates a problem with the default separation (2) and a horizon of
    /// four grid diameters.
    pub fn new(dims: GridDims, requests: Vec<RoutingRequest>) -> Self {
        Self {
            dims,
            min_separation: 2,
            requests,
            max_steps: 4 * (dims.cols + dims.rows) as usize,
        }
    }

    /// Validates that starts and goals are in bounds and mutually compatible
    /// with the separation rule.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::OutOfBounds`] or
    /// [`ManipulationError::SiteConflict`] describing the first problem.
    pub fn validate(&self) -> Result<(), ManipulationError> {
        for r in &self.requests {
            for c in [r.start, r.goal] {
                if !self.dims.contains(c) {
                    return Err(ManipulationError::OutOfBounds { coord: c });
                }
            }
        }
        for (i, a) in self.requests.iter().enumerate() {
            for b in &self.requests[i + 1..] {
                if a.start.chebyshev(b.start) < self.min_separation {
                    return Err(ManipulationError::SiteConflict {
                        coord: b.start,
                        reason: format!("starts of #{} and #{} too close", a.id.0, b.id.0),
                    });
                }
                if a.goal.chebyshev(b.goal) < self.min_separation {
                    return Err(ManipulationError::SiteConflict {
                        coord: b.goal,
                        reason: format!("goals of #{} and #{} too close", a.id.0, b.id.0),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The planner to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Space–time A\* with reservations (the proposed planner).
    #[default]
    PrioritizedAStar,
    /// Step-synchronous greedy motion (the baseline).
    Greedy,
    /// The incremental sharded planner of [`crate::sharding`], with default
    /// shard parameters.
    Incremental,
}

/// The planned trajectory of one particle. `positions[t]` is the cage at
/// step `t`; once the goal is reached the particle stays there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParticlePath {
    /// The particle this path belongs to.
    pub id: ParticleId,
    /// Cage position at every step from 0 to the end of the path.
    pub positions: Vec<GridCoord>,
}

impl ParticlePath {
    /// Position at step `t` (clamped to the final position).
    pub fn position_at(&self, t: usize) -> GridCoord {
        self.positions[t.min(self.positions.len() - 1)]
    }

    /// Number of actual moves (steps where the position changes).
    pub fn move_count(&self) -> usize {
        self.positions.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Number of steps until the final position is first reached.
    pub fn arrival_step(&self) -> usize {
        let last = *self.positions.last().expect("paths are never empty");
        self.positions
            .iter()
            .position(|p| *p == last && self.positions.iter().skip(1).all(|_| true))
            .map(|_| {
                // First index from which the position never changes again.
                let mut arrival = self.positions.len() - 1;
                while arrival > 0 && self.positions[arrival - 1] == last {
                    arrival -= 1;
                }
                arrival
            })
            .unwrap_or(0)
    }
}

/// Visits every in-bounds cell within Chebyshev distance `< radius` of
/// `center` — the "blocked zone" induced by a cage under the separation
/// rule. The single definition of that zone shape; the conflict checker,
/// the sharded planner's zone counters and its window verifier all walk it
/// through this helper.
pub(crate) fn for_each_zone_cell(center: GridCoord, radius: u32, mut f: impl FnMut(GridCoord)) {
    let r = radius as i32;
    for dy in -(r - 1)..r {
        for dx in -(r - 1)..r {
            if let Some(c) = center.offset(dx, dy) {
                f(c);
            }
        }
    }
}

/// Result of solving a routing problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Paths of the particles that were routed successfully.
    pub paths: Vec<ParticlePath>,
    /// Particles that could not be routed within the horizon.
    pub unrouted: Vec<ParticleId>,
    /// Best-effort trajectories of unrouted particles that *did* move
    /// before getting stuck (step-synchronous planners produce these; the
    /// prioritized planner leaves its unrouted particles parked at their
    /// starts, so it reports none). Callers executing an outcome must leave
    /// each stranded particle at its trajectory's final position.
    pub stranded: Vec<ParticlePath>,
    /// Number of steps until the last routed particle reaches its goal.
    pub makespan: usize,
    /// Total number of individual cage moves across all particles.
    pub total_moves: usize,
}

impl RoutingOutcome {
    /// Fraction of requests that were routed.
    pub fn success_rate(&self, total_requests: usize) -> f64 {
        if total_requests == 0 {
            1.0
        } else {
            self.paths.len() as f64 / total_requests as f64
        }
    }

    /// Returns `true` when every pair of particles — routed *and* stranded
    /// — respects the separation rule at every step: the correctness
    /// invariant of the planner.
    ///
    /// Uses a spatial hash per step (`O(paths · makespan · sep²)` instead of
    /// `O(paths² · makespan)`), so validating full-array outcomes with
    /// thousands of paths stays cheap.
    pub fn is_conflict_free(&self, min_separation: u32) -> bool {
        if min_separation == 0 {
            return true;
        }
        let all = || self.paths.iter().chain(self.stranded.iter());
        let horizon = all()
            .map(ParticlePath::arrival_step)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut occupant: HashMap<GridCoord, usize> = HashMap::with_capacity(self.paths.len());
        for t in 0..=horizon {
            occupant.clear();
            for (i, path) in all().enumerate() {
                if occupant.insert(path.position_at(t), i).is_some() {
                    return false; // two particles in the same cage
                }
            }
            for (i, path) in all().enumerate() {
                let mut conflicted = false;
                for_each_zone_cell(path.position_at(t), min_separation, |c| {
                    conflicted |= occupant.get(&c).is_some_and(|&j| j != i);
                });
                if conflicted {
                    return false;
                }
            }
        }
        true
    }
}

/// Multi-particle router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Router {
    /// Strategy to use.
    pub strategy: RoutingStrategy,
}

impl Router {
    /// Creates a router using the given strategy.
    pub fn new(strategy: RoutingStrategy) -> Self {
        Self { strategy }
    }

    /// Solves a routing problem.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an ill-formed problem; an unsolvable
    /// but well-formed problem is reported through
    /// [`RoutingOutcome::unrouted`] instead.
    pub fn solve(&self, problem: &RoutingProblem) -> Result<RoutingOutcome, ManipulationError> {
        problem.validate()?;
        let outcome = match self.strategy {
            RoutingStrategy::PrioritizedAStar => prioritized_astar(problem),
            RoutingStrategy::Greedy => greedy(problem),
            RoutingStrategy::Incremental => {
                return crate::sharding::IncrementalRouter::default().solve(problem)
            }
        };
        Ok(outcome)
    }
}

fn finalize(
    paths: Vec<ParticlePath>,
    unrouted: Vec<ParticleId>,
    stranded: Vec<ParticlePath>,
) -> RoutingOutcome {
    let makespan = paths.iter().map(|p| p.arrival_step()).max().unwrap_or(0);
    let total_moves = paths
        .iter()
        .chain(stranded.iter())
        .map(|p| p.move_count())
        .sum();
    RoutingOutcome {
        paths,
        unrouted,
        stranded,
        makespan,
        total_moves,
    }
}

// ---------------------------------------------------------------------------
// Prioritized space-time A*
// ---------------------------------------------------------------------------

#[derive(PartialEq, Eq)]
struct OpenNode {
    f: usize,
    t: usize,
    coord: GridCoord,
}

impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert to get smallest f first.
        other
            .f
            .cmp(&self.f)
            .then_with(|| other.t.cmp(&self.t))
            .then_with(|| other.coord.cmp(&self.coord))
    }
}

impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reservation table of already-planned particles (space–time blocked zones).
struct Reservations {
    min_separation: i32,
    /// Blocked cells per time step.
    dynamic: Vec<HashSet<GridCoord>>,
}

impl Reservations {
    fn new(horizon: usize, min_separation: u32) -> Self {
        Self {
            min_separation: min_separation as i32,
            dynamic: vec![HashSet::new(); horizon + 2],
        }
    }

    fn block_zone(set: &mut HashSet<GridCoord>, center: GridCoord, radius: i32) {
        for dy in -(radius - 1)..radius {
            for dx in -(radius - 1)..radius {
                if let Some(c) = center.offset(dx, dy) {
                    set.insert(c);
                }
            }
        }
    }

    fn add_path(&mut self, path: &ParticlePath) {
        let horizon = self.dynamic.len();
        for t in 0..horizon {
            let pos = path.position_at(t);
            Self::block_zone(&mut self.dynamic[t], pos, self.min_separation);
        }
    }

    fn is_free(&self, coord: GridCoord, t: usize) -> bool {
        let t = t.min(self.dynamic.len() - 1);
        !self.dynamic[t].contains(&coord)
    }

    /// Whether a particle parked at `coord` from step `t` onwards stays clear
    /// of every later reservation.
    fn is_free_forever(&self, coord: GridCoord, t: usize) -> bool {
        (t..self.dynamic.len()).all(|step| self.is_free(coord, step))
    }
}

/// Attempts to plan every pending request in priority order against the
/// reservations of the already-routed paths; when `treat_pending_as_static`
/// is set, the starts of the *other* still-pending particles are treated as
/// permanent obstacles (conservative), otherwise they are ignored
/// (optimistic). Returns the requests that remain unplanned.
fn plan_round<'a>(
    problem: &RoutingProblem,
    paths: &mut Vec<ParticlePath>,
    pending: Vec<&'a RoutingRequest>,
    treat_pending_as_static: bool,
) -> Vec<&'a RoutingRequest> {
    let mut queue = pending;
    queue.sort_by_key(|r| std::cmp::Reverse(r.start.manhattan(r.goal)));

    let mut reservations = Reservations::new(problem.max_steps, problem.min_separation);
    for path in paths.iter() {
        reservations.add_path(path);
    }
    // Particles of this round that have not been planned yet sit parked at
    // their starts; they shrink away as planning progresses.
    let mut parked: Vec<(ParticleId, GridCoord)> = if treat_pending_as_static {
        queue.iter().map(|r| (r.id, r.start)).collect()
    } else {
        Vec::new()
    };

    let mut remaining: Vec<&RoutingRequest> = Vec::new();
    for request in queue {
        let others: Vec<GridCoord> = parked
            .iter()
            .filter(|(id, _)| *id != request.id)
            .map(|(_, c)| *c)
            .collect();
        match space_time_astar(problem, request, &reservations, &others) {
            Some(path) => {
                reservations.add_path(&path);
                parked.retain(|(id, _)| *id != request.id);
                paths.push(path);
            }
            None => remaining.push(request),
        }
    }
    remaining
}

/// Demotes routed (moving) paths that pass too close to a particle that is
/// still parked at its start, returning the demoted requests to the pending
/// pool so the plan stays physically executable.
fn repair_demote<'a>(
    problem: &'a RoutingProblem,
    paths: &mut Vec<ParticlePath>,
    pending: &mut Vec<&'a RoutingRequest>,
) {
    loop {
        let parked: Vec<GridCoord> = pending.iter().map(|r| r.start).collect();
        let mut demoted = Vec::new();
        paths.retain(|path| {
            if path.positions.len() == 1 {
                return true;
            }
            let conflicts = parked.iter().any(|obstacle| {
                (0..=problem.max_steps)
                    .any(|t| path.position_at(t).chebyshev(*obstacle) < problem.min_separation)
            });
            if conflicts {
                demoted.push(path.id);
                false
            } else {
                true
            }
        });
        if demoted.is_empty() {
            break;
        }
        for id in demoted {
            let request = problem
                .requests
                .iter()
                .find(|r| r.id == id)
                .expect("demoted ids come from the request list");
            pending.push(request);
        }
    }
}

fn prioritized_astar(problem: &RoutingProblem) -> RoutingOutcome {
    // Stationary requests (start == goal) are hard obstacles: they are
    // trivially "routed" and reserved in every round.
    let (stationary, moving): (Vec<&RoutingRequest>, Vec<&RoutingRequest>) =
        problem.requests.iter().partition(|r| r.start == r.goal);

    let mut paths: Vec<ParticlePath> = stationary
        .iter()
        .map(|request| ParticlePath {
            id: request.id,
            positions: vec![request.start],
        })
        .collect();

    let mut pending: Vec<&RoutingRequest> = moving;

    // Conservative "peeling" rounds: plan whoever can reach their goal while
    // treating the rest as parked; every round the planned paths vacate space
    // for the next layer. When a round makes no progress, fall back to one
    // optimistic round (needed for mutual exchanges) followed by a repair
    // pass, and keep going while something improves.
    const MAX_ROUNDS: usize = 16;
    for _ in 0..MAX_ROUNDS {
        if pending.is_empty() {
            break;
        }
        let before = pending.len();
        pending = plan_round(problem, &mut paths, pending, true);
        if pending.len() < before {
            continue;
        }
        // Stuck: optimistic round + repair.
        pending = plan_round(problem, &mut paths, pending, false);
        repair_demote(problem, &mut paths, &mut pending);
        if pending.len() >= before {
            break;
        }
    }

    let unrouted: Vec<ParticleId> = {
        let mut ids: Vec<ParticleId> = pending.iter().map(|r| r.id).collect();
        ids.sort();
        ids
    };
    paths.sort_by_key(|p| p.id);
    // Pending requests were never planned: they stay parked at their starts,
    // so there are no stranded trajectories to report.
    finalize(paths, unrouted, Vec::new())
}

/// Node-expansion budget of one [`space_time_astar`] search, per step of
/// horizon. Uncongested searches stay far below it; a search that exhausts
/// the budget reports failure (the request lands in
/// [`RoutingOutcome::unrouted`]) instead of stalling the whole plan — at
/// thousands of particles an unbounded search in a congested region can
/// otherwise take minutes for one particle.
const ASTAR_EXPANSIONS_PER_STEP: usize = 96;

fn space_time_astar(
    problem: &RoutingProblem,
    request: &RoutingRequest,
    reservations: &Reservations,
    parked_obstacles: &[GridCoord],
) -> Option<ParticlePath> {
    let horizon = problem.max_steps;
    let expansion_cap = horizon.saturating_mul(ASTAR_EXPANSIONS_PER_STEP);
    let dims = problem.dims;
    let start = request.start;
    let goal = request.goal;
    let sep = problem.min_separation;

    let clear_of_parked = |c: GridCoord| parked_obstacles.iter().all(|p| p.chebyshev(c) >= sep);
    if !clear_of_parked(goal) {
        return None;
    }

    let heuristic = |c: GridCoord| c.manhattan(goal) as usize;

    let mut open = BinaryHeap::new();
    let mut best_g: HashMap<(GridCoord, usize), usize> = HashMap::new();
    let mut parent: HashMap<(GridCoord, usize), (GridCoord, usize)> = HashMap::new();

    open.push(OpenNode {
        f: heuristic(start),
        t: 0,
        coord: start,
    });
    best_g.insert((start, 0), 0);

    let mut expansions = 0usize;
    while let Some(OpenNode { t, coord, .. }) = open.pop() {
        expansions += 1;
        if expansions > expansion_cap {
            return None;
        }
        if coord == goal && reservations.is_free_forever(goal, t) {
            // Reconstruct.
            let mut positions = vec![coord];
            let mut key = (coord, t);
            while let Some(prev) = parent.get(&key) {
                positions.push(prev.0);
                key = *prev;
            }
            positions.reverse();
            return Some(ParticlePath {
                id: request.id,
                positions,
            });
        }
        if t >= horizon {
            continue;
        }
        let candidates = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)];
        for (dx, dy) in candidates {
            let Some(next) = coord.offset(dx, dy) else {
                continue;
            };
            if !dims.contains(next) {
                continue;
            }
            if !reservations.is_free(next, t + 1) || !clear_of_parked(next) {
                continue;
            }
            let g = t + 1;
            let key = (next, g);
            if best_g.get(&key).is_none_or(|&existing| g < existing) {
                best_g.insert(key, g);
                parent.insert(key, (coord, t));
                open.push(OpenNode {
                    f: g + heuristic(next),
                    t: g,
                    coord: next,
                });
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Greedy baseline
// ---------------------------------------------------------------------------

fn greedy(problem: &RoutingProblem) -> RoutingOutcome {
    let sep = problem.min_separation;
    let mut positions: Vec<GridCoord> = problem.requests.iter().map(|r| r.start).collect();
    let mut histories: Vec<Vec<GridCoord>> = positions.iter().map(|p| vec![*p]).collect();

    for _ in 0..problem.max_steps {
        let mut any_moved = false;
        for i in 0..positions.len() {
            let goal = problem.requests[i].goal;
            let current = positions[i];
            if current == goal {
                continue;
            }
            // Candidate neighbours sorted by resulting distance to goal.
            let mut candidates: Vec<GridCoord> = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                .iter()
                .filter_map(|(dx, dy)| current.offset(*dx, *dy))
                .filter(|c| problem.dims.contains(*c))
                .filter(|c| c.manhattan(goal) < current.manhattan(goal))
                .collect();
            candidates.sort_by_key(|c| c.manhattan(goal));
            let chosen = candidates.into_iter().find(|candidate| {
                positions
                    .iter()
                    .enumerate()
                    .all(|(j, other)| j == i || other.chebyshev(*candidate) >= sep)
            });
            if let Some(next) = chosen {
                positions[i] = next;
                any_moved = true;
            }
        }
        for (i, p) in positions.iter().enumerate() {
            histories[i].push(*p);
        }
        let all_arrived = positions
            .iter()
            .zip(problem.requests.iter())
            .all(|(p, r)| *p == r.goal);
        if all_arrived || !any_moved {
            break;
        }
    }

    let mut paths = Vec::new();
    let mut unrouted = Vec::new();
    let mut stranded = Vec::new();
    for (i, request) in problem.requests.iter().enumerate() {
        let path = ParticlePath {
            id: request.id,
            positions: histories[i].clone(),
        };
        if positions[i] == request.goal {
            paths.push(path);
        } else {
            unrouted.push(request.id);
            stranded.push(path);
        }
    }
    paths.sort_by_key(|p| p.id);
    stranded.sort_by_key(|p| p.id);
    finalize(paths, unrouted, stranded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, start: (u32, u32), goal: (u32, u32)) -> RoutingRequest {
        RoutingRequest {
            id: ParticleId(id),
            start: GridCoord::new(start.0, start.1),
            goal: GridCoord::new(goal.0, goal.1),
        }
    }

    #[test]
    fn single_particle_takes_shortest_path() {
        let problem = RoutingProblem::new(GridDims::square(16), vec![request(1, (1, 1), (9, 5))]);
        let outcome = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        assert!(outcome.unrouted.is_empty());
        assert_eq!(outcome.paths.len(), 1);
        // Manhattan distance is 12: the path should take exactly 12 moves.
        assert_eq!(outcome.paths[0].move_count(), 12);
        assert_eq!(outcome.makespan, 12);
        assert!(outcome.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn crossing_particles_avoid_each_other() {
        // Two particles swapping sides of the array must not let their cages
        // merge at any step.
        let problem = RoutingProblem::new(
            GridDims::square(16),
            vec![request(1, (1, 8), (14, 8)), request(2, (14, 8), (1, 8))],
        );
        let outcome = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        assert!(
            outcome.unrouted.is_empty(),
            "unrouted: {:?}",
            outcome.unrouted
        );
        assert!(outcome.is_conflict_free(problem.min_separation));
        // Someone had to detour: total moves exceed the sum of Manhattan
        // distances? (Not necessarily, but makespan is at least the distance.)
        assert!(outcome.makespan >= 13);
    }

    #[test]
    fn many_particles_route_conflict_free() {
        // A column of particles all moving to the opposite side.
        let mut requests = Vec::new();
        for (i, y) in (1..14).step_by(3).enumerate() {
            requests.push(request(i as u64, (1, y), (14, y)));
        }
        let problem = RoutingProblem::new(GridDims::square(16), requests.clone());
        let outcome = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        assert_eq!(outcome.paths.len(), requests.len());
        assert!(outcome.is_conflict_free(problem.min_separation));
        assert_eq!(outcome.success_rate(requests.len()), 1.0);
        assert!(outcome.total_moves >= requests.len() * 13);
    }

    #[test]
    fn astar_beats_greedy_in_a_congested_corridor() {
        // Head-on traffic in a narrow strip: greedy livelocks, A* resolves it.
        let dims = GridDims::new(20, 5);
        let requests = vec![
            request(1, (1, 2), (18, 2)),
            request(2, (18, 2), (1, 2)),
            request(3, (1, 0), (18, 0)),
            request(4, (18, 4), (1, 4)),
        ];
        let problem = RoutingProblem::new(dims, requests.clone());
        let astar = Router::new(RoutingStrategy::PrioritizedAStar)
            .solve(&problem)
            .unwrap();
        let greedy = Router::new(RoutingStrategy::Greedy)
            .solve(&problem)
            .unwrap();
        assert!(astar.paths.len() >= greedy.paths.len());
        assert!(
            astar.paths.len() >= 3,
            "A* routed only {}",
            astar.paths.len()
        );
        assert!(astar.is_conflict_free(problem.min_separation));
    }

    #[test]
    fn greedy_handles_disjoint_traffic() {
        let problem = RoutingProblem::new(
            GridDims::square(16),
            vec![request(1, (1, 1), (10, 1)), request(2, (1, 8), (10, 8))],
        );
        let outcome = Router::new(RoutingStrategy::Greedy)
            .solve(&problem)
            .unwrap();
        assert!(outcome.unrouted.is_empty());
        assert!(outcome.is_conflict_free(problem.min_separation));
        assert_eq!(outcome.total_moves, 18);
    }

    #[test]
    fn invalid_problems_are_rejected() {
        // Goal outside the grid.
        let p = RoutingProblem::new(GridDims::square(8), vec![request(1, (0, 0), (9, 0))]);
        assert!(Router::default().solve(&p).is_err());
        // Starts too close together.
        let p = RoutingProblem::new(
            GridDims::square(8),
            vec![request(1, (1, 1), (6, 6)), request(2, (2, 1), (6, 1))],
        );
        assert!(Router::default().solve(&p).is_err());
    }

    #[test]
    fn unreachable_goal_is_reported_not_fatal() {
        // The goal sits inside the separation zone of another particle's
        // goal... instead use a horizon too short to reach the goal.
        let mut problem =
            RoutingProblem::new(GridDims::square(16), vec![request(1, (0, 0), (15, 15))]);
        problem.max_steps = 5;
        let outcome = Router::default().solve(&problem).unwrap();
        assert_eq!(outcome.paths.len(), 0);
        assert_eq!(outcome.unrouted, vec![ParticleId(1)]);
        assert_eq!(outcome.success_rate(1), 0.0);
    }

    #[test]
    fn zero_request_problems_are_trivially_solved() {
        let problem = RoutingProblem::new(GridDims::square(16), Vec::new());
        for strategy in [
            RoutingStrategy::PrioritizedAStar,
            RoutingStrategy::Greedy,
            RoutingStrategy::Incremental,
        ] {
            let outcome = Router::new(strategy).solve(&problem).unwrap();
            assert!(outcome.paths.is_empty());
            assert!(outcome.unrouted.is_empty());
            assert_eq!(outcome.makespan, 0);
            assert_eq!(outcome.total_moves, 0);
            assert_eq!(outcome.success_rate(0), 1.0);
            assert!(outcome.is_conflict_free(problem.min_separation));
        }
    }

    #[test]
    fn wide_separation_conflicts_are_detected_and_respected() {
        // An outcome whose paths pass at Chebyshev 2 is fine for the default
        // separation but a conflict at min_separation = 3.
        let outcome = RoutingOutcome {
            paths: vec![
                ParticlePath {
                    id: ParticleId(1),
                    positions: vec![GridCoord::new(4, 4), GridCoord::new(5, 4)],
                },
                ParticlePath {
                    id: ParticleId(2),
                    positions: vec![GridCoord::new(8, 4), GridCoord::new(7, 4)],
                },
            ],
            unrouted: vec![],
            stranded: vec![],
            makespan: 1,
            total_moves: 2,
        };
        assert!(outcome.is_conflict_free(2));
        assert!(!outcome.is_conflict_free(3));

        // And a solver told to keep cages 3 apart produces a plan that
        // passes the stricter check.
        let mut problem = RoutingProblem::new(
            GridDims::square(16),
            vec![request(1, (1, 4), (13, 4)), request(2, (1, 10), (13, 10))],
        );
        problem.min_separation = 3;
        for strategy in [
            RoutingStrategy::PrioritizedAStar,
            RoutingStrategy::Incremental,
        ] {
            let solved = Router::new(strategy).solve(&problem).unwrap();
            assert_eq!(solved.paths.len(), 2, "{strategy:?}");
            assert!(solved.is_conflict_free(3), "{strategy:?}");
        }
    }

    #[test]
    fn same_cage_occupancy_is_a_conflict() {
        let outcome = RoutingOutcome {
            paths: vec![
                ParticlePath {
                    id: ParticleId(1),
                    positions: vec![GridCoord::new(4, 4)],
                },
                ParticlePath {
                    id: ParticleId(2),
                    positions: vec![GridCoord::new(4, 4)],
                },
            ],
            unrouted: vec![],
            stranded: vec![],
            makespan: 0,
            total_moves: 0,
        };
        assert!(!outcome.is_conflict_free(1));
        assert!(
            outcome.is_conflict_free(0),
            "separation 0 disables the rule"
        );
    }

    #[test]
    fn density_sweep_greedy_livelocks_within_bounded_steps_astar_succeeds() {
        // Head-on traffic at increasing density: the greedy baseline must
        // terminate (bounded by max_steps, i.e. no unbounded livelock) but
        // fail some particles, while prioritized A* routes everyone.
        let dims = GridDims::new(24, 11);
        for pairs in [2u32, 3, 4] {
            let mut requests = Vec::new();
            for k in 0..pairs {
                let y = 1 + 3 * k;
                requests.push(request(u64::from(2 * k), (1, y), (22, y)));
                requests.push(request(u64::from(2 * k + 1), (22, y), (1, y)));
            }
            let problem = RoutingProblem::new(dims, requests.clone());

            let greedy = Router::new(RoutingStrategy::Greedy)
                .solve(&problem)
                .unwrap();
            // Livelock is *detected*: the planner returns (it does not spin
            // past the horizon) and reports who is stuck.
            assert!(greedy.makespan <= problem.max_steps);
            assert!(
                !greedy.unrouted.is_empty(),
                "greedy should livelock on head-on traffic at {pairs} pairs"
            );

            let astar = Router::new(RoutingStrategy::PrioritizedAStar)
                .solve(&problem)
                .unwrap();
            assert!(
                astar.unrouted.is_empty(),
                "A* failed {:?} at {pairs} pairs",
                astar.unrouted
            );
            assert!(astar.is_conflict_free(problem.min_separation));
        }
    }

    #[test]
    fn path_accessors_are_consistent() {
        let problem = RoutingProblem::new(GridDims::square(16), vec![request(7, (2, 2), (5, 2))]);
        let outcome = Router::default().solve(&problem).unwrap();
        let path = &outcome.paths[0];
        assert_eq!(path.id, ParticleId(7));
        assert_eq!(path.position_at(0), GridCoord::new(2, 2));
        assert_eq!(path.position_at(100), GridCoord::new(5, 2));
        assert_eq!(path.arrival_step(), 3);
        assert_eq!(path.move_count(), 3);
    }
}
