//! Deterministic replay: fold a journal back into a [`ChipState`].

use crate::error::ManipulationError;
use crate::journal::event::Event;
use crate::journal::log::Journal;
use crate::state::ChipState;
use labchip_units::GridDims;
use std::fmt;

/// A journal event that cannot be applied to the reconstructed state —
/// i.e. the journal does not describe a valid execution (corruption,
/// truncation mid-invariant, or a recorder bug). Any replay error counts
/// as a divergence in the E14 sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A grid operation in the journal was rejected on replay.
    Apply {
        /// Index of the offending event in the journal.
        index: usize,
        /// The rejection.
        source: ManipulationError,
    },
    /// A [`Event::Removed`] entry recorded a different origin cage than
    /// the reconstructed grid produced.
    RemovedMismatch {
        /// Index of the offending event in the journal.
        index: usize,
        /// The origin recorded in the journal.
        expected: labchip_units::GridCoord,
        /// The origin the replayed grid reported.
        actual: labchip_units::GridCoord,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Apply { index, source } => {
                write!(f, "journal event #{index} failed to apply: {source}")
            }
            ReplayError::RemovedMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "journal event #{index}: removal origin {expected} but replay found {actual}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Apply { source, .. } => Some(source),
            ReplayError::RemovedMismatch { .. } => None,
        }
    }
}

/// Replays a journal from an empty chip into a fresh [`ChipState`].
///
/// The result is bit-identical to the live state that recorded the
/// journal: grid contents, plan map and time ledger all match exactly
/// (`f64` ledger values are reproduced bit-for-bit because events store
/// the charged deltas, applied in the original order). Phase markers are
/// skipped; the replayed state carries no journal of its own.
///
/// # Errors
///
/// Returns a [`ReplayError`] if any event cannot be applied — a corrupt
/// or internally inconsistent journal.
///
/// # Panics
///
/// Panics if `min_separation` is zero (see
/// [`ChipState::with_separation`]).
pub fn replay(
    journal: &Journal,
    dims: GridDims,
    min_separation: u32,
) -> Result<ChipState, ReplayError> {
    let mut state = ChipState::with_separation(dims, min_separation);
    for (index, event) in journal.events().iter().enumerate() {
        apply_event(&mut state, event, index)?;
    }
    Ok(state)
}

/// Applies one journal event to a state under reconstruction — the single
/// fold step [`replay`] iterates. Exposed so incremental consumers (the
/// fleet shard-group workers, which fold per-phase event segments between
/// rendezvous barriers) share the exact replay semantics: markers are
/// skipped, removals and handoff exports cross-check their recorded
/// origin, and handoff import/export behave as place/remove.
///
/// # Errors
///
/// Returns a [`ReplayError`] tagged with `index` if the event cannot be
/// applied to `state`.
pub fn apply_event(state: &mut ChipState, event: &Event, index: usize) -> Result<(), ReplayError> {
    match event {
        Event::PhaseStarted { .. } | Event::PhaseFinished { .. } | Event::PhaseAborted { .. } => {}
        Event::Placed { id, at } | Event::HandoffImported { id, at, .. } => {
            state
                .place(*id, *at)
                .map_err(|source| ReplayError::Apply { index, source })?;
        }
        Event::Removed { id, from } | Event::HandoffExported { id, from, .. } => {
            let actual = state
                .remove(*id)
                .map_err(|source| ReplayError::Apply { index, source })?;
            if actual != *from {
                return Err(ReplayError::RemovedMismatch {
                    index,
                    expected: *from,
                    actual,
                });
            }
        }
        Event::PlacedMerged { id, at } => state.place_merged(*id, *at),
        Event::PlanReplaced { goals } => state.set_plan_from_goals(goals.iter().copied()),
        Event::Charged { ledger, seconds } => state.charge(*ledger, *seconds),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cage::ParticleId;
    use crate::state::TimeLedger;
    use labchip_units::{GridCoord, Seconds};

    #[test]
    fn replay_reconstructs_a_live_run_bit_for_bit() {
        let dims = GridDims::square(16);
        let mut live = ChipState::with_separation(dims, 2);
        live.attach_journal();
        live.place(ParticleId(1), GridCoord::new(2, 2)).unwrap();
        live.place(ParticleId(2), GridCoord::new(8, 8)).unwrap();
        live.set_plan_from_goals([GridCoord::new(8, 8), GridCoord::new(12, 2)]);
        live.charge(TimeLedger::Motion, Seconds::new(0.4));
        live.charge(TimeLedger::Sensing, Seconds::new(0.1));
        live.remove(ParticleId(1)).unwrap();
        live.place_merged(ParticleId(3), GridCoord::new(8, 8));

        let journal = live.take_journal().expect("journal attached");
        let replayed = replay(&journal, dims, 2).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(replayed.state_hash(), live.state_hash());
    }

    #[test]
    fn replay_of_a_prefix_matches_the_state_at_that_point() {
        let dims = GridDims::square(12);
        let mut live = ChipState::new(dims);
        live.attach_journal();
        live.place(ParticleId(0), GridCoord::new(1, 1)).unwrap();
        let hash_after_one = {
            let journal = live.journal().unwrap().clone();
            replay(&journal, dims, live.grid().min_separation())
                .unwrap()
                .state_hash()
        };
        live.place(ParticleId(1), GridCoord::new(5, 5)).unwrap();

        let sep = live.grid().min_separation();
        let journal = live.take_journal().unwrap();
        let prefix = journal.truncated(1);
        let replayed = replay(&prefix, dims, sep).unwrap();
        assert_eq!(replayed.state_hash(), hash_after_one);
        assert_eq!(replayed.particle_count(), 1);
    }

    #[test]
    fn corrupt_journals_are_rejected_not_panicked() {
        let dims = GridDims::square(8);
        // Removing a particle that was never placed.
        let mut journal = Journal::new();
        journal.record(Event::Removed {
            id: ParticleId(9),
            from: GridCoord::new(1, 1),
        });
        let err = replay(&journal, dims, 1).unwrap_err();
        assert!(matches!(err, ReplayError::Apply { index: 0, .. }));
        assert!(err.to_string().contains("#0"));

        // A removal whose recorded origin disagrees with the grid.
        let mut journal = Journal::new();
        journal.record(Event::Placed {
            id: ParticleId(1),
            at: GridCoord::new(2, 2),
        });
        journal.record(Event::Removed {
            id: ParticleId(1),
            from: GridCoord::new(3, 3),
        });
        let err = replay(&journal, dims, 1).unwrap_err();
        assert!(matches!(err, ReplayError::RemovedMismatch { index: 1, .. }));
    }

    #[test]
    fn markers_do_not_perturb_replay() {
        let dims = GridDims::square(8);
        let mut journal = Journal::new();
        journal.record(Event::PhaseStarted {
            index: 0,
            name: "load".into(),
        });
        journal.record(Event::Placed {
            id: ParticleId(1),
            at: GridCoord::new(4, 4),
        });
        journal.record(Event::PhaseAborted {
            index: 0,
            reason: "injected".into(),
        });
        let state = replay(&journal, dims, 1).unwrap();
        assert_eq!(state.particle_count(), 1);
    }

    #[test]
    fn handoff_events_replay_as_remove_and_place() {
        let dims = GridDims::square(8);
        let mut journal = Journal::new();
        journal.record(Event::Placed {
            id: ParticleId(4),
            at: GridCoord::new(6, 3),
        });
        journal.record(Event::HandoffExported {
            id: ParticleId(4),
            from: GridCoord::new(6, 3),
            to_shard: 1,
        });
        journal.record(Event::HandoffImported {
            id: ParticleId(4),
            at: GridCoord::new(1, 3),
            from_shard: 0,
        });
        let state = replay(&journal, dims, 1).unwrap();
        assert_eq!(state.particle_count(), 1);
        assert_eq!(
            state.grid().position(ParticleId(4)).unwrap(),
            GridCoord::new(1, 3)
        );

        // An export whose recorded origin disagrees with the grid is a
        // divergence, exactly like a plain removal.
        let mut journal = Journal::new();
        journal.record(Event::Placed {
            id: ParticleId(4),
            at: GridCoord::new(6, 3),
        });
        journal.record(Event::HandoffExported {
            id: ParticleId(4),
            from: GridCoord::new(5, 3),
            to_shard: 1,
        });
        let err = replay(&journal, dims, 1).unwrap_err();
        assert!(matches!(err, ReplayError::RemovedMismatch { index: 1, .. }));
    }
}
