//! The typed event vocabulary of the chip-state journal.

use crate::cage::ParticleId;
use crate::state::TimeLedger;
use labchip_units::{GridCoord, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One chip-state mutation (or phase marker) in the append-only journal.
///
/// State events ([`Placed`](Event::Placed), [`Removed`](Event::Removed),
/// [`PlacedMerged`](Event::PlacedMerged), [`PlanReplaced`](Event::PlanReplaced),
/// [`Charged`](Event::Charged)) are recorded by the
/// [`ChipState`](crate::state::ChipState) mutators themselves, *after* the
/// mutation succeeded — a journal never contains a rejected operation.
/// Marker events carry no state and are ignored by
/// [`replay`](crate::journal::replay); they delimit assay phases so the
/// journal doubles as an execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// An assay phase began (marker).
    PhaseStarted {
        /// Zero-based index of the phase within its protocol.
        index: usize,
        /// Phase name as reported by the phase itself.
        name: String,
    },
    /// An assay phase completed normally (marker).
    PhaseFinished {
        /// Zero-based index of the phase within its protocol.
        index: usize,
    },
    /// An assay phase aborted without completing (marker).
    PhaseAborted {
        /// Zero-based index of the phase within its protocol.
        index: usize,
        /// Human-readable abort reason.
        reason: String,
    },
    /// A particle was placed on an empty, conflict-free cage.
    Placed {
        /// The particle.
        id: ParticleId,
        /// Where it was trapped.
        at: GridCoord,
    },
    /// A particle was removed from the grid.
    Removed {
        /// The particle.
        id: ParticleId,
        /// The cage it occupied when removed.
        from: GridCoord,
    },
    /// A particle was placed into an already-occupied cage (merge).
    PlacedMerged {
        /// The particle.
        id: ParticleId,
        /// The shared cage.
        at: GridCoord,
    },
    /// The plan map was replaced wholesale with these goal sites occupied.
    PlanReplaced {
        /// The intended occupancy sites.
        goals: Vec<GridCoord>,
    },
    /// Simulated chip time was charged to a ledger.
    Charged {
        /// Which ledger.
        ledger: TimeLedger,
        /// How much time.
        seconds: Seconds,
    },
    /// A particle left this shard across a fleet boundary (cross-shard
    /// handoff, export half). Recorded only in per-shard journals; on
    /// replay it behaves exactly like [`Removed`](Event::Removed),
    /// including the origin cross-check.
    HandoffExported {
        /// The particle.
        id: ParticleId,
        /// The cage it occupied in this shard when exported.
        from: GridCoord,
        /// Index of the destination shard in the fleet topology.
        to_shard: usize,
    },
    /// A particle arrived in this shard across a fleet boundary
    /// (cross-shard handoff, import half). Recorded only in per-shard
    /// journals; on replay it behaves exactly like
    /// [`Placed`](Event::Placed).
    HandoffImported {
        /// The particle.
        id: ParticleId,
        /// The cage it was trapped in on arrival.
        at: GridCoord,
        /// Index of the source shard in the fleet topology.
        from_shard: usize,
    },
}

impl Event {
    /// `true` for phase markers — events that carry no chip state and are
    /// skipped by replay.
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            Event::PhaseStarted { .. } | Event::PhaseFinished { .. } | Event::PhaseAborted { .. }
        )
    }

    /// Short kind tag, for diff summaries and coverage counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseStarted { .. } => "phase_started",
            Event::PhaseFinished { .. } => "phase_finished",
            Event::PhaseAborted { .. } => "phase_aborted",
            Event::Placed { .. } => "placed",
            Event::Removed { .. } => "removed",
            Event::PlacedMerged { .. } => "placed_merged",
            Event::PlanReplaced { .. } => "plan_replaced",
            Event::Charged { .. } => "charged",
            Event::HandoffExported { .. } => "handoff_exported",
            Event::HandoffImported { .. } => "handoff_imported",
        }
    }

    /// `true` for the cross-shard handoff pair — the events that only a
    /// fleet shard journal can contain.
    pub fn is_handoff(&self) -> bool {
        matches!(
            self,
            Event::HandoffExported { .. } | Event::HandoffImported { .. }
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::PhaseStarted { index, name } => write!(f, "phase[{index}] started: {name}"),
            Event::PhaseFinished { index } => write!(f, "phase[{index}] finished"),
            Event::PhaseAborted { index, reason } => {
                write!(f, "phase[{index}] aborted: {reason}")
            }
            Event::Placed { id, at } => write!(f, "place #{} at {at}", id.0),
            Event::Removed { id, from } => write!(f, "remove #{} from {from}", id.0),
            Event::PlacedMerged { id, at } => write!(f, "merge #{} into {at}", id.0),
            Event::PlanReplaced { goals } => write!(f, "plan replaced ({} goals)", goals.len()),
            Event::Charged { ledger, seconds } => {
                write!(f, "charge {ledger:?} {:.6} s", seconds.get())
            }
            Event::HandoffExported { id, from, to_shard } => {
                write!(f, "handoff #{} out of {from} to shard {to_shard}", id.0)
            }
            Event::HandoffImported { id, at, from_shard } => {
                write!(f, "handoff #{} into {at} from shard {from_shard}", id.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_are_markers_and_state_events_are_not() {
        assert!(Event::PhaseStarted {
            index: 0,
            name: "load".into()
        }
        .is_marker());
        assert!(Event::PhaseFinished { index: 0 }.is_marker());
        assert!(Event::PhaseAborted {
            index: 1,
            reason: "fault".into()
        }
        .is_marker());
        assert!(!Event::Placed {
            id: ParticleId(1),
            at: GridCoord::new(2, 3)
        }
        .is_marker());
        assert!(!Event::Charged {
            ledger: TimeLedger::Motion,
            seconds: Seconds::new(1.0)
        }
        .is_marker());
        let exported = Event::HandoffExported {
            id: ParticleId(1),
            from: GridCoord::new(2, 3),
            to_shard: 1,
        };
        let imported = Event::HandoffImported {
            id: ParticleId(1),
            at: GridCoord::new(0, 3),
            from_shard: 0,
        };
        assert!(!exported.is_marker() && !imported.is_marker());
        assert!(exported.is_handoff() && imported.is_handoff());
        assert!(!Event::PhaseFinished { index: 0 }.is_handoff());
        assert_eq!(exported.kind(), "handoff_exported");
        assert_eq!(imported.kind(), "handoff_imported");
    }

    #[test]
    fn events_round_trip_through_serde() {
        let events = vec![
            Event::PhaseStarted {
                index: 0,
                name: "load".into(),
            },
            Event::Placed {
                id: ParticleId(42),
                at: GridCoord::new(7, 9),
            },
            Event::Removed {
                id: ParticleId(42),
                from: GridCoord::new(7, 9),
            },
            Event::PlacedMerged {
                id: ParticleId(3),
                at: GridCoord::new(1, 1),
            },
            Event::PlanReplaced {
                goals: vec![GridCoord::new(0, 0), GridCoord::new(4, 4)],
            },
            Event::Charged {
                ledger: TimeLedger::Recovery,
                seconds: Seconds::new(0.125),
            },
            Event::HandoffExported {
                id: ParticleId(5),
                from: GridCoord::new(9, 2),
                to_shard: 1,
            },
            Event::HandoffImported {
                id: ParticleId(5),
                at: GridCoord::new(0, 2),
                from_shard: 0,
            },
            Event::PhaseAborted {
                index: 2,
                reason: "injected fault".into(),
            },
            Event::PhaseFinished { index: 2 },
        ];
        let json = serde_json::to_string(&events);
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
