//! Event-sourced chip state: the append-only journal, deterministic replay
//! and seeded fault injection.
//!
//! The paper's chip runs individual-cell assays that take hours of wall
//! time; a crash anywhere in a protocol used to lose the whole run. This
//! module turns [`ChipState`](crate::state::ChipState) into an
//! event-sourced model:
//!
//! * every state mutation — grid ops, plan replacement, time-ledger
//!   charges — is a typed, serde-round-trippable [`Event`] appended to a
//!   [`Journal`]. Events are emitted from *inside* the state's mutation
//!   choke points ([`ChipState::place`](crate::state::ChipState::place),
//!   [`remove`](crate::state::ChipState::remove), …), so no phase can
//!   mutate the chip behind the journal's back;
//! * [`replay`] folds a journal back into a `ChipState` that is
//!   **bit-identical** to the live run that produced it — the equivalence
//!   oracle that retired the legacy monolith;
//! * [`FaultPlan`] is the seeded, deterministic fault-injection harness:
//!   it arms a kill point after the Nth event, the phases poll
//!   [`ChipState::fault_tripped`](crate::state::ChipState::fault_tripped)
//!   and abort cleanly, and the workload layer's checkpoint/resume proves
//!   it reaches the same final state as an uninterrupted run (scenario
//!   E14);
//! * [`diff`] compares two journals event-by-event — the debugging tool
//!   for recovery-loop anomalies (e.g. open- vs closed-loop at the same
//!   seed, surfaced as `report journal-diff`).
//!
//! The phase markers ([`Event::PhaseStarted`] and friends) carry no state
//! and are skipped by [`replay`]; they exist so a journal reads as an
//! execution trace and so two journals can be diffed phase-by-phase.

mod diff;
mod event;
mod log;
mod replay;

pub use diff::{diff, DivergencePoint, JournalDiff};
pub use event::Event;
pub use log::{FaultPlan, Journal};
pub use replay::{apply_event, replay, ReplayError};
