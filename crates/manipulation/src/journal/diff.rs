//! Journal diffing: where do two executions first part ways?
//!
//! The debugging tool for recovery-loop anomalies: record the same
//! protocol open-loop and closed-loop at the same seed, diff the
//! journals, and the first divergence pinpoints the exact event where the
//! recovery controller changed the execution.

use crate::journal::event::Event;
use crate::journal::log::Journal;
use std::fmt;

/// The first point where two journals disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergencePoint {
    /// Index of the first differing event.
    pub index: usize,
    /// The event in journal A at that index (`None` if A ended first).
    pub a: Option<Event>,
    /// The event in journal B at that index (`None` if B ended first).
    pub b: Option<Event>,
}

/// Result of comparing two journals event-by-event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDiff {
    /// Length of the shared event prefix.
    pub common_prefix: usize,
    /// Total events in journal A.
    pub len_a: usize,
    /// Total events in journal B.
    pub len_b: usize,
    /// First divergence, if any.
    pub divergence: Option<DivergencePoint>,
}

impl JournalDiff {
    /// `true` when the two journals are event-for-event identical.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for JournalDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "journal A: {} events, journal B: {} events, common prefix: {}",
            self.len_a, self.len_b, self.common_prefix
        )?;
        match &self.divergence {
            None => write!(f, "journals are identical"),
            Some(point) => {
                writeln!(f, "first divergence at event #{}:", point.index)?;
                match &point.a {
                    Some(event) => writeln!(f, "  A: {event}")?,
                    None => writeln!(f, "  A: <end of journal>")?,
                }
                match &point.b {
                    Some(event) => write!(f, "  B: {event}"),
                    None => write!(f, "  B: <end of journal>"),
                }
            }
        }
    }
}

/// Compares two journals event-by-event.
pub fn diff(a: &Journal, b: &Journal) -> JournalDiff {
    let events_a = a.events();
    let events_b = b.events();
    let common_prefix = events_a
        .iter()
        .zip(events_b.iter())
        .take_while(|(x, y)| x == y)
        .count();
    let divergence = if common_prefix == events_a.len() && common_prefix == events_b.len() {
        None
    } else {
        Some(DivergencePoint {
            index: common_prefix,
            a: events_a.get(common_prefix).cloned(),
            b: events_b.get(common_prefix).cloned(),
        })
    };
    JournalDiff {
        common_prefix,
        len_a: events_a.len(),
        len_b: events_b.len(),
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cage::ParticleId;
    use labchip_units::GridCoord;

    fn placed(id: u64, x: u32) -> Event {
        Event::Placed {
            id: ParticleId(id),
            at: GridCoord::new(x, 1),
        }
    }

    #[test]
    fn identical_journals_diff_clean() {
        let mut a = Journal::new();
        a.record(placed(1, 2));
        a.record(placed(2, 6));
        let d = diff(&a, &a.clone());
        assert!(d.identical());
        assert_eq!(d.common_prefix, 2);
        assert!(d.to_string().contains("identical"));
    }

    #[test]
    fn diverging_journals_report_the_first_difference() {
        let mut a = Journal::new();
        a.record(placed(1, 2));
        a.record(placed(2, 6));
        let mut b = Journal::new();
        b.record(placed(1, 2));
        b.record(placed(2, 7));
        b.record(placed(3, 9));
        let d = diff(&a, &b);
        assert!(!d.identical());
        assert_eq!(d.common_prefix, 1);
        let point = d.divergence.as_ref().unwrap();
        assert_eq!(point.index, 1);
        assert_eq!(point.a, Some(placed(2, 6)));
        assert_eq!(point.b, Some(placed(2, 7)));
        assert!(d.to_string().contains("first divergence at event #1"));
    }

    #[test]
    fn prefix_journals_diverge_at_the_shorter_end() {
        let mut a = Journal::new();
        a.record(placed(1, 2));
        let mut b = a.clone();
        b.record(placed(2, 6));
        let d = diff(&a, &b);
        assert_eq!(d.common_prefix, 1);
        let point = d.divergence.unwrap();
        assert_eq!(point.a, None);
        assert_eq!(point.b, Some(placed(2, 6)));
    }
}
