//! The append-only journal and the seeded fault-injection plan.

use crate::journal::event::Event;
use serde::{Deserialize, Serialize};

/// An append-only log of chip-state [`Event`]s.
///
/// A journal only ever grows while attached to a live
/// [`ChipState`](crate::state::ChipState); the sole way to get a shorter
/// journal is [`truncated`](Journal::truncated), which builds a *new*
/// prefix journal (the checkpoint/resume tests rely on this to simulate a
/// crash that lost the tail of the log).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    events: Vec<Event>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of non-marker events (the ones replay applies).
    pub fn state_event_count(&self) -> usize {
        self.events.iter().filter(|e| !e.is_marker()).count()
    }

    /// A new journal holding only the first `len` events — the log a crash
    /// at that point would have left behind.
    pub fn truncated(&self, len: usize) -> Journal {
        Journal {
            events: self.events[..len.min(self.events.len())].to_vec(),
        }
    }
}

/// A deterministic kill point: execution aborts after the Nth journal
/// event.
///
/// Armed on a [`ChipState`](crate::state::ChipState) via
/// [`attach_journal_with_fault`](crate::state::ChipState::attach_journal_with_fault);
/// once the journal reaches `kill_after_events` events the state's
/// [`fault_tripped`](crate::state::ChipState::fault_tripped) flag latches
/// and the assay phases abort at their next poll point. Because the
/// journal records every mutation, "after the Nth event" lands kill
/// points inside load batches, mid-route, mid-recovery-round — wherever
/// the protocol happens to be mutating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Trip the fault once this many events have been journaled.
    pub kill_after_events: u64,
}

impl FaultPlan {
    /// A fault that trips after `n` journaled events.
    pub fn after(n: u64) -> Self {
        Self {
            kill_after_events: n,
        }
    }

    /// A deterministic, seeded sweep of `count` kill points stratified
    /// over `1..=total_events`: one point drawn per equal-width stratum,
    /// so the sweep covers early loading, mid-protocol routing and the
    /// recovery tail without clustering. The same `(seed, count,
    /// total_events)` always yields the same sweep.
    pub fn sweep(seed: u64, count: usize, total_events: u64) -> Vec<FaultPlan> {
        if total_events == 0 || count == 0 {
            return Vec::new();
        }
        let mut rng_state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut plans = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let lo = 1 + i * total_events / count as u64;
            let hi = 1 + (i + 1) * total_events / count as u64;
            let width = (hi - lo).max(1);
            let pick = lo + splitmix64(&mut rng_state) % width;
            plans.push(FaultPlan::after(pick.min(total_events)));
        }
        plans
    }
}

/// SplitMix64: the standard 64-bit mixing sequence — tiny, seedable and
/// statistically fine for picking kill points.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cage::ParticleId;
    use labchip_units::GridCoord;

    fn placed(id: u64) -> Event {
        Event::Placed {
            id: ParticleId(id),
            at: GridCoord::new(1, 1),
        }
    }

    #[test]
    fn journal_appends_and_truncates() {
        let mut journal = Journal::new();
        assert!(journal.is_empty());
        for id in 0..5 {
            journal.record(placed(id));
        }
        journal.record(Event::PhaseFinished { index: 0 });
        assert_eq!(journal.len(), 6);
        assert_eq!(journal.state_event_count(), 5);

        let prefix = journal.truncated(3);
        assert_eq!(prefix.len(), 3);
        assert_eq!(prefix.events(), &journal.events()[..3]);
        // Truncating past the end is a full copy, not a panic.
        assert_eq!(journal.truncated(100), journal);
    }

    #[test]
    fn journal_round_trips_through_serde() {
        let mut journal = Journal::new();
        journal.record(Event::PhaseStarted {
            index: 0,
            name: "load".into(),
        });
        journal.record(placed(7));
        let json = serde_json::to_string(&journal);
        let back: Journal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, journal);
    }

    #[test]
    fn sweep_is_deterministic_stratified_and_in_range() {
        let a = FaultPlan::sweep(2005, 50, 900);
        let b = FaultPlan::sweep(2005, 50, 900);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for (i, plan) in a.iter().enumerate() {
            assert!(plan.kill_after_events >= 1 && plan.kill_after_events <= 900);
            // Stratified: point i stays inside its stratum.
            let lo = 1 + i as u64 * 900 / 50;
            let hi = 1 + (i as u64 + 1) * 900 / 50;
            assert!(plan.kill_after_events >= lo && plan.kill_after_events < hi.max(lo + 1));
        }
        // A different seed moves at least one kill point.
        let c = FaultPlan::sweep(7, 50, 900);
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_degenerate_inputs_are_empty_or_clamped() {
        assert!(FaultPlan::sweep(1, 8, 0).is_empty());
        assert!(FaultPlan::sweep(1, 0, 100).is_empty());
        // More strata than events still lands every point in range.
        for plan in FaultPlan::sweep(9, 10, 3) {
            assert!(plan.kill_after_events >= 1 && plan.kill_after_events <= 3);
        }
    }
}
