//! The cage grid: which electrode hosts which particle.
//!
//! A cage occupies one counter-phase electrode; two occupied cages must keep
//! a minimum separation (in electrodes) or their potential wells merge and
//! the cells end up in the same trap. The [`CageGrid`] tracks particle
//! positions, enforces the separation rule, and exports the corresponding
//! electrode [`CagePattern`] for the actuation array.

use crate::error::ManipulationError;
use labchip_array::pattern::{CagePattern, PatternKind};
use labchip_units::{GridCoord, GridDims};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a tracked particle (cell or bead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParticleId(pub u64);

/// Occupancy and geometry of the cage layer.
///
/// Particles are stored in an ordered map keyed by id, so every iteration —
/// [`CageGrid::iter_particles`] included — is deterministic (ascending id)
/// without collecting and sorting first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CageGrid {
    dims: GridDims,
    min_separation: u32,
    particles: BTreeMap<u64, GridCoord>,
}

impl CageGrid {
    /// Default minimum Chebyshev separation between occupied cages, in
    /// electrodes.
    pub const DEFAULT_MIN_SEPARATION: u32 = 2;

    /// Creates an empty cage grid over an electrode array of size `dims`.
    pub fn new(dims: GridDims) -> Self {
        Self::with_separation(dims, Self::DEFAULT_MIN_SEPARATION)
    }

    /// Creates a grid with an explicit minimum separation.
    ///
    /// # Panics
    ///
    /// Panics if `min_separation` is zero.
    pub fn with_separation(dims: GridDims, min_separation: u32) -> Self {
        assert!(min_separation >= 1, "separation must be at least 1");
        Self {
            dims,
            min_separation,
            particles: BTreeMap::new(),
        }
    }

    /// Grid dimensions (same as the electrode array).
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Minimum Chebyshev separation between occupied cages.
    pub fn min_separation(&self) -> u32 {
        self.min_separation
    }

    /// Number of particles currently tracked.
    pub fn particle_count(&self) -> usize {
        self.particles.len()
    }

    /// Position of a particle.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::UnknownParticle`] for an untracked id.
    pub fn position(&self, id: ParticleId) -> Result<GridCoord, ManipulationError> {
        self.particles
            .get(&id.0)
            .copied()
            .ok_or(ManipulationError::UnknownParticle { id: id.0 })
    }

    /// All `(particle, position)` pairs, sorted by particle id.
    ///
    /// Allocates a fresh `Vec` per call; hot paths that only need to walk
    /// the particles should prefer the borrowing
    /// [`CageGrid::iter_particles`].
    pub fn particles(&self) -> Vec<(ParticleId, GridCoord)> {
        self.iter_particles().collect()
    }

    /// Borrowing iterator over `(particle, position)` pairs in ascending id
    /// order — no allocation, same deterministic order as
    /// [`CageGrid::particles`].
    pub fn iter_particles(&self) -> impl Iterator<Item = (ParticleId, GridCoord)> + '_ {
        self.particles
            .iter()
            .map(|(id, pos)| (ParticleId(*id), *pos))
    }

    /// Returns `true` when `coord` is free for a new cage: inside the grid
    /// and at least `min_separation` away (Chebyshev) from every occupied
    /// cage, ignoring the particles listed in `ignoring`.
    pub fn is_free_for(&self, coord: GridCoord, ignoring: &[ParticleId]) -> bool {
        if !self.dims.contains(coord) {
            return false;
        }
        self.particles.iter().all(|(id, pos)| {
            ignoring.iter().any(|ig| ig.0 == *id) || pos.chebyshev(coord) >= self.min_separation
        })
    }

    /// Places a new particle in a cage at `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::OutOfBounds`] or
    /// [`ManipulationError::SiteConflict`] when the position is unusable, and
    /// [`ManipulationError::SiteConflict`] if the id is already tracked.
    pub fn place(&mut self, id: ParticleId, coord: GridCoord) -> Result<(), ManipulationError> {
        if !self.dims.contains(coord) {
            return Err(ManipulationError::OutOfBounds { coord });
        }
        if self.particles.contains_key(&id.0) {
            return Err(ManipulationError::SiteConflict {
                coord,
                reason: format!("particle #{} is already on the grid", id.0),
            });
        }
        if !self.is_free_for(coord, &[]) {
            return Err(ManipulationError::SiteConflict {
                coord,
                reason: format!("another cage within {} electrodes", self.min_separation),
            });
        }
        self.particles.insert(id.0, coord);
        Ok(())
    }

    /// Removes a particle (e.g. recovered through the outlet).
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::UnknownParticle`] for an untracked id.
    pub fn remove(&mut self, id: ParticleId) -> Result<GridCoord, ManipulationError> {
        self.particles
            .remove(&id.0)
            .ok_or(ManipulationError::UnknownParticle { id: id.0 })
    }

    /// Moves a particle's cage to an adjacent (or identical) electrode.
    ///
    /// # Errors
    ///
    /// Returns an error when the particle is unknown, the step is longer than
    /// one electrode, the target is outside the grid, or the target violates
    /// the separation rule.
    pub fn step(&mut self, id: ParticleId, to: GridCoord) -> Result<(), ManipulationError> {
        let from = self.position(id)?;
        if from.chebyshev(to) > 1 {
            return Err(ManipulationError::SiteConflict {
                coord: to,
                reason: format!("cage can only move one electrode per step (from {from})"),
            });
        }
        if !self.dims.contains(to) {
            return Err(ManipulationError::OutOfBounds { coord: to });
        }
        if !self.is_free_for(to, &[id]) {
            return Err(ManipulationError::SiteConflict {
                coord: to,
                reason: "target cage too close to another occupied cage".into(),
            });
        }
        self.particles.insert(id.0, to);
        Ok(())
    }

    /// Applies one synchronous cage-pattern step: every listed particle moves
    /// (at most one electrode) at the same instant, exactly as the hardware
    /// reprograms the whole pattern in one frame. Validation is performed on
    /// the *resulting* configuration, so convoys of cages moving together are
    /// accepted even though an intermediate sequential state would appear to
    /// violate the separation rule.
    ///
    /// # Errors
    ///
    /// Returns an error — and leaves the grid untouched — when a particle is
    /// unknown, a move is longer than one electrode or leaves the grid, or
    /// the resulting configuration violates the separation rule.
    pub fn apply_step(
        &mut self,
        moves: &[(ParticleId, GridCoord)],
    ) -> Result<(), ManipulationError> {
        // Build the proposed configuration.
        let mut proposed: BTreeMap<u64, GridCoord> = self.particles.clone();
        for (id, to) in moves {
            let from = self.position(*id)?;
            if from.chebyshev(*to) > 1 {
                return Err(ManipulationError::SiteConflict {
                    coord: *to,
                    reason: format!("cage can only move one electrode per step (from {from})"),
                });
            }
            if !self.dims.contains(*to) {
                return Err(ManipulationError::OutOfBounds { coord: *to });
            }
            proposed.insert(id.0, *to);
        }
        // Validate pairwise separation of the proposed configuration.
        let entries: Vec<(u64, GridCoord)> = proposed.iter().map(|(k, v)| (*k, *v)).collect();
        for (i, (id_a, pos_a)) in entries.iter().enumerate() {
            for (id_b, pos_b) in &entries[i + 1..] {
                if pos_a.chebyshev(*pos_b) < self.min_separation {
                    return Err(ManipulationError::SiteConflict {
                        coord: *pos_b,
                        reason: format!(
                            "particles #{id_a} and #{id_b} would end up {} apart",
                            pos_a.chebyshev(*pos_b)
                        ),
                    });
                }
            }
        }
        self.particles = proposed;
        Ok(())
    }

    /// Places a particle *without* enforcing the separation rule. This is the
    /// merge primitive: the one situation in which two particles legitimately
    /// share a cage (their traps have been deliberately coalesced).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn place_merged(&mut self, id: ParticleId, coord: GridCoord) {
        assert!(self.dims.contains(coord), "merge target outside the grid");
        self.particles.insert(id.0, coord);
    }

    /// Exports the current occupancy as an electrode cage pattern.
    pub fn to_pattern(&self) -> CagePattern {
        let sites: Vec<GridCoord> = self.particles.values().copied().collect();
        CagePattern::new(self.dims, PatternKind::Custom(sites))
            .expect("tracked positions are always inside the grid")
    }

    /// Loads particles at the sites of a cage pattern (used after an initial
    /// sample-load detection pass), assigning sequential ids starting at
    /// `first_id`.
    ///
    /// # Errors
    ///
    /// Returns the first placement error encountered.
    pub fn load_from_pattern(
        &mut self,
        pattern: &CagePattern,
        first_id: u64,
    ) -> Result<Vec<ParticleId>, ManipulationError> {
        let mut ids = Vec::new();
        for (offset, site) in pattern.cage_sites().iter().enumerate() {
            let id = ParticleId(first_id + offset as u64);
            self.place(id, *site)?;
            ids.push(id);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CageGrid {
        CageGrid::new(GridDims::square(16))
    }

    #[test]
    fn place_and_query() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert_eq!(g.position(ParticleId(1)).unwrap(), GridCoord::new(4, 4));
        assert_eq!(g.particle_count(), 1);
        assert!(g.position(ParticleId(2)).is_err());
        assert_eq!(g.particles().len(), 1);
    }

    #[test]
    fn separation_rule_is_enforced_on_place() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        // Adjacent electrode: cages would merge.
        let err = g.place(ParticleId(2), GridCoord::new(5, 4)).unwrap_err();
        assert!(matches!(err, ManipulationError::SiteConflict { .. }));
        // Two electrodes away is allowed with the default separation of 2.
        g.place(ParticleId(2), GridCoord::new(6, 4)).unwrap();
        assert_eq!(g.particle_count(), 2);
    }

    #[test]
    fn duplicate_ids_and_out_of_bounds_are_rejected() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(0, 0)).unwrap();
        assert!(g.place(ParticleId(1), GridCoord::new(8, 8)).is_err());
        assert!(matches!(
            g.place(ParticleId(2), GridCoord::new(16, 0)),
            Err(ManipulationError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn step_moves_one_electrode_at_a_time() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        g.step(ParticleId(1), GridCoord::new(5, 4)).unwrap();
        g.step(ParticleId(1), GridCoord::new(5, 5)).unwrap();
        assert_eq!(g.position(ParticleId(1)).unwrap(), GridCoord::new(5, 5));
        // Jumping two electrodes is not a physical cage move.
        assert!(g.step(ParticleId(1), GridCoord::new(8, 5)).is_err());
        // Staying put is allowed.
        g.step(ParticleId(1), GridCoord::new(5, 5)).unwrap();
    }

    #[test]
    fn step_respects_separation_from_other_cages() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        g.place(ParticleId(2), GridCoord::new(7, 4)).unwrap();
        // Moving particle 1 next to particle 2 would merge the cages.
        assert!(g.step(ParticleId(1), GridCoord::new(5, 4)).is_ok());
        assert!(g.step(ParticleId(1), GridCoord::new(6, 4)).is_err());
    }

    #[test]
    fn apply_step_accepts_a_moving_convoy() {
        // Two cages exactly two electrodes apart moving in the same direction
        // at the same instant: fine as a synchronous step, even though moving
        // them one at a time would transiently violate the separation rule.
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        g.place(ParticleId(2), GridCoord::new(6, 4)).unwrap();
        g.apply_step(&[
            (ParticleId(1), GridCoord::new(5, 4)),
            (ParticleId(2), GridCoord::new(7, 4)),
        ])
        .unwrap();
        assert_eq!(g.position(ParticleId(1)).unwrap(), GridCoord::new(5, 4));
        assert_eq!(g.position(ParticleId(2)).unwrap(), GridCoord::new(7, 4));
    }

    #[test]
    fn apply_step_rejects_configurations_that_merge_cages() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        g.place(ParticleId(2), GridCoord::new(6, 4)).unwrap();
        // Only the left particle moves right: the result would be adjacent.
        let err = g
            .apply_step(&[
                (ParticleId(1), GridCoord::new(5, 4)),
                (ParticleId(2), GridCoord::new(6, 4)),
            ])
            .unwrap_err();
        assert!(matches!(err, ManipulationError::SiteConflict { .. }));
        // The grid is unchanged after the failed step.
        assert_eq!(g.position(ParticleId(1)).unwrap(), GridCoord::new(4, 4));
        // A two-electrode jump is also rejected.
        assert!(g
            .apply_step(&[(ParticleId(1), GridCoord::new(2, 4))])
            .is_err());
        // Unknown particles are rejected.
        assert!(g
            .apply_step(&[(ParticleId(9), GridCoord::new(2, 4))])
            .is_err());
    }

    #[test]
    fn remove_frees_the_site() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert_eq!(g.remove(ParticleId(1)).unwrap(), GridCoord::new(4, 4));
        assert!(g.remove(ParticleId(1)).is_err());
        // The site is free again.
        g.place(ParticleId(2), GridCoord::new(4, 4)).unwrap();
    }

    #[test]
    fn pattern_round_trip() {
        let mut g = grid();
        g.place(ParticleId(1), GridCoord::new(2, 2)).unwrap();
        g.place(ParticleId(2), GridCoord::new(8, 8)).unwrap();
        let pattern = g.to_pattern();
        assert_eq!(pattern.cage_count(), 2);

        let mut g2 = CageGrid::new(GridDims::square(16));
        let ids = g2.load_from_pattern(&pattern, 100).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(g2.particle_count(), 2);
    }

    #[test]
    fn custom_separation() {
        let mut g = CageGrid::with_separation(GridDims::square(16), 3);
        g.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert!(g.place(ParticleId(2), GridCoord::new(6, 4)).is_err());
        assert!(g.place(ParticleId(2), GridCoord::new(7, 4)).is_ok());
    }

    #[test]
    #[should_panic(expected = "separation")]
    fn zero_separation_rejected() {
        let _ = CageGrid::with_separation(GridDims::square(8), 0);
    }
}
