//! Throughput metrics of manipulation campaigns.

use labchip_units::Seconds;
use serde::{Deserialize, Serialize};

/// Aggregate figures of a routing / manipulation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Number of particles that were asked to move.
    pub requested: usize,
    /// Number that reached their goals.
    pub completed: usize,
    /// Steps until the last completed particle arrived.
    pub makespan_steps: usize,
    /// Total individual cage moves.
    pub total_moves: usize,
    /// Duration of one cage step.
    pub step_period: Seconds,
}

impl ThroughputReport {
    /// Fraction of requests completed.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.completed as f64 / self.requested as f64
        }
    }

    /// Wall-clock duration of the campaign.
    pub fn duration(&self) -> Seconds {
        self.step_period * self.makespan_steps as f64
    }

    /// Completed particles per second of wall-clock time — the headline
    /// throughput figure of massively parallel manipulation.
    pub fn particles_per_second(&self) -> f64 {
        let d = self.duration().get();
        if d <= 0.0 {
            0.0
        } else {
            self.completed as f64 / d
        }
    }

    /// Average number of particles in motion per step (parallelism factor).
    pub fn parallelism(&self) -> f64 {
        if self.makespan_steps == 0 {
            0.0
        } else {
            self.total_moves as f64 / self.makespan_steps as f64
        }
    }
}

/// Accumulated figures of a sustained manipulation workload: repeated
/// route→sense→flush cycles, as driven by the batch workload driver (E11).
///
/// Distinguishes *chip time* (the simulated fluidics/sensing/motion budget)
/// from *planner time* (host wall-clock spent computing routes) — the paper's
/// thesis is that the chip is never the bottleneck, and this split shows
/// whether the software keeps up.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SustainedThroughput {
    /// Cycles executed.
    pub cycles: usize,
    /// Particles requested across all cycles.
    pub requested: usize,
    /// Particles routed to their targets across all cycles.
    pub completed: usize,
    /// Individual cage moves across all cycles.
    pub total_moves: usize,
    /// Simulated chip time across all cycles (fluidics + sensing + motion).
    pub chip_time: Seconds,
    /// Host wall-clock time spent planning routes.
    pub planning_time: Seconds,
}

impl SustainedThroughput {
    /// Folds one cycle into the running totals.
    pub fn record(
        &mut self,
        requested: usize,
        completed: usize,
        moves: usize,
        chip_time: Seconds,
        planning_time: Seconds,
    ) {
        self.cycles += 1;
        self.requested += requested;
        self.completed += completed;
        self.total_moves += moves;
        self.chip_time += chip_time;
        self.planning_time += planning_time;
    }

    /// Fraction of requests completed across all cycles.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.completed as f64 / self.requested as f64
        }
    }

    /// Planned cage moves per second of *planner* wall-clock — the software
    /// throughput figure ("moves/sec" in the E11 report).
    pub fn moves_per_planning_second(&self) -> f64 {
        let t = self.planning_time.get();
        if t <= 0.0 {
            0.0
        } else {
            self.total_moves as f64 / t
        }
    }

    /// Completed particles per second of simulated chip time.
    pub fn particles_per_chip_second(&self) -> f64 {
        let t = self.chip_time.get();
        if t <= 0.0 {
            0.0
        } else {
            self.completed as f64 / t
        }
    }

    /// Ratio of chip time to planning time; values ≫ 1 mean the planner
    /// keeps well ahead of the hardware.
    pub fn planner_headroom(&self) -> f64 {
        let p = self.planning_time.get();
        if p <= 0.0 {
            f64::INFINITY
        } else {
            self.chip_time.get() / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ThroughputReport {
        ThroughputReport {
            requested: 100,
            completed: 95,
            makespan_steps: 50,
            total_moves: 3_000,
            step_period: Seconds::new(0.4),
        }
    }

    #[test]
    fn rates_and_durations() {
        let r = report();
        assert!((r.success_rate() - 0.95).abs() < 1e-12);
        assert!((r.duration().get() - 20.0).abs() < 1e-12);
        assert!((r.particles_per_second() - 4.75).abs() < 1e-12);
        assert!((r.parallelism() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_manipulation_beats_serial() {
        // The whole point of the array: moving 95 cells one at a time at 30
        // steps each would take 95×30×0.4 s = 19 minutes; in parallel it took
        // 20 seconds.
        let r = report();
        let serial_steps: usize = 95 * 30;
        let serial_duration = r.step_period * serial_steps as f64;
        assert!(r.duration().get() < serial_duration.get() / 10.0);
    }

    #[test]
    fn sustained_throughput_accumulates_cycles() {
        let mut s = SustainedThroughput::default();
        s.record(100, 95, 3_000, Seconds::new(30.0), Seconds::new(0.5));
        s.record(100, 90, 2_800, Seconds::new(30.0), Seconds::new(0.5));
        assert_eq!(s.cycles, 2);
        assert_eq!(s.requested, 200);
        assert_eq!(s.completed, 185);
        assert!((s.success_rate() - 0.925).abs() < 1e-12);
        assert!((s.moves_per_planning_second() - 5_800.0).abs() < 1e-9);
        assert!((s.particles_per_chip_second() - 185.0 / 60.0).abs() < 1e-12);
        assert!((s.planner_headroom() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_throughput_degenerate_cases() {
        let s = SustainedThroughput::default();
        assert_eq!(s.success_rate(), 1.0);
        assert_eq!(s.moves_per_planning_second(), 0.0);
        assert_eq!(s.particles_per_chip_second(), 0.0);
        assert!(s.planner_headroom().is_infinite());
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = ThroughputReport {
            requested: 0,
            completed: 0,
            makespan_steps: 0,
            total_moves: 0,
            step_period: Seconds::new(0.4),
        };
        assert_eq!(r.success_rate(), 1.0);
        assert_eq!(r.particles_per_second(), 0.0);
        assert_eq!(r.parallelism(), 0.0);
    }
}
