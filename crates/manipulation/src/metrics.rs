//! Throughput metrics of manipulation campaigns.

use labchip_units::Seconds;
use serde::{Deserialize, Serialize};

/// Aggregate figures of a routing / manipulation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Number of particles that were asked to move.
    pub requested: usize,
    /// Number that reached their goals.
    pub completed: usize,
    /// Steps until the last completed particle arrived.
    pub makespan_steps: usize,
    /// Total individual cage moves.
    pub total_moves: usize,
    /// Duration of one cage step.
    pub step_period: Seconds,
}

impl ThroughputReport {
    /// Fraction of requests completed.
    pub fn success_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.completed as f64 / self.requested as f64
        }
    }

    /// Wall-clock duration of the campaign.
    pub fn duration(&self) -> Seconds {
        self.step_period * self.makespan_steps as f64
    }

    /// Completed particles per second of wall-clock time — the headline
    /// throughput figure of massively parallel manipulation.
    pub fn particles_per_second(&self) -> f64 {
        let d = self.duration().get();
        if d <= 0.0 {
            0.0
        } else {
            self.completed as f64 / d
        }
    }

    /// Average number of particles in motion per step (parallelism factor).
    pub fn parallelism(&self) -> f64 {
        if self.makespan_steps == 0 {
            0.0
        } else {
            self.total_moves as f64 / self.makespan_steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ThroughputReport {
        ThroughputReport {
            requested: 100,
            completed: 95,
            makespan_steps: 50,
            total_moves: 3_000,
            step_period: Seconds::new(0.4),
        }
    }

    #[test]
    fn rates_and_durations() {
        let r = report();
        assert!((r.success_rate() - 0.95).abs() < 1e-12);
        assert!((r.duration().get() - 20.0).abs() < 1e-12);
        assert!((r.particles_per_second() - 4.75).abs() < 1e-12);
        assert!((r.parallelism() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_manipulation_beats_serial() {
        // The whole point of the array: moving 95 cells one at a time at 30
        // steps each would take 95×30×0.4 s = 19 minutes; in parallel it took
        // 20 seconds.
        let r = report();
        let serial_steps: usize = 95 * 30;
        let serial_duration = r.step_period * serial_steps as f64;
        assert!(r.duration().get() < serial_duration.get() / 10.0);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = ThroughputReport {
            requested: 0,
            completed: 0,
            makespan_steps: 0,
            total_moves: 0,
            step_period: Seconds::new(0.4),
        };
        assert_eq!(r.success_rate(), 1.0);
        assert_eq!(r.particles_per_second(), 0.0);
        assert_eq!(r.parallelism(), 0.0);
    }
}
