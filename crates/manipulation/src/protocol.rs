//! Assay protocols: declarative sequences of manipulation steps.
//!
//! A protocol is the software artefact a biologist would actually write: load
//! the sample, detect where the cells are, isolate the interesting ones, move
//! them to the recovery port, discard the rest. The executor turns each step
//! into [`Manipulator`] operations and accounts for the time spent in each
//! phase — producing the electronics/mechanics/fluidics time breakdown of the
//! end-to-end experiment (E9).

use crate::cage::ParticleId;
use crate::error::ManipulationError;
use crate::ops::Manipulator;
use labchip_array::pattern::CagePattern;
use labchip_units::{GridCoord, Seconds};
use serde::{Deserialize, Serialize};

/// One step of an assay protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolStep {
    /// Load particles at the sites of a cage pattern (sample injection plus
    /// initial trapping), taking the given fluidic handling time.
    LoadSample {
        /// Where the particles end up trapped.
        pattern: CagePattern,
        /// Fluidic handling time (pipetting, settling, trapping).
        handling_time: Seconds,
    },
    /// Scan the sensors to build the occupancy map; `scan_time` is the total
    /// (averaged) scan duration.
    Detect {
        /// Total sensor scan time, including averaging.
        scan_time: Seconds,
    },
    /// Move one particle to a target cage.
    Move {
        /// Which particle.
        id: ParticleId,
        /// Where it must go.
        goal: GridCoord,
    },
    /// Move a group of particles concurrently.
    MoveGroup {
        /// (particle, goal) pairs.
        targets: Vec<(ParticleId, GridCoord)>,
    },
    /// Bring two particles into the same cage.
    Merge {
        /// The stationary particle.
        keep: ParticleId,
        /// The particle routed into the shared cage.
        bring: ParticleId,
    },
    /// Isolate a particle to a clear edge cage.
    Isolate {
        /// Which particle.
        id: ParticleId,
    },
    /// Move every particle except the listed ones towards the waste edge.
    Wash {
        /// Particles to keep in place.
        keep: Vec<ParticleId>,
    },
    /// Remove a particle from the chip (recovered through the outlet),
    /// taking the given fluidic handling time.
    Recover {
        /// Which particle.
        id: ParticleId,
        /// Fluidic handling time.
        handling_time: Seconds,
    },
}

/// A named list of protocol steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Human-readable name.
    pub name: String,
    /// The steps, executed in order.
    pub steps: Vec<ProtocolStep>,
}

impl Protocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a step (builder style).
    pub fn with_step(mut self, step: ProtocolStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the protocol has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Where the time of a protocol went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Fluidic handling (loading, recovery).
    pub fluidics: Seconds,
    /// Sensor scanning and averaging.
    pub sensing: Seconds,
    /// Cage motion (the mechanics of dragging cells).
    pub motion: Seconds,
    /// Closed-loop recovery: targeted re-scans of suspect sites and the
    /// corrective cage moves they trigger when detection disagrees with the
    /// plan.
    pub recovery: Seconds,
}

impl TimeBreakdown {
    /// Total protocol duration.
    pub fn total(&self) -> Seconds {
        self.fluidics + self.sensing + self.motion + self.recovery
    }

    /// Field-wise difference `self - earlier`: the ledger charged between
    /// two snapshots (what one assay phase cost).
    pub fn delta_since(&self, earlier: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            fluidics: self.fluidics - earlier.fluidics,
            sensing: self.sensing - earlier.sensing,
            motion: self.motion - earlier.motion,
            recovery: self.recovery - earlier.recovery,
        }
    }
}

/// Result of executing a protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolReport {
    /// Protocol name.
    pub name: String,
    /// Steps executed.
    pub steps_executed: usize,
    /// Total cage steps across all motion operations.
    pub cage_steps: usize,
    /// Time breakdown by phase.
    pub time: TimeBreakdown,
    /// Particles recovered (removed from the chip).
    pub recovered: Vec<ParticleId>,
}

/// Executes protocols against a [`Manipulator`].
#[derive(Debug)]
pub struct ProtocolExecutor<'a> {
    manipulator: &'a mut Manipulator,
}

impl<'a> ProtocolExecutor<'a> {
    /// Creates an executor borrowing the manipulator.
    pub fn new(manipulator: &'a mut Manipulator) -> Self {
        Self { manipulator }
    }

    /// Runs a protocol to completion.
    ///
    /// # Errors
    ///
    /// Returns the first operation error; the manipulator state reflects the
    /// steps executed up to that point.
    pub fn run(&mut self, protocol: &Protocol) -> Result<ProtocolReport, ManipulationError> {
        let mut time = TimeBreakdown::default();
        let mut cage_steps = 0usize;
        let mut recovered = Vec::new();
        let mut next_particle_id = 0u64;

        for step in &protocol.steps {
            match step {
                ProtocolStep::LoadSample {
                    pattern,
                    handling_time,
                } => {
                    if pattern.dims() != self.manipulator.grid().dims() {
                        return Err(ManipulationError::InvalidProtocol {
                            reason: format!(
                                "load pattern built for {} but the chip is {}",
                                pattern.dims(),
                                self.manipulator.grid().dims()
                            ),
                        });
                    }
                    let ids = self
                        .manipulator
                        .grid_mut()
                        .load_from_pattern(pattern, next_particle_id)?;
                    next_particle_id += ids.len() as u64;
                    time.fluidics += *handling_time;
                }
                ProtocolStep::Detect { scan_time } => {
                    time.sensing += *scan_time;
                }
                ProtocolStep::Move { id, goal } => {
                    let report = self.manipulator.move_particle(*id, *goal)?;
                    cage_steps += report.steps;
                    time.motion += report.duration;
                }
                ProtocolStep::MoveGroup { targets } => {
                    let report = self.manipulator.move_group(targets)?;
                    cage_steps += report.steps;
                    time.motion += report.duration;
                }
                ProtocolStep::Merge { keep, bring } => {
                    let report = self.manipulator.merge(*keep, *bring)?;
                    cage_steps += report.steps;
                    time.motion += report.duration;
                }
                ProtocolStep::Isolate { id } => {
                    let report = self.manipulator.isolate(*id)?;
                    cage_steps += report.steps;
                    time.motion += report.duration;
                }
                ProtocolStep::Wash { keep } => {
                    let report = self.manipulator.wash_except(keep)?;
                    cage_steps += report.steps;
                    time.motion += report.duration;
                }
                ProtocolStep::Recover { id, handling_time } => {
                    self.manipulator.grid_mut().remove(*id)?;
                    recovered.push(*id);
                    time.fluidics += *handling_time;
                }
            }
        }

        Ok(ProtocolReport {
            name: protocol.name.clone(),
            steps_executed: protocol.steps.len(),
            cage_steps,
            time,
            recovered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labchip_array::pattern::PatternKind;
    use labchip_units::GridDims;

    fn load_pattern(dims: GridDims) -> CagePattern {
        CagePattern::new(
            dims,
            PatternKind::Custom(vec![
                GridCoord::new(4, 4),
                GridCoord::new(10, 4),
                GridCoord::new(16, 4),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn full_protocol_runs_and_accounts_time() {
        let dims = GridDims::square(24);
        let mut manipulator = Manipulator::new(dims);
        let protocol = Protocol::new("isolate-and-recover")
            .with_step(ProtocolStep::LoadSample {
                pattern: load_pattern(dims),
                handling_time: Seconds::from_minutes(2.0),
            })
            .with_step(ProtocolStep::Detect {
                scan_time: Seconds::from_millis(200.0),
            })
            .with_step(ProtocolStep::Move {
                id: ParticleId(0),
                goal: GridCoord::new(4, 18),
            })
            .with_step(ProtocolStep::Isolate { id: ParticleId(1) })
            .with_step(ProtocolStep::Wash {
                keep: vec![ParticleId(0), ParticleId(1)],
            })
            .with_step(ProtocolStep::Recover {
                id: ParticleId(1),
                handling_time: Seconds::from_minutes(1.0),
            });

        let mut executor = ProtocolExecutor::new(&mut manipulator);
        let report = executor.run(&protocol).unwrap();

        assert_eq!(report.steps_executed, 6);
        assert!(report.cage_steps > 0);
        assert_eq!(report.recovered, vec![ParticleId(1)]);
        // Fluidics dominates the budget: 3 minutes of handling vs seconds of
        // motion and milliseconds of sensing — the paper's "mass transfer is
        // slow" observation at assay level.
        assert!(report.time.fluidics > report.time.motion);
        assert!(report.time.motion > report.time.sensing);
        assert!(
            (report.time.total().get()
                - (report.time.fluidics.get()
                    + report.time.sensing.get()
                    + report.time.motion.get()))
            .abs()
                < 1e-9
        );
        // The recovered particle is gone from the grid.
        assert!(manipulator.grid().position(ParticleId(1)).is_err());
        assert_eq!(manipulator.grid().particle_count(), 2);
    }

    #[test]
    fn mismatched_load_pattern_is_rejected() {
        let mut manipulator = Manipulator::new(GridDims::square(24));
        let protocol = Protocol::new("bad-load").with_step(ProtocolStep::LoadSample {
            pattern: load_pattern(GridDims::square(30)),
            handling_time: Seconds::from_minutes(1.0),
        });
        let err = ProtocolExecutor::new(&mut manipulator)
            .run(&protocol)
            .unwrap_err();
        assert!(matches!(err, ManipulationError::InvalidProtocol { .. }));
    }

    #[test]
    fn recovering_unknown_particle_fails() {
        let mut manipulator = Manipulator::new(GridDims::square(24));
        let protocol = Protocol::new("bad-recover").with_step(ProtocolStep::Recover {
            id: ParticleId(3),
            handling_time: Seconds::from_minutes(1.0),
        });
        assert!(ProtocolExecutor::new(&mut manipulator)
            .run(&protocol)
            .is_err());
    }

    #[test]
    fn protocol_builder_accessors() {
        let p = Protocol::new("empty");
        assert!(p.is_empty());
        let p = p.with_step(ProtocolStep::Detect {
            scan_time: Seconds::from_millis(1.0),
        });
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.name, "empty");
    }

    #[test]
    fn merge_step_in_protocol() {
        let dims = GridDims::square(24);
        let mut manipulator = Manipulator::new(dims);
        let pattern = CagePattern::new(
            dims,
            PatternKind::Custom(vec![GridCoord::new(5, 5), GridCoord::new(15, 5)]),
        )
        .unwrap();
        let protocol = Protocol::new("merge")
            .with_step(ProtocolStep::LoadSample {
                pattern,
                handling_time: Seconds::from_minutes(1.0),
            })
            .with_step(ProtocolStep::Merge {
                keep: ParticleId(0),
                bring: ParticleId(1),
            });
        let report = ProtocolExecutor::new(&mut manipulator)
            .run(&protocol)
            .unwrap();
        assert!(report.cage_steps > 0);
        let a = manipulator.grid().position(ParticleId(0)).unwrap();
        let b = manipulator.grid().position(ParticleId(1)).unwrap();
        assert_eq!(a, b);
    }
}
