//! Error type for the manipulation crate.

use labchip_units::GridCoord;
use std::fmt;

/// Errors produced by the manipulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ManipulationError {
    /// A coordinate fell outside the cage grid.
    OutOfBounds {
        /// The offending coordinate.
        coord: GridCoord,
    },
    /// A cage that was expected to be free is occupied (or too close to
    /// another occupied cage).
    SiteConflict {
        /// The contested coordinate.
        coord: GridCoord,
        /// Explanation.
        reason: String,
    },
    /// A referenced particle does not exist.
    UnknownParticle {
        /// The missing particle's identifier.
        id: u64,
    },
    /// The router could not find a conflict-free solution.
    RoutingFailed {
        /// How many particles could not be routed.
        unrouted: usize,
        /// Explanation.
        reason: String,
    },
    /// A protocol step was invalid in the current state.
    InvalidProtocol {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for ManipulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManipulationError::OutOfBounds { coord } => {
                write!(f, "coordinate {coord} outside the cage grid")
            }
            ManipulationError::SiteConflict { coord, reason } => {
                write!(f, "site conflict at {coord}: {reason}")
            }
            ManipulationError::UnknownParticle { id } => write!(f, "unknown particle #{id}"),
            ManipulationError::RoutingFailed { unrouted, reason } => {
                write!(f, "routing failed for {unrouted} particle(s): {reason}")
            }
            ManipulationError::InvalidProtocol { reason } => {
                write!(f, "invalid protocol step: {reason}")
            }
        }
    }
}

impl std::error::Error for ManipulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ManipulationError::OutOfBounds {
            coord: GridCoord::new(9, 9)
        }
        .to_string()
        .contains("(9, 9)"));
        assert!(ManipulationError::UnknownParticle { id: 7 }
            .to_string()
            .contains("#7"));
        assert!(ManipulationError::RoutingFailed {
            unrouted: 3,
            reason: "horizon exceeded".into()
        }
        .to_string()
        .contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ManipulationError>();
    }
}
