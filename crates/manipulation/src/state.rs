//! The unified chip-state model: one owner for the cage grid and every view
//! derived from it.
//!
//! Before this module existed, each layer of the stack kept its own private
//! copy of "where the particles are": the workload driver held a
//! [`CageGrid`], the sensing path rebuilt a ground-truth
//! [`OccupancyMap`] from scratch before every scan, the actuation layer
//! re-exported a fresh [`CagePattern`] per step, and the simulator had yet
//! another truth-map builder of its own — all the same information, stitched
//! together by ad-hoc converters that re-ran on every phase of every cycle.
//!
//! [`ChipState`] collapses those copies into one model:
//!
//! * the [`CageGrid`] is the single source of truth for particle positions,
//!   mutated **only** through the typed operations on the state
//!   ([`place`](ChipState::place), [`remove`](ChipState::remove),
//!   [`place_merged`](ChipState::place_merged)) — the choke points that
//!   invalidate the caches *and* feed the event journal;
//! * the electrode [`CagePattern`] and the ground-truth [`OccupancyMap`] are
//!   **cached, dirty-tracked derivations** — rebuilt lazily only after the
//!   grid actually changed, so repeated reads inside a phase are free;
//! * the *plan* map (the occupancy the current protocol intends) and the
//!   per-phase [`TimeBreakdown`] ledger live alongside, because every
//!   consumer of the state needs them together: the sense phase diffs
//!   detected-vs-plan, the recovery loop diffs truth-vs-plan, the report
//!   charges time per phase.
//!
//! When a [`Journal`] is attached ([`attach_journal`](ChipState::attach_journal)),
//! every successful mutation is appended as a typed
//! [`crate::journal::Event`]; because the journal hangs off the same
//! choke points no phase can mutate the chip behind its back, and
//! [`replay`](crate::journal::replay) reconstructs the state bit-for-bit.
//! An armed [`FaultPlan`] latches [`fault_tripped`](ChipState::fault_tripped)
//! once the journal reaches the kill point — the hook the fault-injection
//! harness (E14) uses to kill execution mid-phase.
//!
//! The sensing crate's [`TruthSource`] is implemented here, so an
//! [`ArrayScanner`](labchip_sensing::array_scan::ArrayScanner) reads the
//! chip state directly (`scanner.scan_source(&mut state, …)`) instead of
//! forcing callers to materialise a truth map per scan.

use crate::cage::{CageGrid, ParticleId};
use crate::error::ManipulationError;
use crate::journal::{Event, FaultPlan, Journal};
use crate::protocol::TimeBreakdown;
use labchip_array::pattern::CagePattern;
use labchip_sensing::array_scan::TruthSource;
use labchip_sensing::detect::{Occupancy, OccupancyMap};
use labchip_units::{GridCoord, GridDims, Seconds};
use serde::{Deserialize, Serialize};

/// The cells mutated since the last [`ChipState::take_dirty`] drain — the
/// feed for warm-start router-cache invalidation (see
/// [`crate::sharding::RouterCache::invalidate_cells`]).
///
/// Tracking is per-cell and exact at the choke points: every typed mutator
/// marks precisely the coordinates it touched, so a consumer that
/// invalidates the [`crate::sharding::covering_tiles`] of each cell can
/// never serve a stale shard (no false negatives) and never drops more
/// than the ≤ 4 staggered tiles covering each cell (bounded
/// over-invalidation). If a single drain interval accumulates more marks
/// than the array has cells, the tracker saturates to [`DirtyRegions::All`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyRegions {
    /// Everything may have changed; drop the whole cache.
    All,
    /// Exactly these cells changed (duplicates possible, order is mutation
    /// order). Empty means no mutation since the last drain.
    Cells(Vec<GridCoord>),
}

impl DirtyRegions {
    /// Whether nothing was mutated since the last drain.
    pub fn is_clean(&self) -> bool {
        matches!(self, Self::Cells(cells) if cells.is_empty())
    }
}

/// The phase of an assay a time charge belongs to — the four ledgers of
/// [`TimeBreakdown`], addressable as data so composable phases can charge
/// time without hand-picking struct fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeLedger {
    /// Fluidic handling (loading, flushing, recovery through the outlet).
    Fluidics,
    /// Sensor scanning and averaging.
    Sensing,
    /// Cage motion.
    Motion,
    /// Closed-loop recovery (targeted re-scans and corrective moves).
    Recovery,
}

/// A serde-round-trippable snapshot of the durable chip state: grid, plan
/// and time ledger (the derived caches are rebuilt on demand, the journal
/// is stored separately by the checkpoint that owns the snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipStateSnapshot {
    /// The cage grid (positions, dims, separation).
    pub grid: CageGrid,
    /// The plan map.
    pub plan: OccupancyMap,
    /// The accumulated time ledger.
    pub time: TimeBreakdown,
}

/// One chip-state model shared by the simulator, router, scanner and driver:
/// the cage grid plus cached derivations, the plan map and the time ledger.
///
/// See the [module docs](self) for the ownership story.
#[derive(Debug, Clone)]
pub struct ChipState {
    grid: CageGrid,
    plan: OccupancyMap,
    time: TimeBreakdown,
    /// Lazily rebuilt electrode pattern (`None` = stale).
    pattern: Option<CagePattern>,
    /// Lazily rebuilt ground-truth occupancy (`None` = stale).
    occupancy: Option<OccupancyMap>,
    /// Event journal (opt-in; `None` = mutations are not recorded).
    journal: Option<Journal>,
    /// Armed kill point for fault injection.
    fault: Option<FaultPlan>,
    /// Latched once the journal reaches the armed kill point.
    tripped: bool,
    /// Cells mutated since the last [`take_dirty`](Self::take_dirty) drain.
    dirty: Vec<GridCoord>,
    /// Set when `dirty` overflowed the per-interval cap.
    dirty_all: bool,
}

/// Equality over the durable state — grid, plan and time ledger. The lazy
/// caches and the journal are bookkeeping, not state: a replayed chip with
/// cold caches and no journal still compares equal to the live one.
impl PartialEq for ChipState {
    fn eq(&self, other: &Self) -> bool {
        self.grid == other.grid && self.plan == other.plan && self.time == other.time
    }
}

impl ChipState {
    /// Creates an empty state over a `dims` array with the default cage
    /// separation.
    pub fn new(dims: GridDims) -> Self {
        Self::from_grid(CageGrid::new(dims))
    }

    /// Creates an empty state with an explicit minimum cage separation.
    ///
    /// # Panics
    ///
    /// Panics if `min_separation` is zero (see
    /// [`CageGrid::with_separation`]).
    pub fn with_separation(dims: GridDims, min_separation: u32) -> Self {
        Self::from_grid(CageGrid::with_separation(dims, min_separation))
    }

    /// Wraps an existing grid (its particles become the state's truth).
    pub fn from_grid(grid: CageGrid) -> Self {
        let dims = grid.dims();
        Self {
            grid,
            plan: OccupancyMap::new(dims),
            time: TimeBreakdown::default(),
            pattern: None,
            occupancy: None,
            journal: None,
            fault: None,
            tripped: false,
            dirty: Vec::new(),
            dirty_all: false,
        }
    }

    /// Array dimensions.
    pub fn dims(&self) -> GridDims {
        self.grid.dims()
    }

    /// Read access to the cage grid (does not disturb the caches).
    pub fn grid(&self) -> &CageGrid {
        &self.grid
    }

    /// Marks the derived caches stale. Every mutator below calls this;
    /// there is deliberately no public `&mut CageGrid` accessor — typed
    /// mutations are the choke points the cache tracking *and* the event
    /// journal depend on.
    fn invalidate(&mut self) {
        self.pattern = None;
        self.occupancy = None;
    }

    /// Marks one cell dirty, saturating to "everything" when a single
    /// drain interval touches more marks than the array has cells.
    fn mark_dirty(&mut self, at: GridCoord) {
        if self.dirty_all {
            return;
        }
        let dims = self.grid.dims();
        if self.dirty.len() >= dims.cols as usize * dims.rows as usize {
            self.dirty_all = true;
            self.dirty.clear();
            return;
        }
        self.dirty.push(at);
    }

    /// Drains the cells mutated since the previous drain. Used by cached
    /// routing to invalidate exactly the shards a mutation can have
    /// affected; the tracker restarts clean.
    pub fn take_dirty(&mut self) -> DirtyRegions {
        if std::mem::take(&mut self.dirty_all) {
            self.dirty.clear();
            return DirtyRegions::All;
        }
        DirtyRegions::Cells(std::mem::take(&mut self.dirty))
    }

    /// Appends an event to the journal (if one is attached) and latches
    /// the fault flag when an armed kill point is reached.
    fn record(&mut self, event: Event) {
        if let Some(journal) = self.journal.as_mut() {
            journal.record(event);
            if let Some(fault) = self.fault {
                if journal.len() as u64 >= fault.kill_after_events {
                    self.tripped = true;
                }
            }
        }
    }

    /// Places a particle on an empty, conflict-free cage.
    ///
    /// This is the journaled choke point for trapping: on success the
    /// caches are invalidated and an [`Event::Placed`] is recorded.
    ///
    /// # Errors
    ///
    /// Propagates [`CageGrid::place`] rejections (out of bounds, site
    /// conflict, duplicate id); a rejected placement mutates nothing and
    /// records nothing.
    pub fn place(&mut self, id: ParticleId, at: GridCoord) -> Result<(), ManipulationError> {
        self.grid.place(id, at)?;
        self.invalidate();
        self.mark_dirty(at);
        self.record(Event::Placed { id, at });
        Ok(())
    }

    /// Removes a particle, returning the cage it occupied.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::UnknownParticle`] if the particle is
    /// not on the grid; nothing is mutated or recorded.
    pub fn remove(&mut self, id: ParticleId) -> Result<GridCoord, ManipulationError> {
        let from = self.grid.remove(id)?;
        self.invalidate();
        self.mark_dirty(from);
        self.record(Event::Removed { id, from });
        Ok(from)
    }

    /// Places a particle into a cage that may already be occupied (merge) —
    /// the journaled counterpart of [`CageGrid::place_merged`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the grid (see
    /// [`CageGrid::place_merged`]).
    pub fn place_merged(&mut self, id: ParticleId, at: GridCoord) {
        self.grid.place_merged(id, at);
        self.invalidate();
        self.mark_dirty(at);
        self.record(Event::PlacedMerged { id, at });
    }

    /// Removes a particle that is crossing a fleet-shard boundary — the
    /// journaled choke point for the export half of a cross-shard handoff.
    /// Grid-wise this is exactly [`remove`](Self::remove); the journal
    /// records an [`Event::HandoffExported`] tagged with the destination
    /// shard instead of a plain removal, so a shard journal reads as a
    /// handoff trace.
    ///
    /// # Errors
    ///
    /// Returns [`ManipulationError::UnknownParticle`] if the particle is
    /// not on the grid; nothing is mutated or recorded.
    pub fn export_particle(
        &mut self,
        id: ParticleId,
        to_shard: usize,
    ) -> Result<GridCoord, ManipulationError> {
        let from = self.grid.remove(id)?;
        self.invalidate();
        self.mark_dirty(from);
        self.record(Event::HandoffExported { id, from, to_shard });
        Ok(from)
    }

    /// Places a particle that arrived across a fleet-shard boundary — the
    /// journaled choke point for the import half of a cross-shard handoff.
    /// Grid-wise this is exactly [`place`](Self::place); the journal
    /// records an [`Event::HandoffImported`] tagged with the source shard.
    ///
    /// # Errors
    ///
    /// Propagates [`CageGrid::place`] rejections; a rejected import
    /// mutates nothing and records nothing.
    pub fn import_particle(
        &mut self,
        id: ParticleId,
        at: GridCoord,
        from_shard: usize,
    ) -> Result<(), ManipulationError> {
        self.grid.place(id, at)?;
        self.invalidate();
        self.mark_dirty(at);
        self.record(Event::HandoffImported { id, at, from_shard });
        Ok(())
    }

    /// Number of particles on the grid.
    pub fn particle_count(&self) -> usize {
        self.grid.particle_count()
    }

    /// The electrode cage pattern of the current occupancy — cached;
    /// rebuilt only if the grid changed since the last call.
    pub fn pattern(&mut self) -> &CagePattern {
        if self.pattern.is_none() {
            self.pattern = Some(self.grid.to_pattern());
        }
        self.pattern.as_ref().expect("just rebuilt")
    }

    /// The ground-truth occupancy map of the current grid — what a perfect
    /// sensor would report. Cached; rebuilt only if the grid changed since
    /// the last call.
    pub fn occupancy(&mut self) -> &OccupancyMap {
        if self.occupancy.is_none() {
            self.occupancy = Some(Self::occupancy_from_sites(
                self.grid.dims(),
                self.grid.iter_particles().map(|(_, coord)| coord),
            ));
        }
        self.occupancy.as_ref().expect("just rebuilt")
    }

    /// Whether the derived caches are currently populated (for tests and
    /// instrumentation; consumers should just call the accessors).
    pub fn caches_warm(&self) -> (bool, bool) {
        (self.pattern.is_some(), self.occupancy.is_some())
    }

    /// The single shared truth-map builder: an occupancy map with the given
    /// sites occupied. Both the grid-backed cache above and the simulator's
    /// particle-position truth map go through here.
    pub fn occupancy_from_sites(
        dims: GridDims,
        sites: impl IntoIterator<Item = GridCoord>,
    ) -> OccupancyMap {
        let mut map = OccupancyMap::new(dims);
        for site in sites {
            map.set(site, Occupancy::Occupied);
        }
        map
    }

    /// The occupancy the current protocol intends (every goal slot
    /// occupied). Starts all-empty.
    pub fn plan(&self) -> &OccupancyMap {
        &self.plan
    }

    /// Replaces the plan with `goals` occupied (everything else empty) —
    /// the journaled choke point for plan changes.
    pub fn set_plan_from_goals(&mut self, goals: impl IntoIterator<Item = GridCoord>) {
        let goals: Vec<GridCoord> = goals.into_iter().collect();
        // Both the vacated plan slots and the new goals are dirty: a cached
        // shard keyed on either set of cells is no longer reachable.
        for site in self.plan.occupied_sites() {
            self.mark_dirty(site);
        }
        for goal in &goals {
            self.mark_dirty(*goal);
        }
        self.plan = Self::occupancy_from_sites(self.grid.dims(), goals.iter().copied());
        self.record(Event::PlanReplaced { goals });
    }

    /// The accumulated per-phase time ledger.
    pub fn time(&self) -> &TimeBreakdown {
        &self.time
    }

    /// Charges `duration` of simulated chip time to a ledger — the
    /// journaled choke point for time accounting.
    pub fn charge(&mut self, ledger: TimeLedger, duration: Seconds) {
        match ledger {
            TimeLedger::Fluidics => self.time.fluidics += duration,
            TimeLedger::Sensing => self.time.sensing += duration,
            TimeLedger::Motion => self.time.motion += duration,
            TimeLedger::Recovery => self.time.recovery += duration,
        }
        self.record(Event::Charged {
            ledger,
            seconds: duration,
        });
    }

    /// Attaches an empty journal: every subsequent mutation is recorded.
    pub fn attach_journal(&mut self) {
        self.journal = Some(Journal::new());
        self.fault = None;
        self.tripped = false;
    }

    /// Attaches an empty journal with an armed kill point: once the
    /// journal reaches `fault.kill_after_events` events,
    /// [`fault_tripped`](Self::fault_tripped) latches and cooperative
    /// phases abort at their next poll.
    pub fn attach_journal_with_fault(&mut self, fault: FaultPlan) {
        self.journal = Some(Journal::new());
        self.fault = Some(fault);
        self.tripped = false;
    }

    /// Read access to the attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Detaches and returns the journal (recording stops).
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.fault = None;
        self.tripped = false;
        self.journal.take()
    }

    /// `true` once an armed [`FaultPlan`] kill point has been reached.
    /// Latches until the journal is detached or re-attached.
    pub fn fault_tripped(&self) -> bool {
        self.tripped
    }

    /// Records a phase-start marker (no state change).
    pub fn note_phase_started(&mut self, index: usize, name: &str) {
        self.record(Event::PhaseStarted {
            index,
            name: name.to_string(),
        });
    }

    /// Records a phase-completion marker (no state change).
    pub fn note_phase_finished(&mut self, index: usize) {
        self.record(Event::PhaseFinished { index });
    }

    /// Records a phase-abort marker (no state change).
    pub fn note_phase_aborted(&mut self, index: usize, reason: &str) {
        self.record(Event::PhaseAborted {
            index,
            reason: reason.to_string(),
        });
    }

    /// Snapshots the durable state (grid, plan, ledger) for a checkpoint.
    pub fn snapshot(&self) -> ChipStateSnapshot {
        ChipStateSnapshot {
            grid: self.grid.clone(),
            plan: self.plan.clone(),
            time: self.time,
        }
    }

    /// Rebuilds a state from a checkpoint snapshot (cold caches, no
    /// journal — re-attach one to keep recording).
    pub fn from_snapshot(snapshot: ChipStateSnapshot) -> Self {
        Self {
            grid: snapshot.grid,
            plan: snapshot.plan,
            time: snapshot.time,
            pattern: None,
            occupancy: None,
            journal: None,
            fault: None,
            tripped: false,
            dirty: Vec::new(),
            dirty_all: false,
        }
    }

    /// A 64-bit FNV-1a digest of the durable state: dims, separation,
    /// every particle position, the plan sites and the raw ledger bits.
    /// Two states compare equal iff their hashes match (modulo the usual
    /// 64-bit collision caveat) — the cheap fingerprint the resume
    /// equivalence sweep compares across hundreds of kill points.
    pub fn state_hash(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        let dims = self.grid.dims();
        mix(u64::from(dims.cols));
        mix(u64::from(dims.rows));
        mix(u64::from(self.grid.min_separation()));
        for (id, coord) in self.grid.iter_particles() {
            mix(id.0);
            mix(u64::from(coord.x));
            mix(u64::from(coord.y));
        }
        for site in self.plan.occupied_sites() {
            mix(u64::from(site.x));
            mix(u64::from(site.y));
        }
        mix(self.time.fluidics.get().to_bits());
        mix(self.time.sensing.get().to_bits());
        mix(self.time.motion.get().to_bits());
        mix(self.time.recovery.get().to_bits());
        hash
    }

    /// Sites where the ground truth disagrees with the plan.
    ///
    /// # Panics
    ///
    /// Never: truth and plan always share the grid's dimensions.
    pub fn true_mismatches(&mut self) -> usize {
        // Refresh the cache first; the borrow checker wants the two maps
        // taken in sequence.
        self.occupancy();
        self.occupancy
            .as_ref()
            .expect("just refreshed")
            .diff_count(&self.plan)
            .expect("truth and plan share the grid dimensions")
    }
}

impl TruthSource for ChipState {
    fn truth_occupancy(&mut self) -> &OccupancyMap {
        self.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cage::ParticleId;
    use labchip_sensing::array_scan::ArrayScanner;

    #[test]
    fn caches_rebuild_only_after_grid_mutation() {
        let mut state = ChipState::new(GridDims::square(16));
        state.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert_eq!(state.caches_warm(), (false, false));

        assert_eq!(state.occupancy().occupied_count(), 1);
        assert_eq!(state.pattern().cage_count(), 1);
        assert_eq!(state.caches_warm(), (true, true));

        // Read-only access keeps the caches warm.
        assert_eq!(state.grid().particle_count(), 1);
        assert_eq!(state.caches_warm(), (true, true));

        // Mutation invalidates; the next read sees the new truth.
        state.place(ParticleId(2), GridCoord::new(10, 10)).unwrap();
        assert_eq!(state.caches_warm(), (false, false));
        assert_eq!(state.occupancy().occupied_count(), 2);
        assert_eq!(state.pattern().cage_count(), 2);
    }

    #[test]
    fn pattern_and_occupancy_always_match_the_grid() {
        let mut state = ChipState::with_separation(GridDims::square(12), 2);
        for (id, x) in [(0u64, 2u32), (1, 6), (2, 10)] {
            state.place(ParticleId(id), GridCoord::new(x, 5)).unwrap();
        }
        let sites: Vec<GridCoord> = state.grid().iter_particles().map(|(_, c)| c).collect();
        assert_eq!(state.pattern().cage_sites(), &sites);
        for site in &sites {
            assert_eq!(state.occupancy().get(*site), Occupancy::Occupied);
        }
        assert_eq!(state.occupancy().occupied_count(), sites.len());
    }

    #[test]
    fn plan_and_ledger_live_with_the_state() {
        let mut state = ChipState::new(GridDims::square(8));
        state.place(ParticleId(0), GridCoord::new(1, 1)).unwrap();
        state.set_plan_from_goals([GridCoord::new(5, 5)]);
        // One particle off the plan slot and one plan slot unfilled.
        assert_eq!(state.true_mismatches(), 2);

        state.charge(TimeLedger::Motion, Seconds::new(2.0));
        state.charge(TimeLedger::Sensing, Seconds::new(0.5));
        assert!((state.time().total().get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scanner_reads_the_state_directly() {
        let dims = GridDims::square(10);
        let mut state = ChipState::new(dims);
        state.place(ParticleId(7), GridCoord::new(3, 3)).unwrap();
        let scanner = ArrayScanner::date05_reference(dims, 0.0, 99);
        let result = scanner.scan_source(&mut state, 1, 0);
        assert_eq!(result.map, *state.occupancy());
        assert_eq!(result.stats.true_positives, 1);
    }

    #[test]
    fn occupancy_from_sites_is_the_shared_builder() {
        let dims = GridDims::square(6);
        let map =
            ChipState::occupancy_from_sites(dims, [GridCoord::new(0, 0), GridCoord::new(5, 5)]);
        assert_eq!(map.occupied_count(), 2);
        assert_eq!(map.get(GridCoord::new(5, 5)), Occupancy::Occupied);
    }

    #[test]
    fn mutations_journal_only_when_attached_and_rejections_record_nothing() {
        let mut state = ChipState::new(GridDims::square(8));
        // No journal attached: mutations succeed silently.
        state.place(ParticleId(0), GridCoord::new(1, 1)).unwrap();
        assert!(state.journal().is_none());

        state.attach_journal();
        state.place(ParticleId(1), GridCoord::new(5, 5)).unwrap();
        // A rejected placement (occupied site) records nothing.
        assert!(state.place(ParticleId(2), GridCoord::new(5, 5)).is_err());
        state.charge(TimeLedger::Fluidics, Seconds::new(1.0));
        state.set_plan_from_goals([GridCoord::new(5, 5)]);
        state.remove(ParticleId(1)).unwrap();

        let journal = state.take_journal().unwrap();
        let kinds: Vec<&str> = journal.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["placed", "charged", "plan_replaced", "removed"]);
    }

    #[test]
    fn handoff_choke_points_mutate_like_remove_and_place() {
        let mut state = ChipState::with_separation(GridDims::square(8), 2);
        state.attach_journal();
        state.place(ParticleId(1), GridCoord::new(6, 3)).unwrap();
        let from = state.export_particle(ParticleId(1), 1).unwrap();
        assert_eq!(from, GridCoord::new(6, 3));
        assert_eq!(state.particle_count(), 0);
        state
            .import_particle(ParticleId(1), GridCoord::new(0, 3), 0)
            .unwrap();
        assert_eq!(state.particle_count(), 1);
        // Rejections record nothing: exporting an unknown particle,
        // importing onto a conflicting site.
        assert!(state.export_particle(ParticleId(9), 1).is_err());
        assert!(state
            .import_particle(ParticleId(2), GridCoord::new(0, 3), 0)
            .is_err());
        let journal = state.take_journal().unwrap();
        let kinds: Vec<&str> = journal.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["placed", "handoff_exported", "handoff_imported"]);
    }

    #[test]
    fn fault_plan_latches_at_the_kill_point() {
        let mut state = ChipState::new(GridDims::square(8));
        state.attach_journal_with_fault(FaultPlan::after(2));
        state.place(ParticleId(0), GridCoord::new(0, 0)).unwrap();
        assert!(!state.fault_tripped());
        state.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert!(state.fault_tripped());
        // Latches: further reads keep reporting the trip.
        state.charge(TimeLedger::Motion, Seconds::new(0.1));
        assert!(state.fault_tripped());
        // Detaching clears the latch.
        let journal = state.take_journal().unwrap();
        assert_eq!(journal.len(), 3);
        assert!(!state.fault_tripped());
    }

    fn drained_cells(state: &mut ChipState) -> Vec<GridCoord> {
        match state.take_dirty() {
            DirtyRegions::Cells(cells) => cells,
            DirtyRegions::All => panic!("tracker saturated unexpectedly"),
        }
    }

    #[test]
    fn every_mutator_marks_exactly_the_touched_cells() {
        let mut state = ChipState::new(GridDims::square(16));
        assert!(state.take_dirty().is_clean(), "fresh states start clean");

        // place: exactly the placement site.
        state.place(ParticleId(1), GridCoord::new(4, 4)).unwrap();
        assert_eq!(drained_cells(&mut state), vec![GridCoord::new(4, 4)]);

        // remove: exactly the vacated site.
        state.remove(ParticleId(1)).unwrap();
        assert_eq!(drained_cells(&mut state), vec![GridCoord::new(4, 4)]);

        // place_merged: exactly the merge site.
        state.place_merged(ParticleId(2), GridCoord::new(9, 2));
        assert_eq!(drained_cells(&mut state), vec![GridCoord::new(9, 2)]);

        // set_plan_from_goals: the vacated plan slots plus the new goals.
        state.set_plan_from_goals([GridCoord::new(1, 1)]);
        assert_eq!(drained_cells(&mut state), vec![GridCoord::new(1, 1)]);
        state.set_plan_from_goals([GridCoord::new(2, 2), GridCoord::new(3, 3)]);
        assert_eq!(
            drained_cells(&mut state),
            vec![
                GridCoord::new(1, 1),
                GridCoord::new(2, 2),
                GridCoord::new(3, 3)
            ]
        );

        // Draining restarts the tracker clean.
        assert!(state.take_dirty().is_clean());
    }

    #[test]
    fn rejected_mutations_mark_nothing() {
        let mut state = ChipState::new(GridDims::square(8));
        state.place(ParticleId(0), GridCoord::new(2, 2)).unwrap();
        state.take_dirty();
        // Site conflict and unknown particle: no state change, no marks.
        assert!(state.place(ParticleId(1), GridCoord::new(2, 2)).is_err());
        assert!(state.remove(ParticleId(9)).is_err());
        assert!(state.take_dirty().is_clean());
    }

    #[test]
    fn dirty_tracking_saturates_to_all_past_the_cell_cap() {
        let dims = GridDims::square(4); // 16 cells
        let mut state = ChipState::new(dims);
        for k in 0..20u64 {
            state.place(ParticleId(k), GridCoord::new(0, 0)).unwrap();
            state.remove(ParticleId(k)).unwrap();
        }
        assert_eq!(state.take_dirty(), DirtyRegions::All);
        assert!(state.take_dirty().is_clean(), "saturation drains too");
    }

    #[test]
    fn dirty_cells_invalidate_at_most_four_staggered_tiles() {
        // The invalidation contract end-to-end: a single-cell mutation's
        // dirty report maps to exactly one tile per stagger phase (≤ 4),
        // and those tiles always include the mutated cell — so the cache
        // can never serve a shard whose cells changed (no false
        // negatives) and never over-invalidates beyond the 4 phase tiles.
        let dims = GridDims::square(64);
        let side = 16;
        let mut state = ChipState::new(dims);
        state.place(ParticleId(1), GridCoord::new(37, 50)).unwrap();
        let DirtyRegions::Cells(cells) = state.take_dirty() else {
            panic!("single mutation cannot saturate");
        };
        assert_eq!(cells, vec![GridCoord::new(37, 50)]);
        let tiles = crate::sharding::covering_tiles(dims, side, cells[0]);
        assert!(tiles.len() <= 4);
        let unique: std::collections::HashSet<_> = tiles.iter().collect();
        assert_eq!(unique.len(), tiles.len(), "one tile per phase");
    }

    #[test]
    fn snapshot_round_trips_and_hash_tracks_equality() {
        let mut state = ChipState::with_separation(GridDims::square(10), 2);
        state.place(ParticleId(3), GridCoord::new(2, 2)).unwrap();
        state.set_plan_from_goals([GridCoord::new(8, 8)]);
        state.charge(TimeLedger::Recovery, Seconds::new(0.25));

        let restored = ChipState::from_snapshot(state.snapshot());
        assert_eq!(restored, state);
        assert_eq!(restored.state_hash(), state.state_hash());
        // Caches start cold but rebuild to the same truth.
        assert_eq!(restored.caches_warm(), (false, false));

        let mut other = restored.clone();
        other.charge(TimeLedger::Motion, Seconds::new(1e-9));
        assert_ne!(other, state);
        assert_ne!(other.state_hash(), state.state_hash());
    }
}
