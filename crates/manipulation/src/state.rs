//! The unified chip-state model: one owner for the cage grid and every view
//! derived from it.
//!
//! Before this module existed, each layer of the stack kept its own private
//! copy of "where the particles are": the workload driver held a
//! [`CageGrid`], the sensing path rebuilt a ground-truth
//! [`OccupancyMap`] from scratch before every scan, the actuation layer
//! re-exported a fresh [`CagePattern`] per step, and the simulator had yet
//! another truth-map builder of its own — all the same information, stitched
//! together by ad-hoc converters that re-ran on every phase of every cycle.
//!
//! [`ChipState`] collapses those copies into one model:
//!
//! * the [`CageGrid`] is the single source of truth for particle positions;
//! * the electrode [`CagePattern`] and the ground-truth [`OccupancyMap`] are
//!   **cached, dirty-tracked derivations** — rebuilt lazily only after the
//!   grid actually changed (every `&mut` access to the grid marks the caches
//!   stale), so repeated reads inside a phase are free;
//! * the *plan* map (the occupancy the current protocol intends) and the
//!   per-phase [`TimeBreakdown`] ledger live alongside, because every
//!   consumer of the state needs them together: the sense phase diffs
//!   detected-vs-plan, the recovery loop diffs truth-vs-plan, the report
//!   charges time per phase.
//!
//! The sensing crate's [`TruthSource`] is implemented here, so an
//! [`ArrayScanner`](labchip_sensing::array_scan::ArrayScanner) reads the
//! chip state directly (`scanner.scan_source(&mut state, …)`) instead of
//! forcing callers to materialise a truth map per scan.

use crate::cage::CageGrid;
use crate::protocol::TimeBreakdown;
use labchip_array::pattern::CagePattern;
use labchip_sensing::array_scan::TruthSource;
use labchip_sensing::detect::{Occupancy, OccupancyMap};
use labchip_units::{GridCoord, GridDims, Seconds};
use serde::{Deserialize, Serialize};

/// The phase of an assay a time charge belongs to — the four ledgers of
/// [`TimeBreakdown`], addressable as data so composable phases can charge
/// time without hand-picking struct fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeLedger {
    /// Fluidic handling (loading, flushing, recovery through the outlet).
    Fluidics,
    /// Sensor scanning and averaging.
    Sensing,
    /// Cage motion.
    Motion,
    /// Closed-loop recovery (targeted re-scans and corrective moves).
    Recovery,
}

/// One chip-state model shared by the simulator, router, scanner and driver:
/// the cage grid plus cached derivations, the plan map and the time ledger.
///
/// See the [module docs](self) for the ownership story.
#[derive(Debug, Clone)]
pub struct ChipState {
    grid: CageGrid,
    plan: OccupancyMap,
    time: TimeBreakdown,
    /// Lazily rebuilt electrode pattern (`None` = stale).
    pattern: Option<CagePattern>,
    /// Lazily rebuilt ground-truth occupancy (`None` = stale).
    occupancy: Option<OccupancyMap>,
}

impl ChipState {
    /// Creates an empty state over a `dims` array with the default cage
    /// separation.
    pub fn new(dims: GridDims) -> Self {
        Self::from_grid(CageGrid::new(dims))
    }

    /// Creates an empty state with an explicit minimum cage separation.
    ///
    /// # Panics
    ///
    /// Panics if `min_separation` is zero (see
    /// [`CageGrid::with_separation`]).
    pub fn with_separation(dims: GridDims, min_separation: u32) -> Self {
        Self::from_grid(CageGrid::with_separation(dims, min_separation))
    }

    /// Wraps an existing grid (its particles become the state's truth).
    pub fn from_grid(grid: CageGrid) -> Self {
        let dims = grid.dims();
        Self {
            grid,
            plan: OccupancyMap::new(dims),
            time: TimeBreakdown::default(),
            pattern: None,
            occupancy: None,
        }
    }

    /// Array dimensions.
    pub fn dims(&self) -> GridDims {
        self.grid.dims()
    }

    /// Read access to the cage grid (does not disturb the caches).
    pub fn grid(&self) -> &CageGrid {
        &self.grid
    }

    /// Mutable access to the cage grid. Marks both derived caches stale —
    /// call this (not interior mutation tricks) for *every* change, or the
    /// pattern/occupancy views will serve outdated data.
    pub fn grid_mut(&mut self) -> &mut CageGrid {
        self.pattern = None;
        self.occupancy = None;
        &mut self.grid
    }

    /// Number of particles on the grid.
    pub fn particle_count(&self) -> usize {
        self.grid.particle_count()
    }

    /// The electrode cage pattern of the current occupancy — cached;
    /// rebuilt only if the grid changed since the last call.
    pub fn pattern(&mut self) -> &CagePattern {
        if self.pattern.is_none() {
            self.pattern = Some(self.grid.to_pattern());
        }
        self.pattern.as_ref().expect("just rebuilt")
    }

    /// The ground-truth occupancy map of the current grid — what a perfect
    /// sensor would report. Cached; rebuilt only if the grid changed since
    /// the last call.
    pub fn occupancy(&mut self) -> &OccupancyMap {
        if self.occupancy.is_none() {
            self.occupancy = Some(Self::occupancy_from_sites(
                self.grid.dims(),
                self.grid.iter_particles().map(|(_, coord)| coord),
            ));
        }
        self.occupancy.as_ref().expect("just rebuilt")
    }

    /// Whether the derived caches are currently populated (for tests and
    /// instrumentation; consumers should just call the accessors).
    pub fn caches_warm(&self) -> (bool, bool) {
        (self.pattern.is_some(), self.occupancy.is_some())
    }

    /// The single shared truth-map builder: an occupancy map with the given
    /// sites occupied. Both the grid-backed cache above and the simulator's
    /// particle-position truth map go through here.
    pub fn occupancy_from_sites(
        dims: GridDims,
        sites: impl IntoIterator<Item = GridCoord>,
    ) -> OccupancyMap {
        let mut map = OccupancyMap::new(dims);
        for site in sites {
            map.set(site, Occupancy::Occupied);
        }
        map
    }

    /// The occupancy the current protocol intends (every goal slot
    /// occupied). Starts all-empty.
    pub fn plan(&self) -> &OccupancyMap {
        &self.plan
    }

    /// Replaces the plan with `goals` occupied (everything else empty).
    pub fn set_plan_from_goals(&mut self, goals: impl IntoIterator<Item = GridCoord>) {
        self.plan = Self::occupancy_from_sites(self.grid.dims(), goals);
    }

    /// Mutable access to the plan map (for incremental plan edits).
    pub fn plan_mut(&mut self) -> &mut OccupancyMap {
        &mut self.plan
    }

    /// The accumulated per-phase time ledger.
    pub fn time(&self) -> &TimeBreakdown {
        &self.time
    }

    /// Charges `duration` of simulated chip time to a ledger.
    pub fn charge(&mut self, ledger: TimeLedger, duration: Seconds) {
        match ledger {
            TimeLedger::Fluidics => self.time.fluidics += duration,
            TimeLedger::Sensing => self.time.sensing += duration,
            TimeLedger::Motion => self.time.motion += duration,
            TimeLedger::Recovery => self.time.recovery += duration,
        }
    }

    /// Sites where the ground truth disagrees with the plan.
    ///
    /// # Panics
    ///
    /// Never: truth and plan always share the grid's dimensions.
    pub fn true_mismatches(&mut self) -> usize {
        // Refresh the cache first; the borrow checker wants the two maps
        // taken in sequence.
        self.occupancy();
        self.occupancy
            .as_ref()
            .expect("just refreshed")
            .diff_count(&self.plan)
            .expect("truth and plan share the grid dimensions")
    }
}

impl TruthSource for ChipState {
    fn truth_occupancy(&mut self) -> &OccupancyMap {
        self.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cage::ParticleId;
    use labchip_sensing::array_scan::ArrayScanner;

    #[test]
    fn caches_rebuild_only_after_grid_mutation() {
        let mut state = ChipState::new(GridDims::square(16));
        state
            .grid_mut()
            .place(ParticleId(1), GridCoord::new(4, 4))
            .unwrap();
        assert_eq!(state.caches_warm(), (false, false));

        assert_eq!(state.occupancy().occupied_count(), 1);
        assert_eq!(state.pattern().cage_count(), 1);
        assert_eq!(state.caches_warm(), (true, true));

        // Read-only access keeps the caches warm.
        assert_eq!(state.grid().particle_count(), 1);
        assert_eq!(state.caches_warm(), (true, true));

        // Mutation invalidates; the next read sees the new truth.
        state
            .grid_mut()
            .place(ParticleId(2), GridCoord::new(10, 10))
            .unwrap();
        assert_eq!(state.caches_warm(), (false, false));
        assert_eq!(state.occupancy().occupied_count(), 2);
        assert_eq!(state.pattern().cage_count(), 2);
    }

    #[test]
    fn pattern_and_occupancy_always_match_the_grid() {
        let mut state = ChipState::with_separation(GridDims::square(12), 2);
        for (id, x) in [(0u64, 2u32), (1, 6), (2, 10)] {
            state
                .grid_mut()
                .place(ParticleId(id), GridCoord::new(x, 5))
                .unwrap();
        }
        let sites: Vec<GridCoord> = state.grid().iter_particles().map(|(_, c)| c).collect();
        assert_eq!(state.pattern().cage_sites(), &sites);
        for site in &sites {
            assert_eq!(state.occupancy().get(*site), Occupancy::Occupied);
        }
        assert_eq!(state.occupancy().occupied_count(), sites.len());
    }

    #[test]
    fn plan_and_ledger_live_with_the_state() {
        let mut state = ChipState::new(GridDims::square(8));
        state
            .grid_mut()
            .place(ParticleId(0), GridCoord::new(1, 1))
            .unwrap();
        state.set_plan_from_goals([GridCoord::new(5, 5)]);
        // One particle off the plan slot and one plan slot unfilled.
        assert_eq!(state.true_mismatches(), 2);

        state.charge(TimeLedger::Motion, Seconds::new(2.0));
        state.charge(TimeLedger::Sensing, Seconds::new(0.5));
        assert!((state.time().total().get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scanner_reads_the_state_directly() {
        let dims = GridDims::square(10);
        let mut state = ChipState::new(dims);
        state
            .grid_mut()
            .place(ParticleId(7), GridCoord::new(3, 3))
            .unwrap();
        let scanner = ArrayScanner::date05_reference(dims, 0.0, 99);
        let result = scanner.scan_source(&mut state, 1, 0);
        assert_eq!(result.map, *state.occupancy());
        assert_eq!(result.stats.true_positives, 1);
    }

    #[test]
    fn occupancy_from_sites_is_the_shared_builder() {
        let dims = GridDims::square(6);
        let map =
            ChipState::occupancy_from_sites(dims, [GridCoord::new(0, 0), GridCoord::new(5, 5)]);
        assert_eq!(map.occupied_count(), 2);
        assert_eq!(map.get(GridCoord::new(5, 5)), Occupancy::Occupied);
    }
}
